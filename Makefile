# Convenience targets for the DREP reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-compare bench-json trajectory-gate sweep-smoke serve-smoke faults-smoke shard-smoke autoscale-smoke stream-smoke scaling-smoke figures report examples clean

# perf-trajectory entry number for `make bench-json` (BENCH_$(PR).json)
PR ?= 10

install:
	pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

test-log:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-smoke:
	REPRO_BENCH_SCALE=0.05 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# full-size throughput suite -> BENCH_$(PR).json perf-trajectory entry
bench-json:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --pr $(PR)

# semantic drift gate (also a CI step): run the suite fresh at full
# scale and diff it against the committed baseline entry -- any `events`
# change on a shared case means a frozen workload's behavior moved, and
# the target exits non-zero.  Timing ratios are printed but not gated.
BASELINE ?= BENCH_10.json
bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --repeats 1 --out /tmp/BENCH_fresh.json
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --compare $(BASELINE) /tmp/BENCH_fresh.json --require-drift

# committed-trajectory gate: the two checked-in entries around the batch
# kernel must agree on every shared case's `events` (frozen workloads),
# and the newer one must carry the calibration case so its speedups stay
# drift-normalizable
trajectory-gate:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --compare BENCH_9.json BENCH_10.json --require-drift

# run a small experiment grid serially and through the process pool and
# require byte-identical rows (the grid runner's determinism contract)
sweep-smoke:
	PYTHONPATH=src $(PYTHON) scripts/sweep_smoke.py

# boot a live server, push 100 jobs through it, verify the drained flow
# times against offline flowsim.simulate, then tear the server down
serve-smoke:
	@PYTHONPATH=src $(PYTHON) -m repro.cli serve --m 4 --port 8399 & \
	SERVER_PID=$$!; \
	trap 'kill $$SERVER_PID 2>/dev/null' EXIT; \
	sleep 2; \
	PYTHONPATH=src $(PYTHON) -m repro.cli loadgen \
		--port 8399 --n-jobs 100 --load 0.7 --verify

# kill -9 a journaled server mid-load, restart it, and require the
# recovered flow times to equal an uninterrupted run bit-for-bit; then
# exercise the fault-injection CLI
faults-smoke:
	$(PYTHON) scripts/faults_smoke.py

# route a skewed 3-tenant workload through a router over 2 subprocess
# shards with DRF admission: no tenant may starve, only dominance is
# punished, and two identical runs must merge to byte-identical reports
shard-smoke:
	$(PYTHON) scripts/shard_smoke.py

# same-seed closed-loop elastic runs must be byte-identical with zero
# unaccounted displaced work; an idle elastic server must scale itself
# down at exact tick boundaries; the Pareto-report CLI must run clean
autoscale-smoke:
	$(PYTHON) scripts/autoscale_smoke.py

# push 100k generated jobs through simulate_stream with the trace never
# materialized and require peak RSS to stay under a flat ceiling; then
# spot-check the wsim streaming driver and the SWF-replay CLI
stream-smoke:
	$(PYTHON) scripts/stream_smoke.py

# fit the per-event scaling exponent over a 10^2 -> 10^4 staircase
# ladder on the incremental order/calendar kernels and fail if any
# policy's slope breaches its bound (SRPT/SJF/FIFO < 0.5; LAPS < 0.85,
# its served set is Theta(beta*n) by definition)
scaling-smoke:
	$(PYTHON) scripts/scaling_smoke.py

figures:
	$(PYTHON) -m repro.cli figures

report:
	$(PYTHON) -m repro.cli report --out report.md

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks results/*.svg report.md
