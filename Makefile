# Convenience targets for the DREP reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke figures report examples clean

install:
	pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

test-log:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-smoke:
	REPRO_BENCH_SCALE=0.05 $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.cli figures

report:
	$(PYTHON) -m repro.cli report --out report.md

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks results/*.svg report.md
