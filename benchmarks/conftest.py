"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation
(Sec. V).  Each bench runs its experiment exactly once under
``benchmark.pedantic`` (a scheduling simulation is not a microbenchmark),
prints the paper-style series table, and writes the raw rows to
``results/``.

Scale control: the environment variable ``REPRO_BENCH_SCALE`` multiplies
the default job counts (1.0 by default).  The paper uses 100,000 jobs per
simulation point and 10,000 per runtime point; defaults here are sized
for minutes-not-hours laptop runs, and EXPERIMENTS.md records which scale
produced the checked-in numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.tables import save_rows, series_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(10, int(n * bench_scale()))


@pytest.fixture
def report():
    """Print a figure-style table and persist rows for the record."""

    def _report(rows, name: str, x: str, series: str = "scheduler", value: str = "mean_flow"):
        print()
        print(f"== {name} ==")
        print(series_table(rows, x=x, series=series, value=value))
        save_rows(RESULTS_DIR / f"{name}.json", rows)
        return rows

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
