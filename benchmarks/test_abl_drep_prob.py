"""Ablation X3 — DREP's arrival switch probability.

DREP's coin flip uses probability 1/|A(t)|, which (a) keeps the expected
partition equi-proportional (Lemma 4.1) and (b) caps expected preemptions
at one per arrival (Theorem 1.2).  This bench replaces the rule with
fixed probabilities in the parallel variant (where every coin winner
switches, so the probability directly controls preemption volume):
small constants starve new jobs, large constants blow the preemption
budget — p=1 degenerates to "every arrival grabs the whole machine"
(LIFO-like), preempting ~m processors per arrival.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_flow_point
from repro.core.job import ParallelismMode
from repro.flowsim.policies import DrepParallel

N_JOBS = scaled(10_000)
M = 16


def _run():
    policies = {
        "DREP(1/|A|)": DrepParallel,
        "DREP(p=0.02)": lambda: DrepParallel(arrival_switch_prob=0.02),
        "DREP(p=0.2)": lambda: DrepParallel(arrival_switch_prob=0.2),
        "DREP(p=1)": lambda: DrepParallel(arrival_switch_prob=1.0),
    }
    return run_flow_point(
        distribution="finance",
        load=0.6,
        m=M,
        mode=ParallelismMode.FULLY_PARALLEL,
        policies=policies,
        n_jobs=N_JOBS,
        seed=131,
    )


def test_abl_drep_probability(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x3_drep_probability", x="scheduler", series="m", value="mean_flow")
    by = {r["scheduler"]: r for r in rows}
    flows = {k: v["mean_flow"] for k, v in by.items()}
    preempt = {k: v["preemptions"] for k, v in by.items()}
    # the adaptive rule stays within a modest factor of every fixed rule
    best = min(flows.values())
    assert flows["DREP(1/|A|)"] <= 2.0 * best
    # the adaptive rule's preemption budget: ~<= m coin wins per arrival
    # happen only while |A| < m; empirically far below m*n
    assert preempt["DREP(1/|A|)"] <= M * N_JOBS
    # p=1 preempts much more: every arrival drags all busy processors
    # along (under moderate load |A| is small, so the adaptive rule's
    # 1/|A| is itself sizable — the gap widens with load)
    assert preempt["DREP(p=1)"] >= 2 * preempt["DREP(1/|A|)"]
    assert preempt["DREP(p=0.02)"] <= preempt["DREP(1/|A|)"]
    # p=1 is LIFO-like: newest job monopolizes the machine; flow suffers
    # on any workload with size variation
    assert flows["DREP(p=1)"] >= flows["DREP(1/|A|)"] * 0.9
