"""Ablation X7 — preemption overhead: DREP vs quantum round-robin.

The paper's central practicality argument (Sec. I): schedulers that
preempt frequently pay state save/restore costs that theory ignores, so
"schedulers with a large number of preemptions have high overhead and
this leads to a large gap between theory and practice".  RR needs
preemption at every quantum; DREP preempts only on arrivals.

This bench makes the argument quantitative: sweep the per-preemption
overhead (in runtime steps) and compare DREP against quantum-based RR.
Expected: near parity at zero overhead (both approximate equi-partition)
and a widening gap as overhead grows, with quantum-RR eventually
collapsing.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_ws_point
from repro.wsim.runtime import WsConfig
from repro.wsim.schedulers import DrepWS, RrQuantumWS

N_JOBS = scaled(400)
OVERHEADS = [0, 5, 25]


def _run():
    rows = []
    for overhead in OVERHEADS:
        point = run_ws_point(
            distribution="finance",
            load=0.65,
            m=8,
            schedulers={
                "DREP": DrepWS,
                "RR(q=50)": lambda: RrQuantumWS(quantum=50),
            },
            n_jobs=N_JOBS,
            mean_work_units=400,
            seed=161,
            config=WsConfig(preemption_overhead=overhead),
        )
        for r in point:
            r["overhead"] = overhead
        rows.extend(point)
    return rows


def test_abl_preemption_overhead(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x7_preemption_overhead", x="overhead", series="scheduler", value="mean_flow")
    flows = {}
    for r in rows:
        flows.setdefault(r["scheduler"], {})[r["overhead"]] = r["mean_flow"]
    # at zero overhead the two equi-partition approximations are close
    assert flows["DREP"][0] <= 1.5 * flows["RR(q=50)"][0]
    # at high overhead quantum-RR degrades far more than DREP
    drep_slowdown = flows["DREP"][25] / flows["DREP"][0]
    rr_slowdown = flows["RR(q=50)"][25] / flows["RR(q=50)"][0]
    assert rr_slowdown >= 2 * drep_slowdown
    # DREP's absolute degradation stays moderate (preempts only on arrival)
    assert drep_slowdown <= 2.0
