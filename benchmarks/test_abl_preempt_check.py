"""Ablation X5 — preemption-flag check granularity in the runtime.

The paper's implementation checks the DREP preemption flag "on steal
attempts" and proposes, as future work, checking "at function calls,
allowing the new job to be worked on faster while paying some small
overheads".  Our runtime simulator implements three granularities
(``steal`` / ``node`` / ``step``), so this bench quantifies the proposed
improvement the paper left unmeasured.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_ws_point
from repro.wsim.runtime import WsConfig
from repro.wsim.schedulers import DrepWS

N_JOBS = scaled(500)


def _run():
    rows = []
    for mode in ("steal", "node", "step"):
        point = run_ws_point(
            distribution="bing",
            load=0.7,
            m=8,
            schedulers={f"DREP[{mode}]": DrepWS},
            n_jobs=N_JOBS,
            mean_work_units=400,
            seed=141,
            config=WsConfig(preempt_check=mode),
        )
        rows.extend(point)
    return rows


def test_abl_preempt_check(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x5_preempt_check", x="scheduler", series="m", value="mean_flow")
    flows = {r["scheduler"]: r["mean_flow"] for r in rows}
    preempts = {r["scheduler"]: r["preemptions"] for r in rows}
    # finer granularity reacts to arrivals sooner: flow should not get
    # dramatically worse, and preemption counts stay within the budget
    assert flows["DREP[step]"] <= 1.5 * flows["DREP[steal]"]
    for mode in ("steal", "node", "step"):
        assert preempts[f"DREP[{mode}]"] <= 8 * N_JOBS
