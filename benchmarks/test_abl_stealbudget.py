"""Ablation X2 — steal-first's failed-steal budget.

The paper: "The implemented steal-first ... only bears 2n number of
failed stealing attempts before admitting a new job.  Its performance
becomes worse when it allows more failed stealing attempts, which is thus
not shown in the figure."  This bench regenerates that unreported sweep:
mean flow as the budget factor grows (0.5m, 2m, 8m, 32m).
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_ws_point
from repro.wsim.schedulers import StealFirstWS

BUDGETS = [0.5, 2.0, 8.0, 32.0]
N_JOBS = scaled(500)


def _run():
    schedulers = {
        f"budget={b:g}m": (lambda b=b: StealFirstWS(steal_budget_factor=b))
        for b in BUDGETS
    }
    return run_ws_point(
        distribution="finance",
        load=0.7,
        m=8,
        schedulers=schedulers,
        n_jobs=N_JOBS,
        mean_work_units=400,
        seed=121,
    )


def test_abl_steal_budget(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x2_steal_budget", x="scheduler", series="m", value="mean_flow")
    flows = {r["scheduler"]: r["mean_flow"] for r in rows}
    # the paper's observation: a much larger budget should not help, and
    # generally hurts (admissions are delayed behind fruitless steals)
    assert flows["budget=32m"] >= 0.95 * flows["budget=2m"]
    # all configurations finish all jobs with sane flows
    for name, f in flows.items():
        assert f >= 1.0, name
