"""Engine throughput microbenchmarks (performance regression guards).

Unlike the figure benches (one-shot experiment regenerations), these use
pytest-benchmark's repeated-round machinery on fixed small workloads so
a slowdown in either engine's hot loop is caught by comparing saved
.benchmarks baselines across commits.
"""

from __future__ import annotations

from repro.analysis.experiments import scale_trace
from repro.core.job import ParallelismMode
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import RoundRobin, SRPT, DrepSequential
from repro.workloads.traces import attach_dags, generate_trace
from repro.wsim.runtime import simulate_ws
from repro.wsim.schedulers import DrepWS


def test_flowsim_srpt_throughput(benchmark):
    trace = generate_trace(3000, "finance", 0.7, 8, seed=301)
    result = benchmark(lambda: simulate(trace, 8, SRPT(), seed=301))
    assert result.n_jobs == 3000


def test_flowsim_rr_throughput(benchmark):
    """RR stresses the all-jobs-served path (every event touches |A|)."""
    trace = generate_trace(3000, "bing", 0.7, 8, seed=302)
    result = benchmark(lambda: simulate(trace, 8, RoundRobin(), seed=302))
    assert result.n_jobs == 3000


def test_flowsim_drep_throughput(benchmark):
    trace = generate_trace(3000, "finance", 0.7, 8, seed=303)
    result = benchmark(lambda: simulate(trace, 8, DrepSequential(), seed=303))
    assert result.n_jobs == 3000


def test_flowsim_profiled_throughput(benchmark):
    base = generate_trace(
        300,
        "finance",
        0.6,
        4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=304,
        scale_work_with_m=False,
    )
    trace = attach_dags(scale_trace(base, 200.0), parallelism=8, seed=304)
    config = FlowSimConfig(use_profiles=True)
    result = benchmark(lambda: simulate(trace, 4, SRPT(), seed=304, config=config))
    assert result.n_jobs == 300


def test_wsim_drep_throughput(benchmark):
    base = generate_trace(
        150,
        "finance",
        0.6,
        8,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=305,
        scale_work_with_m=False,
    )
    trace = attach_dags(scale_trace(base, 300.0), parallelism=16, seed=305)
    result = benchmark(lambda: simulate_ws(trace, 8, DrepWS(), seed=305))
    assert result.n_jobs == 150
