"""Extension X10 — DREP under bursty (MMPP) arrivals.

The paper evaluates under Poisson arrivals; real interactive services are
burstier.  Burstiness stresses exactly DREP's weak spot: an arrival burst
raises |A(t)| quickly, and DREP's per-arrival coin flips must re-spread
processors while small jobs queue.  This bench sweeps the MMPP burstiness
factor and reports each scheduler's degradation relative to its own
Poisson baseline — checking that DREP's robustness tracks RR's (its
idealized counterpart) rather than collapsing.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import RoundRobin, SJF, SRPT, DrepSequential
from repro.workloads.traces import generate_trace

N_JOBS = scaled(15_000)
BURSTINESS = [1.0, 4.0, 10.0]


def _run():
    rows = []
    for b in BURSTINESS:
        trace = generate_trace(
            N_JOBS,
            "finance",
            0.65,
            8,
            mode=ParallelismMode.SEQUENTIAL,
            seed=201,
            arrival_process="mmpp",
            burstiness=b,
        )
        for name, factory in (
            ("SRPT", SRPT),
            ("SJF", SJF),
            ("RR", RoundRobin),
            ("DREP", DrepSequential),
        ):
            r = simulate(trace, 8, factory(), seed=201)
            rows.append(
                {
                    "burstiness": b,
                    "scheduler": name,
                    "mean_flow": r.mean_flow,
                    "p99_flow": r.percentile(99),
                }
            )
    return rows


def test_ext_bursty_arrivals(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x10_bursty", x="burstiness", series="scheduler", value="mean_flow")
    flows = {}
    for r in rows:
        flows.setdefault(r["scheduler"], {})[r["burstiness"]] = r["mean_flow"]
    for name in flows:
        # burstiness hurts everyone
        assert flows[name][10.0] > flows[name][1.0]
    # DREP's degradation stays comparable to RR's (its idealized twin)
    drep_deg = flows["DREP"][10.0] / flows["DREP"][1.0]
    rr_deg = flows["RR"][10.0] / flows["RR"][1.0]
    assert drep_deg <= 1.6 * rr_deg
    # and DREP stays within a modest factor of clairvoyant SRPT even at
    # the highest burstiness
    assert flows["DREP"][10.0] <= 3.0 * flows["SRPT"][10.0]
