"""Extension X11 — the paper's open problem: related machines.

"For future work, it is of interest to design schedulers for parallel
jobs on processors of different speeds ... no prior work has addressed
this problem theoretically in the online model" (Conclusion).

This bench runs the related-machines testbed across heterogeneity
profiles: DREP transplanted verbatim, DREP with the reseat fix (a faster
idle processor mugs the slowest busy one), clairvoyant SRPT matching and
FIFO matching.  The reported number is each policy's mean flow relative
to SRPT-rel on the same machine.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.hetero import (
    DrepRelated,
    FifoRelated,
    SrptRelated,
    geometric_machine,
    simulate_hetero,
    two_class_machine,
    uniform_machine,
)
from repro.workloads.traces import generate_trace

N_JOBS = scaled(8_000)


def _machines():
    return {
        "uniform 8x1": uniform_machine(8),
        "big.LITTLE 2x4+6x1": two_class_machine(2, 6, fast=4.0, slow=1.0),
        "geometric 1..128": geometric_machine(8, ratio=2.0),
    }


def _run():
    rows = []
    for mach_name, mach in _machines().items():
        # calibrate the trace so offered work ~= 60% of the machine's
        # total speed (generate_trace calibrates per unit-speed core)
        eq_m = max(1, round(mach.total_speed))
        trace = generate_trace(
            N_JOBS, "finance", 0.6, eq_m, seed=211, scale_work_with_m=False
        )
        base = simulate_hetero(trace, mach, SrptRelated(), seed=211).mean_flow
        for policy in (
            SrptRelated(),
            FifoRelated(),
            DrepRelated(),
            DrepRelated(reseat=True),
        ):
            r = simulate_hetero(trace, mach, policy, seed=211)
            rows.append(
                {
                    "machine": mach_name,
                    "scheduler": r.scheduler,
                    "mean_flow": r.mean_flow,
                    "vs_srpt_rel": r.mean_flow / base,
                    "preemptions": r.preemptions,
                }
            )
    return rows


def _run_dag_jobs():
    """The open problem's full setting: *parallel DAG* jobs on a
    heterogeneous work-stealing runtime (per-worker speeds in wsim)."""
    import numpy as np

    from repro.analysis.experiments import scale_trace
    from repro.core.job import ParallelismMode
    from repro.workloads.traces import attach_dags
    from repro.wsim.runtime import simulate_ws
    from repro.wsim.schedulers import DrepWS

    base = generate_trace(
        max(40, N_JOBS // 20),
        "finance",
        0.6,
        8,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=212,
        scale_work_with_m=False,
    )
    trace = attach_dags(scale_trace(base, 400.0), parallelism=16, seed=212)
    profiles = {
        "uniform 8x1.75": np.full(8, 1.75),
        "big.LITTLE 2x4+6x1": np.array([4.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
    }
    rows = []
    for name, speeds in profiles.items():
        r = simulate_ws(trace, 8, DrepWS(), seed=212, speeds=speeds)
        rows.append(
            {
                "machine": name,
                "scheduler": "DREP-WS (DAG jobs)",
                "mean_flow": r.mean_flow,
                "preemptions": r.preemptions,
            }
        )
    return rows


def test_ext_related_machines_dag_jobs(benchmark, report):
    rows = run_once(benchmark, _run_dag_jobs)
    report(rows, "x11b_related_dag_jobs", x="machine", series="scheduler", value="mean_flow")
    by = {r["machine"]: r["mean_flow"] for r in rows}
    # same total speed (14): the skewed machine costs speed-oblivious
    # DREP on DAG jobs too, but work stealing's self-balancing keeps the
    # penalty bounded
    assert by["big.LITTLE 2x4+6x1"] <= 3.0 * by["uniform 8x1.75"]


def test_ext_related_machines(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x11_related_machines", x="machine", series="scheduler", value="vs_srpt_rel")
    by = {(r["machine"], r["scheduler"]): r for r in rows}

    # on the uniform control, DREP behaves as in the paper (close to SRPT)
    assert by[("uniform 8x1", "DREP-rel")]["vs_srpt_rel"] <= 2.0
    # heterogeneity hurts the oblivious protocol more...
    hetero_ratio = by[("geometric 1..128", "DREP-rel")]["vs_srpt_rel"]
    uniform_ratio = by[("uniform 8x1", "DREP-rel")]["vs_srpt_rel"]
    assert hetero_ratio >= uniform_ratio * 0.9
    # ...and the reseat fix recovers a large part of the gap on every
    # heterogeneous machine
    for mach_name in ("big.LITTLE 2x4+6x1", "geometric 1..128"):
        plain = by[(mach_name, "DREP-rel")]["vs_srpt_rel"]
        fixed = by[(mach_name, "DREP-rel+reseat")]["vs_srpt_rel"]
        assert fixed <= plain + 1e-9
    # DREP's arrival-only preemption budget holds on every machine
    for (mach_name, sched), r in by.items():
        if sched == "DREP-rel":
            assert r["preemptions"] <= 1.2 * N_JOBS
