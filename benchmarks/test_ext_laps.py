"""Extension X1 — LAPS and SETF in the flow-level simulator.

The paper could not include LAPS even in simulation (it preempts at
infinitesimal time steps and needs the speed-augmentation epsilon);
SETF is cited as the closest prior non-clairvoyant guarantee.  Our
fractional-rate simulator makes the idealized forms exact, so this bench
places them alongside the paper's series: how much does DREP give up
against the theoretically stronger but unimplementable policies?
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_flow_sweep
from repro.core.job import ParallelismMode
from repro.flowsim.policies import LAPS, MLF, SETF, DrepSequential, RoundRobin, SRPT

M_SWEEP = [1, 4, 16, 64]
N_JOBS = scaled(10_000)


def _policies():
    return {
        "SRPT": SRPT,
        "RR": RoundRobin,
        "LAPS(0.5)": lambda: LAPS(beta=0.5),
        "SETF": SETF,
        "MLF": MLF,
        "DREP": DrepSequential,
    }


def test_ext_laps_setf(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: run_flow_sweep(
            distribution="finance",
            load=0.6,
            mode=ParallelismMode.SEQUENTIAL,
            m_values=M_SWEEP,
            n_jobs=N_JOBS,
            seed=111,
            policies=_policies(),
        ),
    )
    report(rows, "x1_laps_setf", x="m")
    flows = {}
    for r in rows:
        flows.setdefault(r["scheduler"], {})[r["m"]] = r["mean_flow"]
    for m in M_SWEEP:
        # SRPT remains the floor
        for name in flows:
            assert flows["SRPT"][m] <= flows[name][m] * (1 + 1e-9)
        # DREP is within a small constant of the idealized non-clairvoyant
        # policies despite its bounded preemptions
        assert flows["DREP"][m] <= 3.0 * flows["SETF"][m]
        assert flows["DREP"][m] <= 3.0 * flows["LAPS(0.5)"][m]
