"""Extension X6 — maximum flow time across runtime schedulers.

The paper notes steal-first "approximates FIFO" and that both steal-first
and admit-first "have been shown to work well for max flow time [18]".
This bench regenerates the other side of the coin the paper only cites:
the same schedulers ranked by *maximum* flow time, where steal-first's
FIFO-like discipline should shine even though it loses on *average*
flow (Figure 3).
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_ws_point, ws_scheduler_factories

N_JOBS = scaled(600)


def _run():
    rows = run_ws_point(
        distribution="finance",
        load=0.7,
        m=8,
        schedulers=ws_scheduler_factories(),
        n_jobs=N_JOBS,
        mean_work_units=400,
        seed=171,
    )
    return rows


def test_ext_max_flow(benchmark, report):
    rows = run_once(benchmark, _run)
    # re-report with p99 which run_ws_point already records
    report(rows, "x6_max_flow", x="scheduler", series="m", value="p99_flow")
    p99 = {r["scheduler"]: r["p99_flow"] for r in rows}
    mean = {r["scheduler"]: r["mean_flow"] for r in rows}
    # the inversion the citations predict: steal-first loses on mean flow
    # (Figure 3) but is competitive at the tail
    assert mean["steal-first"] >= mean["DREP"]
    assert p99["steal-first"] <= 1.5 * min(p99.values())
