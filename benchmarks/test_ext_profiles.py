"""Extension X8 — changing-parallelism simulation (the paper's "difficult" case).

Sec. V-A: "in our simulation experiments, we assume that all jobs are
equally parallel since running accurate simulations with different and
changing parallelisms is difficult".  Our flow-level engine removes the
restriction via DAG parallelism profiles with exact breakpoint events;
the work-stealing runtime simulates the same instances natively.

This bench runs the same DAG trace three ways — flat flow-level
(equally-parallel assumption), profiled flow-level, and the runtime
simulator — and reports how much the equally-parallel assumption
distorts each scheduler's mean flow.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import scale_trace
from repro.core.job import ParallelismMode
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import RoundRobin, SRPT, DrepParallel
from repro.workloads.traces import attach_dags, generate_trace
from repro.wsim.runtime import simulate_ws
from repro.wsim.schedulers import DrepWS

N_JOBS = scaled(400)
M = 8


def _trace():
    base = generate_trace(
        n_jobs=N_JOBS,
        distribution="finance",
        load=0.6,
        m=M,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=181,
        scale_work_with_m=False,
    )
    # parallelism ~= m so ramps actually bind
    return attach_dags(scale_trace(base, 400.0), parallelism=M, seed=181)


def _run():
    trace = _trace()
    rows = []
    flat_cfg = FlowSimConfig()
    prof_cfg = FlowSimConfig(use_profiles=True)
    for name, policy_factory in (
        ("SRPT", SRPT),
        ("RR", RoundRobin),
        ("DREP", DrepParallel),
    ):
        flat = simulate(trace, M, policy_factory(), seed=181, config=flat_cfg)
        prof = simulate(trace, M, policy_factory(), seed=181, config=prof_cfg)
        rows.append(
            {
                "scheduler": name,
                "m": M,
                "flat_flow": flat.mean_flow,
                "profiled_flow": prof.mean_flow,
                "distortion": prof.mean_flow / flat.mean_flow,
            }
        )
    real = simulate_ws(trace, M, DrepWS(), seed=181)
    rows.append(
        {
            "scheduler": "DREP (runtime sim)",
            "m": M,
            "flat_flow": float("nan"),
            "profiled_flow": real.mean_flow,
            "distortion": float("nan"),
        }
    )
    return rows


def test_ext_changing_parallelism(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x8_changing_parallelism", x="scheduler", series="m", value="profiled_flow")
    by = {r["scheduler"]: r for r in rows}
    # profiles only constrain: every policy's profiled flow >= flat flow
    for name in ("SRPT", "RR", "DREP"):
        assert by[name]["profiled_flow"] >= by[name]["flat_flow"] * (1 - 1e-9)
    # the profiled flow-level DREP should land nearer the runtime
    # simulator than the flat one does (it models the ramp the runtime
    # actually pays)
    real = by["DREP (runtime sim)"]["profiled_flow"]
    flat_gap = abs(by["DREP"]["flat_flow"] - real)
    prof_gap = abs(by["DREP"]["profiled_flow"] - real)
    assert prof_gap <= flat_gap * 1.1
