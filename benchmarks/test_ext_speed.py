"""Extension X9 — the empirical speed-competitiveness frontier.

Theorem 1.1 proves DREP needs (4+eps)-speed to be O(1/eps^3)-competitive.
How much speed does it need *in practice* to simply match the
near-optimal unit-speed SRPT?  This bench bisects the frontier per
workload and load level; the answer (~1.1x or less) shows the gap
between the worst-case analysis and typical behaviour.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scaled
from repro.flowsim.policies import DrepSequential, RoundRobin
from repro.theory.competitive import find_required_speed
from repro.workloads.traces import generate_trace

N_JOBS = scaled(8_000)


def _run():
    rows = []
    for dist in ("finance", "bing"):
        for load in (0.5, 0.7):
            trace = generate_trace(N_JOBS, dist, load, 8, seed=191)
            for name, factory in (("DREP", DrepSequential), ("RR", RoundRobin)):
                frontier = find_required_speed(trace, 8, factory, seed=191)
                rows.append(
                    {
                        "distribution": dist,
                        "load": load,
                        "scheduler": name,
                        "required_speed": frontier.required_speed,
                        "iterations": frontier.iterations,
                    }
                )
    return rows


def test_ext_speed_frontier(benchmark, report):
    rows = run_once(benchmark, _run)
    report(rows, "x9_speed_frontier", x="load", series="scheduler", value="required_speed")
    for r in rows:
        # the theorem's 4+eps is wildly conservative in practice
        assert r["required_speed"] <= 2.5, r
    # DREP never needs more than a little extra speed on these workloads
    drep = [r["required_speed"] for r in rows if r["scheduler"] == "DREP"]
    assert max(drep) <= 2.0
