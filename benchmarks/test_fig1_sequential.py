"""Figure 1 — sequential jobs on multiprocessors (paper Sec. V-A).

Four subplots: {Finance, Bing} x {low ~50%, high ~70%} load.  Each sweeps
the number of processors and reports mean flow time for SRPT, SJF, RR and
DREP.  Expected shape (paper's Comparison paragraphs): SRPT/SJF lowest
(clairvoyant), DREP very close to RR, and the DREP/SRPT gap shrinking as
the number of cores grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_flow_sweep
from repro.core.job import ParallelismMode

M_SWEEP = [1, 2, 4, 8, 16, 32, 64]
N_JOBS = scaled(20_000)


def _run(distribution: str, load: float):
    return run_flow_sweep(
        distribution=distribution,
        load=load,
        mode=ParallelismMode.SEQUENTIAL,
        m_values=M_SWEEP,
        n_jobs=N_JOBS,
        seed=101,
    )


def _check_shape(rows):
    flows = {}
    for r in rows:
        flows.setdefault(r["scheduler"], {})[r["m"]] = r["mean_flow"]
    for m in M_SWEEP:
        assert flows["SRPT"][m] <= flows["DREP"][m] * (1 + 1e-9)
        # DREP tracks RR (non-clairvoyant equi-partition); the gap is
        # widest at m=1 on heavy-tailed work (paper Sec. V-A)
        assert flows["DREP"][m] <= flows["RR"][m] * 3.0
    # DREP converges to RR as cores grow
    assert flows["DREP"][M_SWEEP[-1]] <= flows["RR"][M_SWEEP[-1]] * 1.2
    # gap to SRPT narrows with more cores
    assert (
        flows["DREP"][M_SWEEP[-1]] / flows["SRPT"][M_SWEEP[-1]]
        <= flows["DREP"][1] / flows["SRPT"][1] * 1.2
    )


@pytest.mark.parametrize(
    "subplot,distribution,load",
    [
        ("fig1a", "finance", 0.5),
        ("fig1b", "finance", 0.7),
        ("fig1c", "bing", 0.5),
        ("fig1d", "bing", 0.7),
    ],
)
def test_fig1(benchmark, report, subplot, distribution, load):
    rows = run_once(benchmark, lambda: _run(distribution, load))
    report(rows, f"{subplot}_{distribution}_load{load:g}", x="m")
    _check_shape(rows)
