"""Figure 2 — fully parallel jobs (paper Sec. V-A).

Four subplots: {Finance, Bing} x {low, high} load, sweeping processor
count, with SRPT, SWF (= SJF here), RR and DREP.  Expected shape: SRPT is
optimal; DREP stays within the paper's quoted factors ("at most a factor
of 3.25 compared to SRPT and less than 3 compared to SJF"), is worst on
Bing at one core, and converges to RR as cores grow.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_flow_sweep
from repro.core.job import ParallelismMode

M_SWEEP = [1, 2, 4, 8, 16, 32, 64]
N_JOBS = scaled(20_000)


def _run(distribution: str, load: float):
    return run_flow_sweep(
        distribution=distribution,
        load=load,
        mode=ParallelismMode.FULLY_PARALLEL,
        m_values=M_SWEEP,
        n_jobs=N_JOBS,
        seed=102,
    )


@pytest.mark.parametrize(
    "subplot,distribution,load",
    [
        ("fig2a", "finance", 0.5),
        ("fig2b", "finance", 0.7),
        ("fig2c", "bing", 0.5),
        ("fig2d", "bing", 0.7),
    ],
)
def test_fig2(benchmark, report, subplot, distribution, load):
    rows = run_once(benchmark, lambda: _run(distribution, load))
    report(rows, f"{subplot}_{distribution}_load{load:g}", x="m")
    flows = {}
    for r in rows:
        flows.setdefault(r["scheduler"], {})[r["m"]] = r["mean_flow"]
    for m in M_SWEEP:
        # SRPT is optimal in this setting
        for s in ("SWF", "RR", "DREP"):
            assert flows["SRPT"][m] <= flows[s][m] * (1 + 1e-9)
        # the paper's factors, with sampling slack (the paper quotes 3.25
        # vs SRPT and <3 vs SJF; our synthetic Bing tail at 70% load and
        # m=1 reaches ~4.4 — see EXPERIMENTS.md)
        assert flows["DREP"][m] <= 5.0 * flows["SRPT"][m]
        assert flows["DREP"][m] <= 4.5 * flows["SWF"][m]
    # convergence to RR with more cores: from above on heavy-tailed Bing,
    # from below on light-tailed Finance (DREP's random dedication beats
    # egalitarian sharing when job sizes are similar)
    ratio_last = flows["DREP"][M_SWEEP[-1]] / flows["RR"][M_SWEEP[-1]]
    assert abs(ratio_last - 1.0) <= 0.15
    gap_first = abs(flows["DREP"][1] / flows["RR"][1] - 1.0)
    gap_last = abs(ratio_last - 1.0)
    assert gap_last <= gap_first + 0.02
