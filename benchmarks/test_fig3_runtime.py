"""Figure 3 — parallel jobs on the work-stealing runtime (paper Sec. V-B).

Four subplots: {Finance, Bing} x {16 cores, 8 cores}, sweeping system
load over the paper's three levels, with DREP, SWF-approx, steal-first
and admit-first running inside the simulated Cilk-Plus-style runtime
(DESIGN.md Substitution 1).  Expected shape: DREP comparable to the
clairvoyant SWF approximation, admit-first close to DREP, steal-first the
weakest at high load.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_ws_sweep

LOADS = [0.5, 0.6, 0.7]
N_JOBS = scaled(600)


def _run(distribution: str, m: int):
    return run_ws_sweep(
        distribution=distribution,
        loads=LOADS,
        m=m,
        n_jobs=N_JOBS,
        mean_work_units=400,
        seed=103,
    )


@pytest.mark.parametrize(
    "subplot,distribution,m",
    [
        ("fig3a", "finance", 16),
        ("fig3b", "bing", 16),
        ("fig3c", "finance", 8),
        ("fig3d", "bing", 8),
    ],
)
def test_fig3(benchmark, report, subplot, distribution, m):
    rows = run_once(benchmark, lambda: _run(distribution, m))
    report(rows, f"{subplot}_{distribution}_m{m}", x="load")
    flows = {}
    for r in rows:
        flows.setdefault(r["scheduler"], {})[r["load"]] = r["mean_flow"]
    for load in LOADS:
        # DREP has comparable performance with the work-stealing SWF
        assert flows["DREP"][load] <= 2.5 * flows["SWF"][load]
        # DREP and admit-first have similar performance
        ratio = flows["DREP"][load] / flows["admit-first"][load]
        assert 0.4 <= ratio <= 2.5
    # flow grows with load for every scheduler (skip at smoke-test sizes
    # where a dozen heavy-tailed jobs dominate the mean)
    if N_JOBS >= 200:
        for name, series in flows.items():
            assert series[0.7] > series[0.5] * 0.9, name
