"""Structural experiment X4 — the steal-potential lemma (Lemma 4.8).

Regenerates the statistical claim underlying the critical-path term of
the analysis: the steal potential psi never increases during execution,
and over windows containing d_i steal attempts it drops by a constant
fraction often enough that E[log3 psi] falls by at least ~1/16 per
window.  No figure in the paper corresponds to this; it is the analysis'
load-bearing lemma, so we measure it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import spawn_tree
from repro.theory.potential import snapshot_runtime
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import DrepWS


def _trace(n_jobs: int) -> Trace:
    jobs = []
    rngs = np.random.default_rng(151)
    t = 0.0
    for i in range(n_jobs):
        d = spawn_tree(int(rngs.integers(2, 6)), int(rngs.integers(4, 40)))
        jobs.append(
            JobSpec(
                job_id=i,
                release=t,
                work=float(d.work),
                span=float(d.span),
                mode=ParallelismMode.DAG,
                dag=d,
            )
        )
        t += float(rngs.exponential(60.0))
    return Trace(jobs=jobs, m=4)


def _run():
    trace = _trace(scaled(60))
    rt = WsRuntime(trace, 4, DrepWS(), seed=151)
    rt.scheduler.reset(rt)
    rt._admit_arrivals()
    history: dict[int, list[float]] = {}
    increases = 0
    observations = 0
    guard = 0
    while rt._completed < len(trace) and guard < 2_000_000:
        snap = snapshot_runtime(rt)
        for job_id, psi in zip(snap.job_ids, snap.psi_log3):
            series = history.setdefault(job_id, [])
            if series and psi > series[-1] + 1e-9:
                increases += 1
            if series:
                observations += 1
            series.append(psi)
        rt._admit_arrivals()
        for w in rt.workers:
            rt._act(w)
        rt.step += 1
        guard += 1
    # per-job total decrease from start to finish
    drops = [s[0] - s[-1] for s in history.values() if len(s) > 1]
    return {
        "jobs": len(history),
        "increases": increases,
        "observations": observations,
        "mean_total_drop_log3": float(np.mean(drops)) if drops else 0.0,
        "completed": rt._completed,
        "total": len(trace),
    }


def test_steal_potential_lemma(benchmark, report):
    stats = run_once(benchmark, _run)
    report([stats], "x4_potential", x="jobs", series="total", value="increases")
    assert stats["completed"] == stats["total"]
    # Lemma 4.8 part 1: psi never increases between arrivals.  Arrivals
    # insert fresh source nodes, but each job's own psi series includes
    # only its own nodes, so the per-job series must be monotone.
    assert stats["increases"] == 0
    # psi must have decreased substantially over each job's lifetime
    assert stats["mean_total_drop_log3"] > 0


def test_steal_potential_window_statistic(benchmark, report):
    """Lemma 4.8 part 2: windows of d steal attempts drop psi by >= 1/4
    with probability > 1/4."""
    from repro.theory.lemma48 import Lemma48Tracker
    from repro.wsim.schedulers import DrepWS

    def run():
        trace = _trace(scaled(60))
        tracker = Lemma48Tracker()
        WsRuntime(trace, 4, DrepWS(), seed=152).run(observer=tracker)
        s = tracker.stats
        return {
            "windows": s.windows,
            "quarter_drop_fraction": s.quarter_drop_fraction,
            "mean_log3_drop": s.mean_log3_drop,
        }

    stats = run_once(benchmark, run)
    report(
        [stats], "x4_potential_windows", x="windows", series="windows",
        value="quarter_drop_fraction",
    )
    assert stats["windows"] > 10
    assert stats["quarter_drop_fraction"] > 0.2
    assert stats["mean_log3_drop"] > 1.0 / 16.0
