"""Theorem 1.2 — preemption and switch budgets (experiment T2).

The paper has no figure for this theorem, but it is the core practicality
claim, so we regenerate it as a table: observed preemptions and switches
for sequential DREP (expected preemptions <= n) and for DREP with work
stealing (switches <= O(mn)), across job counts and machine sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, scaled
from repro.analysis.experiments import run_ws_point, ws_scheduler_factories
from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import DrepParallel, DrepSequential
from repro.theory.preemptions import check_theorem_1_2
from repro.workloads.traces import generate_trace


def _sequential_rows():
    rows = []
    for m in [1, 4, 16, 64]:
        n = scaled(20_000)
        trace = generate_trace(n, "finance", 0.6, m, seed=201 + m)
        result = simulate(trace, m, DrepSequential(), seed=201 + m)
        budget = check_theorem_1_2(result, n)
        rows.append(
            {
                "variant": "sequential",
                "m": m,
                "n_jobs": n,
                "preemptions": budget.observed_preemptions,
                "preemptions_per_job": budget.sequential_ratio(),
                "switches": budget.observed_switches,
                "switch_bound_2mn": budget.switch_bound,
            }
        )
    return rows


def _parallel_rows():
    rows = []
    for m in [4, 16]:
        n = scaled(20_000)
        trace = generate_trace(
            n, "finance", 0.6, m, mode=ParallelismMode.FULLY_PARALLEL, seed=301 + m
        )
        result = simulate(trace, m, DrepParallel(), seed=301 + m)
        budget = check_theorem_1_2(result, n)
        rows.append(
            {
                "variant": "parallel",
                "m": m,
                "n_jobs": n,
                "preemptions": budget.observed_preemptions,
                "preemptions_per_job": budget.sequential_ratio(),
                "switches": budget.observed_switches,
                "switch_bound_2mn": budget.switch_bound,
            }
        )
    return rows


def test_theorem_1_2_sequential(benchmark, report):
    rows = run_once(benchmark, _sequential_rows)
    report(rows, "t2_preemptions_sequential", x="m", series="variant", value="preemptions_per_job")
    for r in rows:
        # Theorem 1.2: O(n) expected preemptions — observed ~<= 1 per job
        assert r["preemptions_per_job"] <= 1.2
        assert r["switches"] <= r["switch_bound_2mn"]


def test_theorem_1_2_parallel(benchmark, report):
    rows = run_once(benchmark, _parallel_rows)
    report(rows, "t2_preemptions_parallel", x="m", series="variant", value="switches")
    for r in rows:
        assert r["switches"] <= r["switch_bound_2mn"]
        # per-arrival expected preemptions: m * 1/|A| <= m
        assert r["preemptions"] <= r["m"] * r["n_jobs"]


def test_runtime_drep_preempts_only_on_arrivals(benchmark, report):
    """In the runtime simulator, DREP's preemption count stays far below
    the clairvoyant SWF approximation's switch count."""

    def run():
        return run_ws_point(
            "finance",
            0.6,
            8,
            ws_scheduler_factories(),
            n_jobs=scaled(400),
            mean_work_units=400,
            seed=401,
        )

    rows = run_once(benchmark, run)
    report(rows, "t2_runtime_preemptions", x="scheduler", series="m", value="preemptions")
    by = {r["scheduler"]: r for r in rows}
    n = by["DREP"]["preemptions"]
    assert n <= 8 * scaled(400)  # O(mn) hard budget
    assert by["steal-first"]["preemptions"] == 0  # never preempts
    assert by["admit-first"]["preemptions"] == 0
