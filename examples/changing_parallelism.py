#!/usr/bin/env python
"""Simulating jobs whose parallelism changes as they run.

The paper's simulations "assume that all jobs are equally parallel since
running accurate simulations with different and changing parallelisms is
difficult" (Sec. V-A).  This example shows the library doing the
difficult thing three ways on the same instance:

1. flat flow-level simulation (the paper's equally-parallel assumption);
2. profiled flow-level simulation — each job's usable parallelism
   follows its DAG's parallelism profile with exact breakpoint events;
3. the work-stealing runtime simulator executing the DAGs natively.

Run:  python examples/changing_parallelism.py
"""

from __future__ import annotations

from repro.analysis.experiments import scale_trace
from repro.analysis.tables import format_table
from repro.core.job import ParallelismMode
from repro.dag import ParallelismProfile, spawn_tree
from repro.flowsim import FlowSimConfig, DrepParallel, SRPT, simulate
from repro.workloads import attach_dags, generate_trace
from repro.wsim import DrepWS, simulate_ws


def show_profile() -> None:
    dag = spawn_tree(depth=4, leaf_weight=25)
    profile = ParallelismProfile.from_dag(dag)
    print(f"spawn_tree(4, 25): work={dag.work}, span={dag.span}, "
          f"avg parallelism={profile.average_parallelism:.1f}")
    print("parallelism ramp (per profile segment):",
          " ".join(f"{int(p)}" for p in profile.parallelism))
    print()


def main() -> None:
    show_profile()

    m = 8
    base = generate_trace(
        n_jobs=200,
        distribution="finance",
        load=0.6,
        m=m,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=11,
        scale_work_with_m=False,
    )
    trace = attach_dags(scale_trace(base, 400.0), parallelism=m, seed=11)

    rows = []
    for name, policy in (("SRPT", SRPT), ("DREP", DrepParallel)):
        flat = simulate(trace, m, policy(), seed=11)
        prof = simulate(
            trace, m, policy(), seed=11, config=FlowSimConfig(use_profiles=True)
        )
        rows.append(
            {
                "scheduler": name,
                "flat (equally parallel)": flat.mean_flow,
                "profiled (changing)": prof.mean_flow,
                "distortion": prof.mean_flow / flat.mean_flow,
            }
        )
    real = simulate_ws(trace, m, DrepWS(), seed=11)
    rows.append(
        {
            "scheduler": "DREP on runtime sim",
            "flat (equally parallel)": "",
            "profiled (changing)": real.mean_flow,
            "distortion": "",
        }
    )
    print(format_table(rows))
    print(
        "\nThe equally-parallel assumption undercharges jobs during their"
        "\nsequential ramp-up/down phases; profiles recover most of the gap"
        "\nto the native runtime simulation."
    )


if __name__ == "__main__":
    main()
