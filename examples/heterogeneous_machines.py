#!/usr/bin/env python
"""Exploring the paper's open problem: processors of different speeds.

The paper closes with: "it is of interest to design schedulers for
parallel jobs on processors of different speeds ... no prior work has
addressed this problem theoretically in the online model."  This example
runs the library's related-machines testbed across heterogeneity
profiles and surfaces the empirical answer so far:

* DREP transplanted verbatim stays great on identical processors but
  degrades with heterogeneity — its speed-oblivious random placement
  lets long jobs camp on slow processors;
* one work-stealing-flavored fix (an idle faster processor "mugs" the
  slowest busy one) recovers almost the whole gap while keeping DREP's
  non-clairvoyance and its arrival-only preemption discipline.

Run:  python examples/heterogeneous_machines.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.hetero import (
    DrepRelated,
    FifoRelated,
    SrptRelated,
    geometric_machine,
    simulate_hetero,
    two_class_machine,
    uniform_machine,
)
from repro.workloads import generate_trace


def main() -> None:
    machines = {
        "uniform (8 x 1.0)": uniform_machine(8),
        "big.LITTLE (2 x 4.0 + 6 x 1.0)": two_class_machine(2, 6, fast=4.0),
        "geometric (1,2,4,...,128)": geometric_machine(8, ratio=2.0),
    }
    rows = []
    for mach_name, mach in machines.items():
        eq_m = max(1, round(mach.total_speed))
        trace = generate_trace(
            4000, "finance", 0.6, eq_m, seed=13, scale_work_with_m=False
        )
        base = simulate_hetero(trace, mach, SrptRelated(), seed=13).mean_flow
        for policy in (
            SrptRelated(),
            FifoRelated(),
            DrepRelated(),
            DrepRelated(reseat=True),
        ):
            r = simulate_hetero(trace, mach, policy, seed=13)
            rows.append(
                {
                    "machine": mach_name,
                    "scheduler": r.scheduler,
                    "mean_flow": r.mean_flow,
                    "vs SRPT-rel": r.mean_flow / base,
                    "preemptions": r.preemptions,
                }
            )
    print(format_table(rows))
    print(
        "\nPlain DREP's ratio to clairvoyant SRPT matching grows with"
        "\nheterogeneity; the reseat upgrade (idle fast processor mugs the"
        "\nslowest busy one) restores near-parity without clairvoyance."
    )


if __name__ == "__main__":
    main()
