#!/usr/bin/env python
"""Interactive-server scenario: why average flow time needs preemption.

Recreates the paper's motivating example (Sec. I, "Challenges"): a large
parallel job occupies the whole machine, then a burst of small queries
arrives — the situation a Bing-like interactive service faces constantly.
A scheduler that never preempts (FIFO, or plain work stealing) makes
every small query wait for the giant; DREP's arrival-time coin flips
rescue them with at most one expected preemption per arrival.

Run:  python examples/interactive_server.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim import FIFO, DrepParallel, RoundRobin, SRPT, simulate
from repro.workloads import Trace, bing_distribution


def build_burst_trace(m: int, n_small: int = 200, seed: int = 7) -> Trace:
    """One giant job at t=0, then a Poisson burst of small queries."""
    rng = np.random.default_rng(seed)
    giant_work = 400.0 * m
    jobs = [
        JobSpec(
            job_id=0,
            release=0.0,
            work=giant_work,
            span=giant_work / m,
            mode=ParallelismMode.FULLY_PARALLEL,
        )
    ]
    small_works = bing_distribution().sample(rng, n_small)
    t = 1.0
    for i in range(n_small):
        w = float(small_works[i]) * m
        jobs.append(
            JobSpec(
                job_id=i + 1,
                release=t,
                work=w,
                span=w / m,
                mode=ParallelismMode.FULLY_PARALLEL,
            )
        )
        t += float(rng.exponential(2.0))
    return Trace(jobs=jobs, m=m, load=0.0, distribution="bing-burst")


def main() -> None:
    m = 16
    trace = build_burst_trace(m)
    small_ids = np.arange(1, len(trace))

    rows = []
    for policy in (FIFO(), SRPT(), RoundRobin(), DrepParallel()):
        r = simulate(trace, m, policy, seed=7)
        rows.append(
            {
                "scheduler": r.scheduler,
                "mean_flow_all": r.mean_flow,
                "mean_flow_small": float(r.flow_times[small_ids].mean()),
                "p99_small": float(np.percentile(r.flow_times[small_ids], 99)),
                "giant_flow": float(r.flow_times[0]),
                "preemptions": r.preemptions,
            }
        )
    print("Giant job + burst of small queries on", m, "cores:\n")
    print(format_table(rows))
    print(
        "\nFIFO strands the small queries behind the giant; DREP keeps their"
        "\nlatency near the preemption-happy idealized schedulers while"
        "\npreempting only on arrivals."
    )


if __name__ == "__main__":
    main()
