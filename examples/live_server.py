#!/usr/bin/env python
"""Live serving tour: DREP as an online service, verified against batch.

Boots the `repro.serve` JSON-lines server in-process on an ephemeral
port, streams a 300-job Finance trace at load 0.7 over a real socket,
watches the rolling metrics mid-flight, then drains and checks the
central claim of the serving layer: the live flow times are *identical*
to an offline ``flowsim.simulate`` of the same trace — DREP's coin
flips included.

Run:  python examples/live_server.py
Docs: docs/serving.md
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.flowsim import simulate
from repro.flowsim.policies import DrepSequential
from repro.serve.server import SchedulerServer, ServeConfig
from repro.workloads import generate_trace

M, N_JOBS, LOAD, SEED = 4, 300, 0.7, 11


async def call(reader, writer, **request) -> dict:
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def main() -> None:
    config = ServeConfig(
        m=M, policy="drep", seed=SEED, port=0, max_active=200, window=500.0
    )
    server = SchedulerServer(config)
    await server.start()
    reader, writer = await asyncio.open_connection(config.host, server.port)

    hello = await call(reader, writer, op="hello")
    print(
        f"connected to {hello['service']}: policy={hello['policy']} "
        f"m={hello['m']} clock={hello['clock']} port={server.port}"
    )

    trace = generate_trace(N_JOBS, "finance", LOAD, M, seed=SEED)
    print(f"streaming {N_JOBS} finance jobs at load {LOAD} ...")
    for spec in trace.jobs:
        resp = await call(
            reader, writer, op="submit", work=spec.work, release=spec.release
        )
        assert resp["accepted"], resp
        if resp["job_id"] == N_JOBS // 2:  # peek at the halfway point
            stats = (await call(reader, writer, op="stats"))["stats"]
            w = stats["window"]
            print(
                f"  halfway: t={stats['now']:.1f} active={stats['active']} "
                f"windowed mean flow={w['mean_flow']:.2f} "
                f"p99={w['p99_flow']:.2f} backpressure={stats['backpressure']:.2f}"
            )

    print("scrape-ready metrics (excerpt):")
    text = (await call(reader, writer, op="metrics"))["text"]
    for line in text.splitlines():
        if line.startswith("drep_serve_flow_time"):
            print(f"  {line}")

    done = await call(reader, writer, op="drain", include_flows=True)
    live = np.array(done["flow_times"])
    print(
        f"drained: n={done['result']['n_jobs']} "
        f"mean flow={done['result']['mean_flow']:.3f} "
        f"makespan={done['now']:.1f}"
    )

    writer.write(b'{"op": "shutdown"}\n')
    await writer.drain()
    await reader.readline()
    writer.close()
    await server.wait_closed()

    offline = simulate(trace, M, DrepSequential(), seed=SEED)
    diff = float(np.abs(live - offline.flow_times).max())
    print(f"offline flowsim.simulate of the same trace: max |diff| = {diff}")
    assert diff == 0.0, "live and batch runs must agree exactly"
    print("live == batch, bit for bit — online numbers are paper numbers")


if __name__ == "__main__":
    asyncio.run(main())
