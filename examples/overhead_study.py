#!/usr/bin/env python
"""Quantifying the paper's practicality argument: preemption overhead.

Sec. I argues that theoretically strong schedulers (RR/LAPS/SETF) are
impractical because they preempt constantly, and every preemption pays a
state save/restore cost.  This example makes the argument a number: it
sweeps the per-preemption overhead in the runtime simulator and compares

* DREP — preempts only on job arrivals (Theorem 1.2), and
* quantum-based round-robin — the practical realization of RR, which
  re-partitions workers every quantum.

Run:  python examples/overhead_study.py
"""

from __future__ import annotations

from repro.analysis.experiments import scale_trace
from repro.analysis.tables import format_table
from repro.core.job import ParallelismMode
from repro.workloads import attach_dags, generate_trace
from repro.wsim import DrepWS, RrQuantumWS, WsConfig, simulate_ws


def main() -> None:
    m = 8
    base = generate_trace(
        n_jobs=150,
        distribution="finance",
        load=0.65,
        m=m,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=31,
        scale_work_with_m=False,
    )
    trace = attach_dags(scale_trace(base, 300.0), parallelism=2 * m, seed=31)

    rows = []
    for overhead in (0, 2, 10, 50):
        config = WsConfig(preemption_overhead=overhead)
        for scheduler in (DrepWS(), RrQuantumWS(quantum=50)):
            r = simulate_ws(trace, m, scheduler, seed=31, config=config)
            rows.append(
                {
                    "overhead (steps)": overhead,
                    "scheduler": r.scheduler,
                    "mean_flow": r.mean_flow,
                    "preemptions": r.preemptions,
                    "overhead_steps": r.extra["overhead_steps"],
                }
            )
    print(f"{len(trace)} DAG jobs on {m} workers, ~65% load:\n")
    print(format_table(rows))
    print(
        "\nDREP's flow barely moves (it preempts only on arrivals), while"
        "\nquantum-RR — which must preempt every quantum to stay fair —"
        "\ncollapses once preemptions carry a realistic cost.  This is the"
        "\ntheory-practice gap the paper's Sec. I describes, quantified."
    )


if __name__ == "__main__":
    main()
