#!/usr/bin/env python
"""Fan a parameter sweep out over worker processes.

Sweep cells are independent simulations, and the engines are pure
Python, so real speedup needs processes (the GIL rules out threads).
`repro.analysis.parallel` runs declaratively-described cells over a
process pool with deterministic, submission-ordered results.

Run:  python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import time

from repro.analysis.parallel import FlowCell, run_cells
from repro.analysis.tables import series_table


def main() -> None:
    cells = [
        FlowCell(
            policy=policy,
            distribution="bing",
            load=0.6,
            m=m,
            n_jobs=4000,
            seed=17,
        )
        for m in (1, 4, 16)
        for policy in ("srpt", "sjf", "rr", "drep")
    ]

    t0 = time.time()
    serial = run_cells(cells, workers=1)
    t_serial = time.time() - t0

    workers = min(4, os.cpu_count() or 1)
    t0 = time.time()
    parallel = run_cells(cells, workers=workers)
    t_parallel = time.time() - t0

    strip = lambda rows: [
        {k: v for k, v in r.items() if k != "pid"} for r in rows
    ]
    assert strip(serial) == strip(parallel), "determinism violated!"

    print(f"{len(cells)} cells: serial {t_serial:.1f}s, "
          f"{workers} workers {t_parallel:.1f}s "
          f"(speedup {t_serial / t_parallel:.1f}x)\n")
    print(series_table(parallel, x="m", series="policy", value="mean_flow"))
    print("\nIdentical results either way — workers only change wall time.")


if __name__ == "__main__":
    main()
