#!/usr/bin/env python
"""Quickstart: schedule a job stream with DREP and compare against SRPT.

Generates a Poisson stream of jobs from the synthetic Finance workload,
runs the paper's DREP scheduler and the clairvoyant SRPT baseline on the
same instance, and prints mean flow time plus DREP's practicality
counters (preemptions bounded by Theorem 1.2).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.flowsim import DrepSequential, RoundRobin, SRPT, simulate
from repro.theory.preemptions import check_theorem_1_2
from repro.workloads import generate_trace


def main() -> None:
    m = 8  # processors
    n_jobs = 5_000

    # A trace calibrated to ~60% machine utilization (paper Sec. V-A).
    trace = generate_trace(
        n_jobs=n_jobs,
        distribution="finance",
        load=0.6,
        m=m,
        seed=42,
    )
    print(f"Trace: {n_jobs} sequential jobs, offered load "
          f"{trace.offered_load():.2f} on {m} cores\n")

    rows = []
    for policy in (SRPT(), RoundRobin(), DrepSequential()):
        result = simulate(trace, m, policy, seed=42)
        rows.append(
            {
                "scheduler": result.scheduler,
                "clairvoyant": policy.clairvoyant,
                "mean_flow": result.mean_flow,
                "p99_flow": result.percentile(99),
                "preemptions": result.preemptions,
            }
        )
    print(format_table(rows))

    drep = simulate(trace, m, DrepSequential(), seed=42)
    budget = check_theorem_1_2(drep, n_jobs)
    print(
        f"\nTheorem 1.2 check: {budget.observed_preemptions} preemptions for "
        f"{n_jobs} jobs ({budget.sequential_ratio():.2f} per job, expected <= 1); "
        f"switches {budget.observed_switches} <= bound {budget.switch_bound}: "
        f"{budget.within_switch_bound}"
    )


if __name__ == "__main__":
    main()
