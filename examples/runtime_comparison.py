#!/usr/bin/env python
"""Work-stealing runtime comparison (the paper's Figure 3 in miniature).

Runs DAG jobs through the simulated Cilk-Plus-style runtime under the
four schedulers of Sec. V-B — DREP, the SWF approximation, steal-first
and admit-first — and prints mean flow alongside the runtime-mechanics
counters (steal attempts, muggings, preemptions) that explain the
practicality story.

Run:  python examples/runtime_comparison.py
"""

from __future__ import annotations

from repro.analysis.experiments import scale_trace
from repro.analysis.tables import format_table
from repro.core.job import ParallelismMode
from repro.workloads import attach_dags, generate_trace
from repro.wsim import (
    AdmitFirstWS,
    DrepWS,
    StealFirstWS,
    SwfApproxWS,
    simulate_ws,
)


def main() -> None:
    m = 8
    base = generate_trace(
        n_jobs=250,
        distribution="bing",
        load=0.65,
        m=m,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=23,
        scale_work_with_m=False,
    )
    # convert unit-mean work into integer runtime steps and attach
    # Cilk-style DAGs (spawn trees / fork-join loops)
    trace = attach_dags(scale_trace(base, 400.0), parallelism=2 * m, seed=23)
    print(
        f"{len(trace)} DAG jobs ({trace.total_work:.0f} work units) on {m} "
        f"simulated workers, ~{trace.offered_load(m):.0%} load\n"
    )

    rows = []
    for scheduler in (DrepWS(), SwfApproxWS(), StealFirstWS(), AdmitFirstWS()):
        r = simulate_ws(trace, m, scheduler, seed=23)
        rows.append(
            {
                "scheduler": r.scheduler,
                "mean_flow": r.mean_flow,
                "p99_flow": r.percentile(99),
                "steals": r.steal_attempts,
                "muggings": r.muggings,
                "preemptions": r.preemptions,
                "utilization": r.extra["utilization"],
            }
        )
    print(format_table(rows))
    print(
        "\nDREP tracks the clairvoyant SWF approximation while staying"
        "\nnon-clairvoyant; muggings are DREP's whole-deque takeovers of"
        "\ndeques abandoned at preemption time (Sec. IV-A)."
    )


if __name__ == "__main__":
    main()
