#!/usr/bin/env python
"""Verify the paper's structural results empirically.

Three checks:

1. **Theorem 1.2** — sequential DREP preempts at most once per arrival in
   expectation; total switches stay within O(mn).
2. **Lemma 4.8** — the steal potential psi of every job is non-increasing
   while the work-stealing runtime executes.
3. **Competitive ratios** — DREP's mean flow against the Observation-1
   lower bound and the SRPT near-optimal proxy across machine sizes.

Run:  python examples/theory_verification.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import spawn_tree
from repro.flowsim import DrepSequential, simulate
from repro.theory import (
    check_theorem_1_2,
    empirical_competitive_ratio,
    snapshot_runtime,
)
from repro.workloads import Trace, generate_trace
from repro.wsim import DrepWS, WsRuntime


def check_theorem() -> None:
    print("— Theorem 1.2: preemption budgets —")
    rows = []
    for m in (2, 8, 32):
        n = 8_000
        trace = generate_trace(n, "finance", 0.6, m, seed=m)
        result = simulate(trace, m, DrepSequential(), seed=m)
        budget = check_theorem_1_2(result, n)
        rows.append(budget.summary())
    print(format_table(rows))


def check_lemma_48() -> None:
    print("\n— Lemma 4.8: steal potential never increases —")
    rng = np.random.default_rng(5)
    jobs, t = [], 0.0
    for i in range(40):
        d = spawn_tree(int(rng.integers(2, 6)), int(rng.integers(5, 30)))
        jobs.append(
            JobSpec(i, t, float(d.work), float(d.span), ParallelismMode.DAG, dag=d)
        )
        t += float(rng.exponential(50.0))
    trace = Trace(jobs=jobs, m=4)

    rt = WsRuntime(trace, 4, DrepWS(), seed=5)
    rt.scheduler.reset(rt)
    rt._admit_arrivals()
    last: dict[int, float] = {}
    increases = 0
    while rt._completed < len(trace):
        snap = snapshot_runtime(rt)
        for job_id, psi in zip(snap.job_ids, snap.psi_log3):
            if job_id in last and psi > last[job_id] + 1e-9:
                increases += 1
            last[job_id] = psi
        rt._admit_arrivals()
        for w in rt.workers:
            rt._act(w)
        rt.step += 1
    print(f"monitored {len(trace)} jobs over {rt.step} steps: "
          f"{increases} potential increases observed (expected: 0)")


def check_ratios() -> None:
    print("\n— empirical competitiveness of DREP —")
    rows = []
    for m in (1, 4, 16, 64):
        trace = generate_trace(6_000, "finance", 0.5, m, seed=9)
        result = simulate(trace, m, DrepSequential(), seed=9)
        ratios = empirical_competitive_ratio(result, trace, m, seed=9)
        rows.append({"m": m, **{k: round(v, 3) for k, v in ratios.items()}})
    print(format_table(rows))
    print("(vs_srpt shrinking toward 1 as m grows is the paper's Fig. 1 story)")


def main() -> None:
    check_theorem()
    check_lemma_48()
    check_ratios()


if __name__ == "__main__":
    main()
