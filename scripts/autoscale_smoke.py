#!/usr/bin/env python
"""CI smoke for the elastic-capacity layer (`make autoscale-smoke`).

1. runs the closed-loop flowsim driver twice on the same seed and
   checks the m(t) decision trace, requeue log and summary row are
   byte-identical, with **zero unaccounted displaced work**;
2. boots a `drep-sim serve --autoscale` subprocess, advances an idle
   clock, and checks the controller scaled the machine down to
   `--autoscale-m-min` at exact tick boundaries;
3. runs a tiny `drep-sim autoscale` experiment grid to make sure the
   Pareto-report CLI is alive (it exits non-zero itself if any
   displaced work goes unaccounted).

Exits non-zero (with a message) on any mismatch.  Needs only the
package itself — no pytest.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.autoscale.guard import AutoscaleConfig  # noqa: E402
from repro.autoscale.loop import run_flowsim_elastic  # noqa: E402
from repro.flowsim.policies import policy_by_name  # noqa: E402
from repro.workloads.traces import generate_trace  # noqa: E402

SERVE = [
    sys.executable, "-m", "repro.cli", "serve",
    "--m", "4", "--policy", "drep", "--seed", "11", "--port", "0",
    "--autoscale", "--autoscale-m-min", "1", "--autoscale-tick", "5",
    "--autoscale-cooldown-up", "0", "--autoscale-cooldown-down", "0",
]


def spawn() -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        SERVE, env=env, cwd=REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  [server] {line}")
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise SystemExit("server never reported a port")


def call(sock_file, sock, **request) -> dict:
    sock.sendall(json.dumps(request).encode() + b"\n")
    line = sock_file.readline()
    if not line:
        raise SystemExit("server closed the connection")
    return json.loads(line)


def main() -> None:
    print("== phase 1: closed-loop determinism + displaced-work accounting")
    cfg = AutoscaleConfig(
        m_min=1, m_max=4, tick=5.0,
        up_watermark=15.0, down_watermark=4.0,
        cooldown_up=0.0, cooldown_down=0.0, requeue_delay=1.0,
    )
    trace = generate_trace(100, "finance", 0.7, 4, seed=5)
    rows = [
        run_flowsim_elastic(trace, policy_by_name("drep"), cfg, seed=5)
        for _ in range(2)
    ]
    a, b = (json.dumps(r, sort_keys=True) for r in rows)
    if a != b:
        raise SystemExit("FAIL: same-seed elastic runs are not "
                         "byte-identical")
    row = rows[0]
    if row["displaced_unaccounted"] != 0.0:
        raise SystemExit(
            f"FAIL: {row['displaced_unaccounted']:g} displaced work "
            "unaccounted"
        )
    print(
        f"   byte-identical; m(t) changed {len(row['m_trace'])}x, "
        f"{row['requeues']} requeues, displaced work fully accounted"
    )

    print("== phase 2: elastic serve tier scales an idle machine down")
    proc, port = spawn()
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        fh = sock.makefile("rb")
        hello = call(fh, sock, op="hello")
        assert hello["ok"] and hello.get("autoscale"), hello
        resp = call(fh, sock, op="advance", to=50.0)
        assert resp["ok"], resp
        stats = call(fh, sock, op="stats")["stats"]["autoscale"]
        if stats["m_current"] != 1 or stats["ticks"] != 10:
            raise SystemExit(
                f"FAIL: expected m=1 after 10 ticks, got {stats}"
            )
        call(fh, sock, op="shutdown")
    finally:
        if proc.poll() is None:
            proc.terminate()
        proc.wait(timeout=30)
    print(f"   m 4 → {stats['m_current']} over {stats['ticks']} ticks, "
          f"{stats['scale_downs']} scale-downs")

    print("== phase 3: autoscale experiment CLI")
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "autoscale",
         "--n-jobs", "60", "--m-max", "4", "--policies", "drep", "srpt",
         "--ws-schedulers", "none", "--seed", "3"],
        env=env, cwd=REPO, check=True,
    )
    print("autoscale-smoke: OK")


if __name__ == "__main__":
    main()
