#!/usr/bin/env python
"""CI smoke for the robustness layer (`make faults-smoke`).

1. boots a journaled `drep-sim serve` subprocess, pushes half a trace,
   SIGKILLs it mid-workload;
2. restarts the server on the same journal directory, pushes the rest,
   drains, and checks the per-job flow times equal an uninterrupted
   in-process run **bit for bit**;
3. runs a tiny `drep-sim faults` resilience grid to make sure the fault
   injection CLI is alive.

Exits non-zero (with a message) on any mismatch.  Needs only the
package itself — no pytest.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.serve.server import ServeConfig  # noqa: E402
from repro.workloads.traces import generate_trace  # noqa: E402

SERVE = [
    sys.executable, "-m", "repro.cli", "serve",
    "--m", "2", "--policy", "drep", "--seed", "11",
    "--port", "0", "--snapshot-every", "8",
]


def spawn(journal_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        SERVE + ["--journal-dir", journal_dir],
        env=env, cwd=REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  [server] {line}")
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise SystemExit("server never reported a port")


def call(sock_file, sock, **request) -> dict:
    sock.sendall(json.dumps(request).encode() + b"\n")
    line = sock_file.readline()
    if not line:
        raise SystemExit("server closed the connection")
    return json.loads(line)


def main() -> None:
    trace = generate_trace(60, "finance", 0.7, 2, seed=11)
    cut = len(trace.jobs) // 2

    ref = ServeConfig(m=2, policy="drep", seed=11).build_scheduler()
    for spec in trace.jobs:
        ref.advance_to(spec.release)
        ref.submit(work=spec.work, release=spec.release)
    ref_flows = ref.drain().flow_times

    with tempfile.TemporaryDirectory() as tmp:
        print("== phase 1: journaled server, SIGKILL mid-workload")
        proc, port = spawn(tmp)
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        fh = sock.makefile("rb")
        for spec in trace.jobs[:cut]:
            resp = call(fh, sock, op="submit", work=spec.work,
                        release=spec.release)
            assert resp["ok"] and resp["accepted"], resp
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        print(f"   killed after {cut} submits")

        print("== phase 2: restart on the same journal, finish the trace")
        proc, port = spawn(tmp)
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            fh = sock.makefile("rb")
            for spec in trace.jobs[cut:]:
                resp = call(fh, sock, op="submit", work=spec.work,
                            release=spec.release)
                assert resp["ok"] and resp["accepted"], resp
            done = call(fh, sock, op="drain", include_flows=True)
            assert done["ok"], done
            call(fh, sock, op="shutdown")
        finally:
            if proc.poll() is None:
                proc.terminate()
            proc.wait(timeout=30)

    got = done["flow_times"]
    if len(got) != len(ref_flows) or any(
        a != b for a, b in zip(got, ref_flows)
    ):
        raise SystemExit("FAIL: recovered flow times differ from the "
                         "uninterrupted run")
    print(f"   bit-for-bit: {len(got)} flow times identical")

    print("== phase 3: resilience CLI")
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "faults",
         "--m", "2", "--n-jobs", "40", "--policies", "drep", "srpt",
         "--plans", "rolling"],
        env=env, cwd=REPO, check=True,
    )
    print("faults-smoke: OK")


if __name__ == "__main__":
    main()
