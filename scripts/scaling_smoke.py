#!/usr/bin/env python
"""CI gate for the incremental kernels' asymptotics (`make scaling-smoke`).

Runs the adversarial staircase ladder 10² → 10⁴ on the incremental
order/calendar kernels for every order-driven policy and fits the
scaling exponent of wall-per-event vs active-set size (see
`repro.perf.scaling`).  The exponent — unlike raw wall time — is
machine-drift-free, which is what makes it gateable on shared CI
runners.

Thresholds:

* SRPT / SJF / FIFO: exponent must stay **below 0.5**.  Their served set
  is O(m), so the incremental per-event cost is O(m log n); the dense
  path fits ≈1 on the same ladder.
* LAPS(0.05): gated at **0.85**.  LAPS serves ceil(beta·n) jobs by
  definition — beta·n rates change at every event, so every exact
  engine has an Ω(beta·n) per-event floor and the fitted slope rises
  toward 1 as beta·n overtakes the O(log n) terms.  The win over the
  dense path is the removed sort and scan (constants and the log
  factor), not the exponent; 0.85 catches a regression to dense-like
  behavior without pretending the floor away (docs/performance.md has
  the full table).

Exits non-zero on the first violated bound.  Needs only the package —
no pytest.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.perf.scaling import measure_scaling  # noqa: E402

LADDER = (100, 1_000, 10_000)
BOUNDS = {"srpt": 0.5, "sjf": 0.5, "fifo": 0.5, "laps": 0.85}


def main() -> int:
    print(f"# scaling smoke — staircase ladder {LADDER}, incremental kernels")
    results = measure_scaling(LADDER, tuple(BOUNDS), repeats=2)
    status = 0
    for key, bound in BOUNDS.items():
        r = results[key]
        exp = r["exponent"]
        per_event = " -> ".join(
            f"{p['us_per_event']:.1f}us" for p in r["points"]
        )
        verdict = "ok" if exp < bound else "FAIL"
        if exp >= bound:
            status = 1
        print(
            f"{key:6s} exponent {exp:+.3f} (bound {bound:.2f}) "
            f"[{per_event}]  {verdict}"
        )
    if status:
        print(
            "scaling smoke: fitted exponent at or above its bound — the "
            "incremental kernels have regressed toward per-event costs "
            "linear in the active-set size",
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
