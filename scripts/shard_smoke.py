#!/usr/bin/env python
"""CI smoke for the sharded multi-tenant serving tier (`make shard-smoke`).

1. boots a router over 2 journaled `drep-sim serve` subprocess shards
   with DRF multi-tenant admission sized to the fleet;
2. pushes an overloaded trace split across 3 tenants on a skewed
   (zipf:1.5) label distribution — the hot tenant offers ~5x what the
   coldest one does;
3. asserts **no tenant starves**: every tenant has accepted jobs, the
   hot tenant is the one being shed, and every colder tenant's
   acceptance *rate* beats the hot tenant's (DRF serves you better the
   less you dominate);
4. runs the identical workload a second time and requires the merged,
   canonically-serialized report to match **byte for byte** — the
   sharded tier's replay-determinism contract.

Exits non-zero (with a message) on any violation.  Needs only the
package itself — no pytest.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.serve.admission import AdmissionConfig  # noqa: E402
from repro.serve.loadgen import tenant_labels  # noqa: E402
from repro.serve.shard import build_subprocess_router  # noqa: E402
from repro.serve.tenancy import TenancyConfig  # noqa: E402
from repro.workloads.traces import generate_trace  # noqa: E402

SEED = 21
N_JOBS = 120
N_TENANTS = 3


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def workload():
    # trace sized for 8 machines at load 0.9 -> offered utilization ~1.8
    # on the 2x2-core fleet, so the admission layer has real shedding to
    # do and the DRF layer has a dominant tenant to find
    jobs = generate_trace(N_JOBS, "finance", 0.9, 8, seed=SEED).jobs
    tenants = tenant_labels(N_JOBS, N_TENANTS, "zipf:1.5", seed=SEED)
    return list(zip(jobs, tenants))


def run_once(journal_root: Path) -> tuple[dict, bytes]:
    router = build_subprocess_router(
        2,
        journal_root,
        m=2,
        policy="drep",
        seed=SEED,
        tenancy=TenancyConfig(drf_headroom=1.1),
        admission_config=AdmissionConfig(max_load=1.0, halflife=5.0),
        snapshot_every=16,
    )
    try:
        for spec, tenant in workload():
            router.submit(
                work=spec.work,
                span=spec.span,
                release=spec.release,
                tenant=tenant,
            )
        healthy = router.ping_all()
        if not all(healthy.values()):
            fail(f"unhealthy shards after load: {healthy}")
        merged = router.drain()
        return merged, router.report_json()
    finally:
        router.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="drep-shard-smoke-") as tmp:
        merged, blob = run_once(Path(tmp) / "run-a")
        rows = merged["tenants"]
        offered = {t: 0 for t in rows}
        for _, tenant in workload():
            offered[tenant] = offered.get(tenant, 0) + 1
        hot = max(offered, key=offered.get)

        print(f"shards=2 m_total={merged['m_total']} "
              f"offered={merged['offered']} accepted={merged['accepted']} "
              f"shed={merged['shed']}")
        for tenant in sorted(rows):
            row = rows[tenant]
            print(f"  tenant {tenant}: offered={offered[tenant]} "
                  f"accepted={row['accepted']} shed={row['shed']} "
                  f"mean_flow={row['mean_flow']:.3f}")

        if len(rows) != N_TENANTS:
            fail(f"expected {N_TENANTS} tenants in the report, got {rows}")
        for tenant, row in rows.items():
            if row["accepted"] == 0:
                fail(f"tenant {tenant} starved (0 accepted)")
        if rows[hot]["shed"] == 0:
            fail(f"hot tenant {hot} was never shed despite overload")
        hot_rate = rows[hot]["accepted"] / offered[hot]
        for tenant, row in rows.items():
            rate = row["accepted"] / offered[tenant]
            if tenant != hot and rate <= hot_rate:
                fail(f"tenant {tenant} accepted at {rate:.2f} <= hot "
                     f"tenant's {hot_rate:.2f} — DRF should serve "
                     "non-dominant tenants strictly better")

        _, blob_b = run_once(Path(tmp) / "run-b")
        if blob != blob_b:
            fail("replay mismatch: two identical sharded runs produced "
                 "different merged reports")

    print("OK: no tenant starved, shedding tracked dominance, and the "
          "sharded replay is byte-identical")


if __name__ == "__main__":
    main()
