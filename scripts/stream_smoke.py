#!/usr/bin/env python
"""CI smoke for the streaming path (`make stream-smoke`).

Pushes 100k generated jobs through `simulate_stream` without ever
materializing the trace and requires the process peak RSS (via
`resource.getrusage`) to stay under a ceiling far below what the dense
arrays for that trace would need.  Then spot-checks the wsim streaming
driver and the `drep-sim stream` CLI on the sanitized SWF fixture.

This is the bounded-RAM contract in the exact form users rely on: a
stream of n jobs must cost O(active jobs), not O(n).  Exits non-zero on
the first violation.  Needs only the package itself — no pytest.
"""

from __future__ import annotations

import resource
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

N_JOBS = 100_000
#: generous for CI noise (interpreter + numpy alone are ~50 MB) yet far
#: below a materialized 100k-job trace with per-job result arrays
RSS_CEILING_MB = 400.0


def fail(msg: str) -> None:
    print(f"stream-smoke: FAIL — {msg}", file=sys.stderr)
    sys.exit(1)


def rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on some BSDs
    return peak / 1024.0 if peak < (1 << 40) else peak / (1024.0 * 1024.0)


def main() -> None:
    from repro.core.job import ParallelismMode
    from repro.flowsim import policy_by_name, simulate_stream
    from repro.workloads.stream import attach_dags_stream, generate_stream
    from repro.wsim import simulate_ws_stream, ws_scheduler_by_name

    # -- flowsim: 100k jobs, never materialized -------------------------
    res = simulate_stream(
        generate_stream(N_JOBS, "exponential", 0.8, 16, seed=7),
        16,
        policy_by_name("srpt"),
        seed=7,
    )
    if res.n_jobs != N_JOBS:
        fail(f"expected {N_JOBS} completions, got {res.n_jobs}")
    if not res.mean_flow > 0:
        fail(f"degenerate mean flow {res.mean_flow}")
    if res.metrics.quantiles_exact:
        fail("100k jobs should exceed the exact-quantile reservoir")
    if not res.extra["perf"].get("peak_rss_mb", 0) > 0:
        fail("perf counters did not capture peak RSS")
    after_flowsim = rss_mb()
    if after_flowsim > RSS_CEILING_MB:
        fail(
            f"peak RSS {after_flowsim:.1f} MB exceeds the "
            f"{RSS_CEILING_MB:.0f} MB ceiling after the flowsim stream"
        )
    print(
        f"stream-smoke: flowsim {N_JOBS} jobs, mean_flow="
        f"{res.mean_flow:.4f}, peak RSS {after_flowsim:.1f} MB"
    )

    # -- wsim: lazy DAG attachment feeding the work-stealing runtime ----
    ws = simulate_ws_stream(
        attach_dags_stream(
            generate_stream(
                400,
                "finance",
                0.6,
                4,
                seed=11,
                mode=ParallelismMode.FULLY_PARALLEL,
                scale_work_with_m=False,
            ),
            parallelism=6,
            seed=11,
        ),
        4,
        ws_scheduler_by_name("drep"),
        seed=11,
    )
    if ws.n_jobs != 400:
        fail(f"wsim stream completed {ws.n_jobs}/400 jobs")
    if not ws.mean_flow > 0:
        fail("wsim stream produced degenerate flows")

    # -- CLI: replay the sanitized SWF fixture through `drep-sim stream`
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "stream",
            "--trace-file",
            str(REPO / "tests" / "data" / "sanitized_cluster.swf"),
            "--m",
            "8",
            "--time-scale",
            "0.001",
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO,
    )
    if proc.returncode != 0:
        fail(f"`drep-sim stream` exited {proc.returncode}: {proc.stderr}")
    if "streamed run" not in proc.stdout:
        fail("`drep-sim stream` report missing from stdout")

    final = rss_mb()
    if final > RSS_CEILING_MB:
        fail(f"peak RSS {final:.1f} MB exceeds {RSS_CEILING_MB:.0f} MB")
    print(f"stream-smoke: PASS (peak RSS {final:.1f} MB)")


if __name__ == "__main__":
    main()
