#!/usr/bin/env python
"""CI smoke for the experiment grid runner (`make sweep-smoke`).

Runs the same small figure-style grid three ways — serial (`workers=1`),
through a 2-worker process pool, and through a 4-worker pool with a
pathological chunk size — and requires the row lists to be **equal**,
element for element.  Then does the same for the resilience experiment
(fault plans serialized into pool workers) and for the `drep-sim fig1
--workers` CLI path (stdout compared byte-for-byte).

This is the grid runner's determinism contract under test in the exact
form users rely on: `workers=N` must be indistinguishable from
`workers=1` in everything but wall time.  Exits non-zero on the first
mismatch.  Needs only the package itself — no pytest.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))


def fail(msg: str) -> None:
    print(f"sweep-smoke: FAIL — {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    from repro.analysis.pool import flow_sweep_cells, run_flow_grid
    from repro.faults.experiment import run_resilience_experiment
    from repro.perf.counters import PerfCounters

    # -- flow grid: serial vs pooled vs oddly-chunked pooled ---------------
    cells = flow_sweep_cells(
        distribution="finance",
        load=0.7,
        mode="sequential",
        m_values=[2, 4],
        n_jobs=120,
        seed=7,
        replicates=2,
        figure="smoke",
    )
    counters = PerfCounters()
    serial = run_flow_grid(cells, workers=1)
    pooled = run_flow_grid(cells, workers=2, counters=counters)
    chunky = run_flow_grid(cells, workers=4, chunk_size=3)
    if serial != pooled:
        fail("flow grid rows differ between workers=1 and workers=2")
    if serial != chunky:
        fail("flow grid rows differ between workers=1 and workers=4/chunk=3")
    if counters.pool_tasks != len(cells) or counters.pool_workers < 2:
        fail(
            f"pool counters look wrong: tasks={counters.pool_tasks} "
            f"(want {len(cells)}), workers={counters.pool_workers}"
        )
    print(
        f"sweep-smoke: flow grid ok — {len(serial)} rows identical across "
        f"workers 1/2/4 ({counters.pool_chunks} chunks dispatched)"
    )

    # -- wsim grid: same contract for the work-stealing engine -------------
    from repro.analysis.pool import run_ws_grid, ws_sweep_cells

    ws_cells = ws_sweep_cells(
        distribution="finance",
        loads=[0.5, 0.7],
        m_values=[4],
        n_jobs=40,
        seed=7,
        mean_work_units=50,
        replicates=2,
        figure="smoke",
    )
    ws_counters = PerfCounters()
    ws_serial = run_ws_grid(ws_cells, workers=1)
    ws_pooled = run_ws_grid(ws_cells, workers=2, counters=ws_counters)
    ws_auto = run_ws_grid(ws_cells, workers="auto")
    if ws_serial != ws_pooled:
        fail("wsim grid rows differ between workers=1 and workers=2")
    if ws_serial != ws_auto:
        fail("wsim grid rows differ between workers=1 and workers='auto'")
    print(
        f"sweep-smoke: wsim grid ok — {len(ws_serial)} rows identical "
        f"across workers 1/2/auto ({ws_counters.pool_chunks} chunks dispatched)"
    )

    # -- resilience grid: fault plans must survive pickling ----------------
    base = run_resilience_experiment(m=4, n_jobs=60, seed=3, workers=1)
    pooled = run_resilience_experiment(m=4, n_jobs=60, seed=3, workers=2)
    if base != pooled:
        fail("resilience rows differ between workers=1 and workers=2")
    print(f"sweep-smoke: resilience ok — {len(base)} rows identical across workers 1/2")

    # -- CLI surface: the table users see must match too -------------------
    cmd = [
        sys.executable, "-m", "repro.cli", "fig1",
        "--n-jobs", "120", "--m-values", "2", "4", "--seed", "7",
    ]
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    out1 = subprocess.run(
        cmd, capture_output=True, text=True, env=env, check=True
    ).stdout
    out2 = subprocess.run(
        cmd + ["--workers", "2"], capture_output=True, text=True, env=env, check=True
    ).stdout
    if out1 != out2:
        fail("drep-sim fig1 output differs with --workers 2")
    print("sweep-smoke: CLI ok — fig1 stdout byte-identical with --workers 2")

    cmd3 = [
        sys.executable, "-m", "repro.cli", "fig3",
        "--m", "4", "--n-jobs", "40", "--loads", "0.5", "0.7", "--seed", "7",
    ]
    out_w1 = subprocess.run(
        cmd3 + ["--workers", "1"], capture_output=True, text=True, env=env,
        check=True,
    ).stdout
    out_w2 = subprocess.run(
        cmd3 + ["--workers", "2"], capture_output=True, text=True, env=env,
        check=True,
    ).stdout
    out_auto = subprocess.run(  # the default --workers auto
        cmd3, capture_output=True, text=True, env=env, check=True
    ).stdout
    if out_w1 != out_w2 or out_w1 != out_auto:
        fail("drep-sim fig3 output differs across --workers 1/2/auto")
    print("sweep-smoke: CLI ok — fig3 stdout byte-identical across --workers 1/2/auto")
    print("sweep-smoke: PASS")


if __name__ == "__main__":
    main()
