"""repro — reproduction of *Practically Efficient Scheduler for Minimizing
Average Flow Time of Parallel Jobs* (Agrawal, Lee, Li, Lu, Moseley;
IEEE IPDPS 2019).

The package implements the paper's contribution — the **DREP** scheduler
(Distributed Random Equi-Partition) — together with every substrate its
evaluation depends on:

* :mod:`repro.core` — jobs, events, metrics, deterministic RNG streams;
* :mod:`repro.dag` — the parallel-DAG job model and Cilk-style generators;
* :mod:`repro.workloads` — synthetic Bing/Finance distributions, Poisson
  arrivals, load calibration, traces;
* :mod:`repro.flowsim` — the flow-level simulator behind Figures 1-2 with
  SRPT / SJF / RR / DREP (plus FIFO, LAPS, SETF extensions);
* :mod:`repro.wsim` — a discrete-time work-stealing runtime (deques,
  steals, muggable deques, mugging) behind Figure 3 with DREP-WS,
  steal-first, admit-first and the SWF approximation;
* :mod:`repro.theory` — Observation-1 lower bounds, the flow/steal
  potential functions of Sec. IV-B, preemption budgets of Theorem 1.2;
* :mod:`repro.analysis` — experiment harness, sweeps and table rendering.

Quickstart::

    from repro import flowsim, workloads

    trace = workloads.generate_trace(
        n_jobs=2000, distribution="finance", load=0.5, m=8, seed=1
    )
    result = flowsim.simulate(trace, m=8, policy=flowsim.DrepSequential())
    print(result.mean_flow, result.preemptions)
"""

__version__ = "1.0.0"

from repro import analysis, core, dag, flowsim, hetero, theory, workloads, wsim  # noqa: F401

__all__ = [
    "analysis",
    "core",
    "dag",
    "flowsim",
    "hetero",
    "theory",
    "workloads",
    "wsim",
    "__version__",
]
