"""Experiment harness and table rendering."""

from repro.analysis.experiments import (
    flow_policy_factories,
    run_flow_point,
    run_flow_sweep,
    run_ws_point,
    run_ws_sweep,
    scale_trace,
    ws_scheduler_factories,
)
from repro.analysis.baselines import (
    BaselineMismatch,
    compare_to_baseline,
    save_baseline,
)
from repro.analysis.charts import figure_svg_from_rows, line_chart_svg, save_figure_svg
from repro.analysis.parallel import FlowCell, parallel_flow_sweep, run_cells
from repro.analysis.replication import Replication, replicate, significantly_less
from repro.analysis.report import (
    ReportConfig,
    build_report,
    stream_report,
    stream_summary_rows,
    write_report,
)
from repro.analysis.tables import (
    ascii_plot,
    format_table,
    pivot,
    save_rows,
    series_table,
)
from repro.analysis.timeline import TimelineRecorder, occupancy, render_timeline

__all__ = [
    "flow_policy_factories",
    "run_flow_point",
    "run_flow_sweep",
    "run_ws_point",
    "run_ws_sweep",
    "scale_trace",
    "ws_scheduler_factories",
    "ascii_plot",
    "format_table",
    "pivot",
    "save_rows",
    "series_table",
    "BaselineMismatch",
    "compare_to_baseline",
    "save_baseline",
    "figure_svg_from_rows",
    "line_chart_svg",
    "save_figure_svg",
    "FlowCell",
    "parallel_flow_sweep",
    "run_cells",
    "Replication",
    "replicate",
    "significantly_less",
    "ReportConfig",
    "build_report",
    "write_report",
    "stream_report",
    "stream_summary_rows",
    "TimelineRecorder",
    "occupancy",
    "render_timeline",
]
