"""Baseline persistence: detect when a code change alters the physics.

Refactoring a simulator must not change its outputs.  A *baseline* is a
JSON snapshot of headline numbers from named runs; ``compare_to_baseline``
re-checks fresh numbers against it with per-metric tolerances, so a CI
job (or `tests/integration/test_baselines.py`) can flag any drift in
simulated behaviour — deterministic metrics must match exactly, sampled
ones within a stated band.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BaselineMismatch", "save_baseline", "compare_to_baseline"]


class BaselineMismatch(AssertionError):
    """A measured value drifted outside its tolerance band."""


@dataclass(frozen=True)
class _Check:
    name: str
    metric: str
    expected: float
    measured: float
    rel_tol: float

    @property
    def ok(self) -> bool:
        if self.expected == self.measured:
            return True
        scale = max(abs(self.expected), 1e-12)
        return abs(self.measured - self.expected) / scale <= self.rel_tol


def save_baseline(path: str | Path, entries: dict[str, dict[str, float]]) -> Path:
    """Persist ``{run_name: {metric: value}}`` as the new baseline."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(entries, indent=2, sort_keys=True))
    return p


def compare_to_baseline(
    path: str | Path,
    entries: dict[str, dict[str, float]],
    rel_tol: float = 0.0,
    per_metric_tol: dict[str, float] | None = None,
) -> list[str]:
    """Check fresh ``entries`` against the stored baseline.

    ``rel_tol`` is the default relative tolerance (0.0 = exact, right for
    seeded deterministic metrics); ``per_metric_tol`` overrides per
    metric name.  Returns the list of compared "run.metric" names;
    raises :class:`BaselineMismatch` listing every violation, and
    ``KeyError`` if the baseline lacks a requested run or metric.
    """
    stored = json.loads(Path(path).read_text())
    tols = per_metric_tol or {}
    failures: list[_Check] = []
    compared: list[str] = []
    for run, metrics in entries.items():
        if run not in stored:
            raise KeyError(f"baseline has no run {run!r}")
        for metric, value in metrics.items():
            if metric not in stored[run]:
                raise KeyError(f"baseline run {run!r} has no metric {metric!r}")
            check = _Check(
                name=run,
                metric=metric,
                expected=float(stored[run][metric]),
                measured=float(value),
                rel_tol=tols.get(metric, rel_tol),
            )
            compared.append(f"{run}.{metric}")
            if not check.ok:
                failures.append(check)
    if failures:
        lines = [
            f"{c.name}.{c.metric}: expected {c.expected:.6g}, "
            f"measured {c.measured:.6g} (tol {c.rel_tol:.2%})"
            for c in failures
        ]
        raise BaselineMismatch("baseline drift:\n" + "\n".join(lines))
    return compared
