"""Dependency-free SVG line charts for figure reproduction.

Renders the paper-style figures (mean flow vs swept parameter, one line
per scheduler) as self-contained SVG from result rows, so the repository
can ship visual reproductions without a plotting stack.  Log-scale
y-axis optional (the figures' flow values span decades on Bing).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

__all__ = ["line_chart_svg", "figure_svg_from_rows", "save_figure_svg"]

_PALETTE = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
]
_MARKERS = "oxs^v"  # cycled per series (drawn as small shapes)


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def line_chart_svg(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 360,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named (xs, ys) series as an SVG line chart with a legend."""
    pts = [(x, y) for xs, ys in series.values() for x, y in zip(xs, ys)]
    if not pts:
        return "<svg xmlns='http://www.w3.org/2000/svg'/>"
    xs_all = [p[0] for p in pts]
    ys_all = [p[1] for p in pts]
    if log_x and min(xs_all) <= 0:
        raise ValueError("log_x requires positive x values")
    if log_y and min(ys_all) <= 0:
        raise ValueError("log_y requires positive y values")
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)

    ml, mr, mt, mb = 62, 150, 34, 46  # margins (right holds the legend)
    plot_w, plot_h = width - ml - mr, height - mt - mb

    def px(x: float) -> float:
        return ml + _scale(x, x_lo, x_hi, log_x) * plot_w

    def py(y: float) -> float:
        return mt + (1 - _scale(y, y_lo, y_hi, log_y)) * plot_h

    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='sans-serif' font-size='12'>",
        f"<rect x='{ml}' y='{mt}' width='{plot_w}' height='{plot_h}' "
        "fill='none' stroke='#999'/>",
    ]
    if title:
        parts.append(
            f"<text x='{ml}' y='18' font-size='14' font-weight='bold'>{title}</text>"
        )
    if x_label:
        parts.append(
            f"<text x='{ml + plot_w / 2:.0f}' y='{height - 8}' "
            f"text-anchor='middle'>{x_label}</text>"
        )
    if y_label:
        parts.append(
            f"<text x='14' y='{mt + plot_h / 2:.0f}' text-anchor='middle' "
            f"transform='rotate(-90 14 {mt + plot_h / 2:.0f})'>{y_label}</text>"
        )
    # axis ticks: min, mid, max
    for frac in (0.0, 0.5, 1.0):
        if log_x:
            xv = 10 ** (math.log10(x_lo) + frac * (math.log10(x_hi) - math.log10(x_lo)))
        else:
            xv = x_lo + frac * (x_hi - x_lo)
        parts.append(
            f"<text x='{ml + frac * plot_w:.0f}' y='{mt + plot_h + 16}' "
            f"text-anchor='middle' fill='#444'>{xv:.3g}</text>"
        )
        if log_y:
            yv = 10 ** (math.log10(y_lo) + frac * (math.log10(y_hi) - math.log10(y_lo)))
        else:
            yv = y_lo + frac * (y_hi - y_lo)
        parts.append(
            f"<text x='{ml - 6}' y='{mt + (1 - frac) * plot_h + 4:.0f}' "
            f"text-anchor='end' fill='#444'>{yv:.3g}</text>"
        )

    for idx, (name, (xs, ys)) in enumerate(series.items()):
        color = _PALETTE[idx % len(_PALETTE)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{px(x):.1f},{py(y):.1f}"
            for i, (x, y) in enumerate(sorted(zip(xs, ys)))
        )
        parts.append(
            f"<path d='{path}' fill='none' stroke='{color}' stroke-width='2'/>"
        )
        for x, y in zip(xs, ys):
            parts.append(
                f"<circle cx='{px(x):.1f}' cy='{py(y):.1f}' r='3' "
                f"fill='{color}'><title>{name}: ({x:g}, {y:.4g})</title></circle>"
            )
        ly = mt + 8 + idx * 18
        parts.append(
            f"<rect x='{ml + plot_w + 10}' y='{ly - 8}' width='12' "
            f"height='12' fill='{color}'/>"
        )
        parts.append(
            f"<text x='{ml + plot_w + 27}' y='{ly + 2}'>{name}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def figure_svg_from_rows(
    rows: Sequence[dict],
    x: str,
    value: str = "mean_flow",
    series_key: str = "scheduler",
    title: str = "",
    log_y: bool = False,
) -> str:
    """Build a paper-style figure from flat result rows."""
    series: dict[str, tuple[list[float], list[float]]] = {}
    for r in rows:
        xs, ys = series.setdefault(str(r[series_key]), ([], []))
        xs.append(float(r[x]))
        ys.append(float(r[value]))
    return line_chart_svg(
        series,
        title=title,
        x_label=x,
        y_label=value,
        log_y=log_y,
    )


def save_figure_svg(path: str | Path, svg: str) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(svg)
    return p
