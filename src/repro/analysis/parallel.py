"""Process-parallel experiment execution.

Parameter sweeps are embarrassingly parallel — every (policy, m, load,
seed) cell is an independent simulation — and the simulators are pure
Python, so real speedup needs processes, not threads (the GIL).  This
module fans sweep cells out over a ``ProcessPoolExecutor`` while keeping
the library's determinism guarantees: results are returned in submission
order regardless of completion order, and each cell's seed is explicit.

Cells are described *declaratively* (:class:`FlowCell`) rather than as
closures so they pickle cheaply; the worker process rebuilds the trace
from its generation parameters instead of shipping 100k-job arrays
through the pipe, and memoizes it per process (``_TRACE_MEMO``) so the
many cells of a sweep that differ only in policy generate it once.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.job import ParallelismMode

__all__ = [
    "FlowCell",
    "memoized_trace",
    "memoized_ws_trace",
    "run_cells",
    "parallel_flow_sweep",
]


#: Per-worker-process memo of generated traces.  A sweep runs many cells
#: that differ only in policy, so every worker process would otherwise
#: regenerate the identical trace once per policy; generation is a
#: deterministic pure function of the key, so sharing is safe (simulators
#: never mutate specs).  Bounded FIFO so a long-lived pool cannot grow
#: without limit.
_TRACE_MEMO: dict[tuple, object] = {}
_TRACE_MEMO_MAX = 64


def _memoized_trace(
    distribution: str, load: float, m: int, n_jobs: int, mode: str, seed: int
):
    key = (distribution, load, m, n_jobs, mode, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        # a grid run may have shipped this trace's columns via shared
        # memory (repro.analysis.shm); reconstructing from the packed
        # floats is exact, so the rows stay byte-identical to a local
        # regeneration — which remains the fallback
        from repro.analysis.shm import shared_trace

        trace = shared_trace(key)
        if trace is None:
            from repro.workloads.traces import generate_trace

            trace = generate_trace(
                n_jobs=n_jobs,
                distribution=distribution,
                load=load,
                m=m,
                mode=ParallelismMode(mode),
                seed=seed,
            )
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


#: public name — the grid runner (:mod:`repro.analysis.pool`) reuses the
#: same per-process memo so mixed FlowCell/grid workloads share traces
memoized_trace = _memoized_trace


def memoized_ws_trace(
    distribution: str,
    load: float,
    m: int,
    n_jobs: int,
    mean_work_units: int,
    parallelism: int,
    seed: int,
):
    """The fig-3 DAG trace build, memoized per worker process.

    Replicates :func:`repro.analysis.experiments.run_ws_point`'s trace
    construction exactly — fully-parallel unit-mean trace (work *not*
    scaled with m), scaled to ``mean_work_units`` integer steps, DAGs
    attached at the given ``parallelism`` — so grid rows match the serial
    sweep byte-for-byte.  A fig-3 cell grid runs every scheduler on the
    same trace; the memo builds it once per process instead of once per
    (scheduler × load) cell.
    """
    key = ("ws", distribution, load, m, n_jobs, mean_work_units, parallelism, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        from repro.analysis.experiments import scale_trace
        from repro.workloads.traces import attach_dags, generate_trace

        base = generate_trace(
            n_jobs=n_jobs,
            distribution=distribution,
            load=load,
            m=m,
            mode=ParallelismMode.FULLY_PARALLEL,
            seed=seed,
            scale_work_with_m=False,
        )
        trace = attach_dags(
            scale_trace(base, float(mean_work_units)),
            parallelism=parallelism,
            seed=seed,
        )
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


@dataclass(frozen=True)
class FlowCell:
    """One flow-level simulation cell, picklable and self-contained."""

    policy: str
    distribution: str
    load: float
    m: int
    n_jobs: int
    mode: str = "sequential"
    seed: int = 0
    speed: float = 1.0
    policy_kwargs: tuple = field(default=())  # (key, value) pairs

    def run(self) -> dict:
        """Execute in the current process; returns a flat result row."""
        from repro.flowsim.engine import FlowSimConfig, simulate
        from repro.flowsim.policies import policy_by_name

        trace = _memoized_trace(
            self.distribution, self.load, self.m, self.n_jobs, self.mode, self.seed
        )
        policy = policy_by_name(self.policy, **dict(self.policy_kwargs))
        result = simulate(
            trace,
            self.m,
            policy,
            seed=self.seed,
            config=FlowSimConfig(speed=self.speed),
        )
        return {
            "policy": result.scheduler,
            "distribution": self.distribution,
            "load": self.load,
            "m": self.m,
            "mode": self.mode,
            "seed": self.seed,
            "speed": self.speed,
            "mean_flow": result.mean_flow,
            "p99_flow": result.percentile(99),
            "preemptions": result.preemptions,
            "pid": os.getpid(),
        }


def _run_cell(cell: FlowCell) -> dict:
    return cell.run()


def run_cells(cells: list[FlowCell], workers: int | None = None) -> list[dict]:
    """Run cells, fanning out over processes when it pays.

    ``workers=None`` picks ``min(len(cells), cpu_count)``; ``workers=1``
    or a single cell runs inline (no pool overhead, easier debugging).
    Results come back in submission order.
    """
    if not cells:
        return []
    if workers is None:
        workers = min(len(cells), os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(cells) == 1:
        return [cell.run() for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells))


def parallel_flow_sweep(
    policies: list[str],
    distribution: str,
    load: float,
    m_values: list[int],
    n_jobs: int,
    mode: str = "sequential",
    seed: int = 0,
    workers: int | None = None,
) -> list[dict]:
    """Figure-1/2 style sweep, one process per cell."""
    cells = [
        FlowCell(
            policy=policy,
            distribution=distribution,
            load=load,
            m=m,
            n_jobs=n_jobs,
            mode=mode,
            seed=seed,
        )
        for m in m_values
        for policy in policies
    ]
    return run_cells(cells, workers=workers)
