"""Deterministic process-pool runner for experiment grids.

The paper's simulation arm (Sec. V-A, Figures 1-2) is a large grid —
{Bing, Finance} × loads × processor sweep × modes × replicates — and
every cell is an independent simulation, so the sweep is embarrassingly
parallel.  This module shards any such grid over a process pool while
keeping the library's repro contract *byte-for-byte*:

* **Determinism** — ``run_grid(fn, tasks, workers=N)`` returns exactly
  the list ``[fn(t) for t in tasks]`` for every ``N``: tasks are
  dispatched in chunks (cheap work stealing — a slow cell only delays
  its own chunk) and reassembled in submission order, and every cell
  carries its own explicit seed, derived with the library's single
  seed-derivation rule (:func:`repro.core.rng.derive_seed`).
* **No trace shipping** — cells are small frozen dataclasses; workers
  regenerate traces from generation parameters and share them through
  the per-process memo of :mod:`repro.analysis.parallel`, so a grid
  whose cells differ only in policy generates each trace once per
  worker.
* **Observability** — pass a :class:`repro.perf.PerfCounters` and the
  dispatch shape lands in ``pool_tasks`` / ``pool_chunks`` /
  ``pool_workers`` (reported by the grid-sweep bench cases).

``FlowSweepCell`` rows carry the same fields as the serial
:func:`repro.analysis.experiments.run_flow_sweep` rows plus ``seed`` and
``events`` — and deliberately nothing process-dependent (no pids, no
wall times), which is what makes serial/parallel output comparable with
a plain ``==``.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.rng import derive_seed

__all__ = [
    "FlowSweepCell",
    "default_chunk_size",
    "flow_sweep_cells",
    "replicate_flow",
    "run_flow_grid",
    "run_grid",
]

#: policy keys per mode, mirroring
#: :func:`repro.analysis.experiments.flow_policy_factories`
DEFAULT_SEQ_POLICIES = ("srpt", "sjf", "rr", "drep")
DEFAULT_PAR_POLICIES = ("srpt", "swf", "rr", "drep-par")


def default_chunk_size(n_tasks: int, workers: int) -> int:
    """~4 chunks per worker: enough slack for stealing, little overhead."""
    return max(1, math.ceil(n_tasks / (4 * max(1, workers))))


def _run_chunk(fn: Callable, chunk: list) -> list:
    return [fn(item) for item in chunk]


def run_grid(
    fn: Callable,
    tasks: Iterable,
    workers: int | None = 1,
    chunk_size: int | None = None,
    counters=None,
) -> list:
    """Run ``fn`` over ``tasks``; result order == task order, always.

    ``fn`` and every task must be picklable (module-level function,
    plain-data cells).  ``workers=None`` uses the CPU count; ``workers=1``
    runs inline — same code path minus the pool, so the output is
    byte-identical by construction.  ``chunk_size`` tunes dispatch
    granularity (default :func:`default_chunk_size`): chunks are
    submitted up front and completed in any order (work stealing), then
    reassembled by chunk index.
    """
    tasks = list(tasks)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not tasks:
        return []
    workers = min(workers, len(tasks))
    if counters is not None:
        counters.pool_tasks += len(tasks)
        counters.pool_workers = max(counters.pool_workers, workers)
    if workers == 1:
        if counters is not None:
            counters.pool_chunks += 1
        return [fn(task) for task in tasks]
    if chunk_size is None:
        chunk_size = default_chunk_size(len(tasks), workers)
    chunks = [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]
    if counters is not None:
        counters.pool_chunks += len(chunks)
    results: list[list | None] = [None] * len(chunks)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_chunk, fn, chunk): i
            for i, chunk in enumerate(chunks)
        }
        for future in as_completed(futures):
            results[futures[future]] = future.result()
    out: list = []
    for chunk_rows in results:
        assert chunk_rows is not None
        out.extend(chunk_rows)
    return out


@dataclass(frozen=True)
class FlowSweepCell:
    """One (trace, policy) flow-simulation cell of a figure grid.

    Frozen and plain-data, so it pickles cheaply; the worker regenerates
    the trace from the generation parameters (memoized per process).
    """

    distribution: str
    load: float
    m: int
    mode: str
    policy: str
    n_jobs: int
    seed: int
    figure: str = ""
    speed: float = 1.0
    policy_kwargs: tuple = ()  # (key, value) pairs

    def run(self) -> dict:
        """Execute in the current process; returns a flat result row."""
        from repro.analysis.parallel import memoized_trace
        from repro.flowsim.engine import FlowSimConfig, simulate
        from repro.flowsim.policies import policy_by_name

        trace = memoized_trace(
            self.distribution, self.load, self.m, self.n_jobs, self.mode, self.seed
        )
        result = simulate(
            trace,
            self.m,
            policy_by_name(self.policy, **dict(self.policy_kwargs)),
            seed=self.seed,
            config=FlowSimConfig(speed=self.speed),
        )
        # the serial sweep's row fields, plus the cell seed and event
        # count; nothing process-dependent may ever be added here — the
        # workers=N ≡ workers=1 guarantee is a byte-level comparison
        return {
            "figure": self.figure,
            "distribution": self.distribution,
            "load": self.load,
            "m": self.m,
            "mode": self.mode,
            "scheduler": result.scheduler,
            "mean_flow": result.mean_flow,
            "p99_flow": result.percentile(99),
            "preemptions": result.preemptions,
            "switches": result.extra.get("switches", 0),
            "utilization": result.extra.get("utilization", 0.0),
            "seed": self.seed,
            "events": int(result.extra.get("events", 0)),
        }


def _run_flow_cell(cell: FlowSweepCell) -> dict:
    return cell.run()


def flow_sweep_cells(
    distribution: str,
    load: float,
    mode,
    m_values: Iterable[int],
    n_jobs: int,
    seed: int = 0,
    policies: Sequence[str] | None = None,
    replicates: int = 1,
    figure: str = "",
) -> list[FlowSweepCell]:
    """Figure-1/2 style grid as a flat cell list (m × policy × replicate).

    Replicate 0 runs on the base ``seed`` — matching the serial
    single-shot sweep — and replicate ``r`` on
    ``derive_seed(seed, f"rep/{r}")``, the same child a hand-rolled
    :meth:`repro.core.rng.RngFactory.child` loop would use.
    """
    mode_s = mode.value if hasattr(mode, "value") else str(mode)
    if policies is None:
        policies = (
            DEFAULT_PAR_POLICIES
            if mode_s == "fully_parallel"
            else DEFAULT_SEQ_POLICIES
        )
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    cells = []
    for r in range(replicates):
        cell_seed = seed if r == 0 else derive_seed(seed, f"rep/{r}")
        for m in m_values:
            for policy in policies:
                cells.append(
                    FlowSweepCell(
                        distribution=distribution,
                        load=float(load),
                        m=int(m),
                        mode=mode_s,
                        policy=policy,
                        n_jobs=int(n_jobs),
                        seed=int(cell_seed),
                        figure=figure,
                    )
                )
    return cells


def run_flow_grid(
    cells: Sequence[FlowSweepCell],
    workers: int | None = 1,
    chunk_size: int | None = None,
    counters=None,
) -> list[dict]:
    """Run a flow-cell grid through :func:`run_grid`."""
    return run_grid(
        _run_flow_cell,
        cells,
        workers=workers,
        chunk_size=chunk_size,
        counters=counters,
    )


def replicate_flow(
    policy: str,
    distribution: str,
    load: float,
    m: int,
    n_jobs: int,
    mode: str = "sequential",
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    workers: int | None = 1,
    metric: str = "mean_flow",
):
    """Multi-seed replication of one cell, sharded over the pool.

    The pool-friendly sibling of :func:`repro.analysis.replication.replicate`:
    same :class:`~repro.analysis.replication.Replication` summary, but the
    per-seed runs are grid cells, so they parallelize and stay
    byte-deterministic for any worker count.
    """
    from repro.analysis.replication import Replication

    if not seeds:
        raise ValueError("need at least one seed")
    cells = [
        FlowSweepCell(
            distribution=distribution,
            load=float(load),
            m=int(m),
            mode=mode,
            policy=policy,
            n_jobs=int(n_jobs),
            seed=int(s),
        )
        for s in seeds
    ]
    rows = run_flow_grid(cells, workers=workers)
    return Replication(
        label=rows[0]["scheduler"],
        values=tuple(float(r[metric]) for r in rows),
    )
