"""Deterministic process-pool runner for experiment grids.

The paper's simulation arm (Sec. V-A, Figures 1-2) is a large grid —
{Bing, Finance} × loads × processor sweep × modes × replicates — and
every cell is an independent simulation, so the sweep is embarrassingly
parallel.  This module shards any such grid over a process pool while
keeping the library's repro contract *byte-for-byte*:

* **Determinism** — ``run_grid(fn, tasks, workers=N)`` returns exactly
  the list ``[fn(t) for t in tasks]`` for every ``N``: tasks are
  dispatched in chunks (cheap work stealing — a slow cell only delays
  its own chunk) and reassembled in submission order, and every cell
  carries its own explicit seed, derived with the library's single
  seed-derivation rule (:func:`repro.core.rng.derive_seed`).
* **No per-cell trace shipping** — cells are small frozen dataclasses;
  trace *columns* travel once per grid through a shared-memory segment
  (:mod:`repro.analysis.shm`) that workers attach lazily, and when
  shared memory is unavailable workers fall back to regenerating traces
  from generation parameters through the per-process memo of
  :mod:`repro.analysis.parallel`.  Either way a grid whose cells differ
  only in policy materializes each trace once per worker.
* **Observability** — pass a :class:`repro.perf.PerfCounters` and the
  dispatch shape lands in ``pool_tasks`` / ``pool_chunks`` /
  ``pool_workers`` / ``pool_shm_traces`` / ``pool_shm_bytes`` (reported
  by the grid-sweep bench cases).

``FlowSweepCell`` rows carry the same fields as the serial
:func:`repro.analysis.experiments.run_flow_sweep` rows plus ``seed`` and
``events`` — and deliberately nothing process-dependent (no pids, no
wall times), which is what makes serial/parallel output comparable with
a plain ``==``.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.rng import derive_seed

__all__ = [
    "FlowSweepCell",
    "WsSweepCell",
    "default_chunk_size",
    "flow_sweep_cells",
    "replicate_flow",
    "resolve_workers",
    "run_flow_grid",
    "run_grid",
    "run_ws_grid",
    "ws_sweep_cells",
]

#: policy keys per mode, mirroring
#: :func:`repro.analysis.experiments.flow_policy_factories`
DEFAULT_SEQ_POLICIES = ("srpt", "sjf", "rr", "drep")
DEFAULT_PAR_POLICIES = ("srpt", "swf", "rr", "drep-par")
#: fig-3 series, mirroring
#: :func:`repro.analysis.experiments.ws_scheduler_factories` (the keys
#: double as the ``scheduler`` labels in result rows)
DEFAULT_WS_SCHEDULERS = ("DREP", "SWF", "steal-first", "admit-first")


def _available_cpus() -> int:
    """CPUs this *process* may use — affinity-aware, never zero."""
    probe = getattr(os, "process_cpu_count", None)  # Python >= 3.13
    if probe is not None:
        return probe() or 1
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(workers: "int | str | None") -> int | None:
    """Normalize a worker count: int, ``None`` (all cores) or ``"auto"``.

    ``"auto"`` caps at the CPUs actually available to the process
    (``os.process_cpu_count`` when it exists, else the scheduler
    affinity mask) and falls back to serial on a 1-core box — spawning a
    pool there only adds fork/pickle overhead on top of a core the
    parent already saturates (the BENCH_4 ``grid_sweep_w4``
    oversubscription finding: w4 is *slower* than w1 on 1 core).
    Results are unaffected either way — the grid contract is
    byte-identical rows for every worker count.
    """
    if workers == "auto":
        return _available_cpus()
    if isinstance(workers, str):
        raise ValueError(f"workers must be an int, None or 'auto', got {workers!r}")
    return workers


def default_chunk_size(n_tasks: int, workers: int) -> int:
    """~4 chunks per worker: enough slack for stealing, little overhead."""
    return max(1, math.ceil(n_tasks / (4 * max(1, workers))))


def _run_chunk(fn: Callable, chunk: list) -> list:
    return [fn(item) for item in chunk]


def run_grid(
    fn: Callable,
    tasks: Iterable,
    workers: "int | str | None" = 1,
    chunk_size: int | None = None,
    counters=None,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list:
    """Run ``fn`` over ``tasks``; result order == task order, always.

    ``fn`` and every task must be picklable (module-level function,
    plain-data cells).  ``workers=None`` uses the CPU count;
    ``workers="auto"`` uses :func:`resolve_workers` (available CPUs,
    serial on 1 core); ``workers=1`` runs inline — same code path minus
    the pool, so the output is byte-identical by construction.  ``chunk_size`` tunes dispatch
    granularity (default :func:`default_chunk_size`): chunks are
    submitted up front and completed in any order (work stealing), then
    reassembled by chunk index.

    ``initializer`` / ``initargs`` run once in each worker process before
    any chunk (the hook the shared-memory trace shipment uses to install
    its manifest).  They are **not** invoked on the inline ``workers=1``
    path — the parent process already holds whatever state the
    initializer would install.

    Degenerate dispatch shapes are normalized rather than spawning a
    useless pool: an empty task list returns ``[]`` without touching the
    pool or the counters, and ``workers > len(tasks)`` is clamped so no
    worker is ever created without at least one chunk to run.  An
    explicit ``chunk_size < 1`` is a caller bug and raises.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not tasks:
        return []
    workers = min(workers, len(tasks))
    if counters is not None:
        counters.pool_tasks += len(tasks)
        counters.pool_workers = max(counters.pool_workers, workers)
    if workers == 1:
        if counters is not None:
            counters.pool_chunks += 1
        return [fn(task) for task in tasks]
    if chunk_size is None:
        chunk_size = default_chunk_size(len(tasks), workers)
    chunks = [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]
    if counters is not None:
        counters.pool_chunks += len(chunks)
    results: list[list | None] = [None] * len(chunks)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        futures = {
            pool.submit(_run_chunk, fn, chunk): i
            for i, chunk in enumerate(chunks)
        }
        for future in as_completed(futures):
            results[futures[future]] = future.result()
    out: list = []
    for chunk_rows in results:
        assert chunk_rows is not None
        out.extend(chunk_rows)
    return out


@dataclass(frozen=True)
class FlowSweepCell:
    """One (trace, policy) flow-simulation cell of a figure grid.

    Frozen and plain-data, so it pickles cheaply; the worker regenerates
    the trace from the generation parameters (memoized per process).
    """

    distribution: str
    load: float
    m: int
    mode: str
    policy: str
    n_jobs: int
    seed: int
    figure: str = ""
    speed: float = 1.0
    policy_kwargs: tuple = ()  # (key, value) pairs

    def run(self) -> dict:
        """Execute in the current process; returns a flat result row."""
        from repro.analysis.parallel import memoized_trace
        from repro.flowsim.engine import FlowSimConfig, simulate
        from repro.flowsim.policies import policy_by_name

        trace = memoized_trace(
            self.distribution, self.load, self.m, self.n_jobs, self.mode, self.seed
        )
        result = simulate(
            trace,
            self.m,
            policy_by_name(self.policy, **dict(self.policy_kwargs)),
            seed=self.seed,
            config=FlowSimConfig(speed=self.speed),
        )
        # the serial sweep's row fields, plus the cell seed and event
        # count; nothing process-dependent may ever be added here — the
        # workers=N ≡ workers=1 guarantee is a byte-level comparison
        return {
            "figure": self.figure,
            "distribution": self.distribution,
            "load": self.load,
            "m": self.m,
            "mode": self.mode,
            "scheduler": result.scheduler,
            "mean_flow": result.mean_flow,
            "p99_flow": result.percentile(99),
            "preemptions": result.preemptions,
            "switches": result.extra.get("switches", 0),
            "utilization": result.extra.get("utilization", 0.0),
            "seed": self.seed,
            "events": int(result.extra.get("events", 0)),
        }


def _run_flow_cell(cell: FlowSweepCell) -> dict:
    return cell.run()


def flow_sweep_cells(
    distribution: str,
    load: float,
    mode,
    m_values: Iterable[int],
    n_jobs: int,
    seed: int = 0,
    policies: Sequence[str] | None = None,
    replicates: int = 1,
    figure: str = "",
) -> list[FlowSweepCell]:
    """Figure-1/2 style grid as a flat cell list (m × policy × replicate).

    Replicate 0 runs on the base ``seed`` — matching the serial
    single-shot sweep — and replicate ``r`` on
    ``derive_seed(seed, f"rep/{r}")``, the same child a hand-rolled
    :meth:`repro.core.rng.RngFactory.child` loop would use.
    """
    mode_s = mode.value if hasattr(mode, "value") else str(mode)
    if policies is None:
        policies = (
            DEFAULT_PAR_POLICIES
            if mode_s == "fully_parallel"
            else DEFAULT_SEQ_POLICIES
        )
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    cells = []
    for r in range(replicates):
        cell_seed = seed if r == 0 else derive_seed(seed, f"rep/{r}")
        for m in m_values:
            for policy in policies:
                cells.append(
                    FlowSweepCell(
                        distribution=distribution,
                        load=float(load),
                        m=int(m),
                        mode=mode_s,
                        policy=policy,
                        n_jobs=int(n_jobs),
                        seed=int(cell_seed),
                        figure=figure,
                    )
                )
    return cells


def run_flow_grid(
    cells: Sequence[FlowSweepCell],
    workers: "int | str | None" = 1,
    chunk_size: int | None = None,
    counters=None,
) -> list[dict]:
    """Run a flow-cell grid through :func:`run_grid`.

    When the grid actually fans out (resolved ``workers > 1``), the
    distinct traces behind the cells are generated once in the parent
    and shipped to the workers through one shared-memory segment
    (:mod:`repro.analysis.shm`): workers reconstruct each trace from the
    packed columns instead of re-running ``generate_trace`` per process.
    The reconstruction is bit-exact, so rows remain byte-identical to
    ``workers=1``; if shared memory is unavailable the grid silently
    stays on the per-process regeneration path.  The segment is unlinked
    as soon as the grid returns.
    """
    resolved = resolve_workers(workers)
    if resolved is None:
        resolved = os.cpu_count() or 1
    shipment = None
    initializer: Callable | None = None
    initargs: tuple = ()
    if resolved > 1 and len(cells) > 1:
        from repro.analysis import shm
        from repro.analysis.parallel import memoized_trace

        keyed: dict[tuple, object] = {}
        for cell in cells:
            key = (
                cell.distribution,
                cell.load,
                cell.m,
                cell.n_jobs,
                cell.mode,
                cell.seed,
            )
            if key not in keyed:
                keyed[key] = memoized_trace(*key)
        try:
            manifest, shipment = shm.pack_flow_traces(keyed)
        except shm.ShmUnavailable:
            shipment = None  # memo path: workers regenerate as before
        else:
            initializer = shm.install_manifest
            initargs = (manifest,)
            if counters is not None:
                counters.pool_shm_traces += shipment.n_traces
                counters.pool_shm_bytes += shipment.nbytes
    try:
        return run_grid(
            _run_flow_cell,
            cells,
            workers=workers,
            chunk_size=chunk_size,
            counters=counters,
            initializer=initializer,
            initargs=initargs,
        )
    finally:
        if shipment is not None:
            shipment.close_and_unlink()


@dataclass(frozen=True)
class WsSweepCell:
    """One (trace, scheduler) work-stealing runtime cell of a fig-3 grid.

    Same discipline as :class:`FlowSweepCell`: frozen plain data, the
    worker process rebuilds the DAG trace from generation parameters
    (memoized — all four schedulers of a fig-3 point share one trace),
    and the result row carries nothing process-dependent, so
    ``workers=N`` output equals ``workers=1`` output byte-for-byte.
    """

    distribution: str
    load: float
    m: int
    scheduler: str  # ws_scheduler_factories key, doubles as the row label
    n_jobs: int
    seed: int
    mean_work_units: int = 400
    parallelism: int = 0  # 0 = the run_ws_point default of 2*m
    figure: str = ""

    def run(self) -> dict:
        """Execute in the current process; returns a flat result row."""
        from repro.analysis.experiments import ws_scheduler_factories
        from repro.analysis.parallel import memoized_ws_trace
        from repro.wsim.runtime import simulate_ws

        parallelism = self.parallelism or 2 * self.m
        trace = memoized_ws_trace(
            self.distribution,
            self.load,
            self.m,
            self.n_jobs,
            self.mean_work_units,
            parallelism,
            self.seed,
        )
        factory = ws_scheduler_factories()[self.scheduler]
        result = simulate_ws(trace, self.m, factory(), seed=self.seed)
        # run_ws_point's row fields plus the cell seed and the step count;
        # nothing process-dependent may ever be added here (see
        # FlowSweepCell.run)
        return {
            "figure": self.figure,
            "distribution": self.distribution,
            "load": self.load,
            "m": self.m,
            "scheduler": self.scheduler,
            "mean_flow": result.mean_flow,
            "p99_flow": result.percentile(99),
            "preemptions": result.preemptions,
            "switches": result.extra.get("switches", 0),
            "steal_attempts": result.steal_attempts,
            "muggings": result.muggings,
            "utilization": result.extra.get("utilization", 0.0),
            "seed": self.seed,
            "events": int(result.makespan),
        }


def _run_ws_cell(cell: WsSweepCell) -> dict:
    return cell.run()


def ws_sweep_cells(
    distribution: str,
    loads: Iterable[float],
    m_values: Iterable[int],
    n_jobs: int,
    seed: int = 0,
    schedulers: Sequence[str] | None = None,
    mean_work_units: int = 400,
    parallelism: int | None = None,
    replicates: int = 1,
    figure: str = "",
) -> list[WsSweepCell]:
    """Figure-3 style grid as a flat cell list (m × load × scheduler).

    Seeds follow the :func:`flow_sweep_cells` rule: replicate 0 on the
    base ``seed`` (matching the serial :func:`run_ws_sweep`), replicate
    ``r`` on ``derive_seed(seed, f"rep/{r}")``.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    if schedulers is None:
        schedulers = DEFAULT_WS_SCHEDULERS
    cells = []
    for r in range(replicates):
        cell_seed = seed if r == 0 else derive_seed(seed, f"rep/{r}")
        for m in m_values:
            for load in loads:
                for scheduler in schedulers:
                    cells.append(
                        WsSweepCell(
                            distribution=distribution,
                            load=float(load),
                            m=int(m),
                            scheduler=scheduler,
                            n_jobs=int(n_jobs),
                            seed=int(cell_seed),
                            mean_work_units=int(mean_work_units),
                            parallelism=int(parallelism or 0),
                            figure=figure,
                        )
                    )
    return cells


def run_ws_grid(
    cells: Sequence[WsSweepCell],
    workers: "int | str | None" = 1,
    chunk_size: int | None = None,
    counters=None,
) -> list[dict]:
    """Run a work-stealing-cell grid through :func:`run_grid`."""
    return run_grid(
        _run_ws_cell,
        cells,
        workers=workers,
        chunk_size=chunk_size,
        counters=counters,
    )


def replicate_flow(
    policy: str,
    distribution: str,
    load: float,
    m: int,
    n_jobs: int,
    mode: str = "sequential",
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    workers: int | None = 1,
    metric: str = "mean_flow",
):
    """Multi-seed replication of one cell, sharded over the pool.

    The pool-friendly sibling of :func:`repro.analysis.replication.replicate`:
    same :class:`~repro.analysis.replication.Replication` summary, but the
    per-seed runs are grid cells, so they parallelize and stay
    byte-deterministic for any worker count.
    """
    from repro.analysis.replication import Replication

    if not seeds:
        raise ValueError("need at least one seed")
    cells = [
        FlowSweepCell(
            distribution=distribution,
            load=float(load),
            m=int(m),
            mode=mode,
            policy=policy,
            n_jobs=int(n_jobs),
            seed=int(s),
        )
        for s in seeds
    ]
    rows = run_flow_grid(cells, workers=workers)
    return Replication(
        label=rows[0]["scheduler"],
        values=tuple(float(r[metric]) for r in rows),
    )
