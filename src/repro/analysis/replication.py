"""Multi-seed replication with confidence intervals.

Randomized schedulers (DREP above all) need replicated runs before two
mean flows can be compared honestly.  ``replicate`` runs any
result-producing callable across seeds and summarizes with a normal-
approximation confidence interval; ``significantly_less`` is the
two-sample comparison benches use to claim an ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.metrics import ScheduleResult

__all__ = ["Replication", "replicate", "significantly_less"]

#: two-sided 95% normal quantile
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Replication:
    """Summary of one metric across replicated runs."""

    label: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one replication")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    @property
    def stderr(self) -> float:
        return self.std / math.sqrt(self.n) if self.n > 1 else 0.0

    def ci95(self) -> tuple[float, float]:
        half = _Z95 * self.stderr
        return (self.mean - half, self.mean + half)

    def summary(self) -> dict:
        lo, hi = self.ci95()
        return {
            "label": self.label,
            "n": self.n,
            "mean": self.mean,
            "ci95_lo": lo,
            "ci95_hi": hi,
        }


def replicate(
    run: Callable[[int], ScheduleResult],
    seeds: Sequence[int],
    metric: Callable[[ScheduleResult], float] = lambda r: r.mean_flow,
    label: str | None = None,
) -> Replication:
    """Run ``run(seed)`` for each seed and summarize ``metric``."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = []
    name = label
    for seed in seeds:
        result = run(int(seed))
        if name is None:
            name = result.scheduler
        values.append(float(metric(result)))
    return Replication(label=name or "run", values=tuple(values))


def significantly_less(
    a: Replication, b: Replication, alpha_z: float = _Z95
) -> bool:
    """Welch-style test: is ``a``'s mean below ``b``'s beyond noise?

    Returns True when ``mean(a) + z·se < mean(b) - z·se`` fails to hold
    ... i.e. when the upper CI bound of ``a`` sits below the lower CI
    bound of ``b`` under the pooled normal approximation.  Conservative
    and dependency-free (no scipy needed, though scipy is available).
    """
    se = math.hypot(a.stderr, b.stderr)
    if se == 0:
        return a.mean < b.mean
    return (b.mean - a.mean) > alpha_z * se
