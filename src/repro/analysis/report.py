"""One-command reproduction report.

:func:`build_report` runs the paper's whole evaluation (Figures 1-3,
Theorem 1.2) at a configurable scale and renders a single markdown
document with series tables and ASCII plots — the artifact a reviewer
would ask for.  Used by ``drep-sim report`` and tested at tiny scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.experiments import (
    run_flow_sweep,
    run_ws_sweep,
)
from repro.analysis.tables import ascii_plot, series_table
from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import DrepSequential
from repro.theory.preemptions import check_theorem_1_2
from repro.workloads.traces import generate_trace

__all__ = ["ReportConfig", "build_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Scales and sweeps for a report run."""

    flow_jobs: int = 5_000
    ws_jobs: int = 200
    m_values: tuple[int, ...] = (1, 4, 16, 64)
    loads: tuple[float, ...] = (0.5, 0.7)
    ws_loads: tuple[float, ...] = (0.5, 0.6, 0.7)
    ws_m: int = 8
    distributions: tuple[str, ...] = ("finance", "bing")
    seed: int = 1

    def __post_init__(self) -> None:
        if self.flow_jobs < 1 or self.ws_jobs < 1:
            raise ValueError("job counts must be >= 1")
        if not self.m_values or not self.loads:
            raise ValueError("need at least one m value and one load")


@dataclass
class _Section:
    title: str
    body: list[str] = field(default_factory=list)

    def render(self) -> str:
        return f"## {self.title}\n\n" + "\n".join(self.body) + "\n"


def _plot_from_rows(rows, x: str, value: str, title: str) -> str:
    series: dict[str, tuple[list[float], list[float]]] = {}
    for r in rows:
        xs, ys = series.setdefault(r["scheduler"], ([], []))
        xs.append(float(r[x]))
        ys.append(float(r[value]))
    return ascii_plot(series, width=56, height=12, title=title)


def build_report(config: ReportConfig = ReportConfig()) -> str:
    """Run the full evaluation and return the markdown report text."""
    started = time.time()
    sections: list[_Section] = []

    # Figures 1 and 2
    for fig, mode in (
        ("Figure 1 (sequential jobs)", ParallelismMode.SEQUENTIAL),
        ("Figure 2 (fully parallel jobs)", ParallelismMode.FULLY_PARALLEL),
    ):
        sec = _Section(fig)
        for dist in config.distributions:
            for load in config.loads:
                rows = run_flow_sweep(
                    distribution=dist,
                    load=load,
                    mode=mode,
                    m_values=list(config.m_values),
                    n_jobs=config.flow_jobs,
                    seed=config.seed,
                )
                sec.body.append(f"### {dist}, load {load:.0%}\n")
                sec.body.append("```")
                sec.body.append(
                    series_table(rows, x="m", series="scheduler", value="mean_flow")
                )
                sec.body.append(
                    _plot_from_rows(rows, "m", "mean_flow", "mean flow vs m")
                )
                sec.body.append("```")
        sections.append(sec)

    # Figure 3
    sec = _Section("Figure 3 (work-stealing runtime)")
    for dist in config.distributions:
        rows = run_ws_sweep(
            distribution=dist,
            loads=list(config.ws_loads),
            m=config.ws_m,
            n_jobs=config.ws_jobs,
            seed=config.seed,
        )
        sec.body.append(f"### {dist}, {config.ws_m} cores\n")
        sec.body.append("```")
        sec.body.append(
            series_table(rows, x="load", series="scheduler", value="mean_flow")
        )
        sec.body.append("```")
    sections.append(sec)

    # Theorem 1.2
    sec = _Section("Theorem 1.2 (preemption budgets)")
    lines = ["```", "m  preempt/job  switches  bound_2mn"]
    for m in config.m_values:
        trace = generate_trace(
            config.flow_jobs, "finance", 0.6, m, seed=config.seed + m
        )
        result = simulate(trace, m, DrepSequential(), seed=config.seed + m)
        budget = check_theorem_1_2(result, config.flow_jobs)
        lines.append(
            f"{m:<3d}{budget.sequential_ratio():<13.3f}"
            f"{budget.observed_switches:<10d}{budget.switch_bound}"
        )
    lines.append("```")
    sec.body.extend(lines)
    sections.append(sec)

    elapsed = time.time() - started
    header = (
        "# DREP reproduction report\n\n"
        f"flow-level points: {config.flow_jobs} jobs; runtime points: "
        f"{config.ws_jobs} jobs; seed {config.seed}; generated in "
        f"{elapsed:.1f}s.\n\n"
        "Shapes to check against the paper: SRPT/SJF lowest and DREP≈RR "
        "(Fig. 1); DREP within a small factor of SRPT, worst on Bing at "
        "1 core (Fig. 2); DREP≈SWF≈admit-first with steal-first worst at "
        "high load (Fig. 3); ~<=1 preemption per job (Thm 1.2).\n"
    )
    return header + "\n" + "\n".join(s.render() for s in sections)


def write_report(path: str | Path, config: ReportConfig = ReportConfig()) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(build_report(config))
    return p


def stream_summary_rows(summaries: "dict[str, dict]") -> list[dict]:
    """Normalize streamed-run summaries into report table rows.

    ``summaries`` maps a row label to either a
    :meth:`repro.core.metrics.StreamResult.summary` dict or a bare
    :meth:`repro.core.metrics.StreamingMetrics.summary` dict.  Rows keep
    the headline flow statistics, mark whether the quantiles are exact
    or reservoir estimates, and surface the memory counters the
    streaming engines record — the numbers a bounded-RAM replay is run
    for.  Sorted by label for deterministic rendering.
    """
    rows: list[dict] = []
    for label in sorted(summaries):
        s = summaries[label]
        perf = s.get("perf", {}) or {}
        row = {
            "run": label,
            "n_jobs": int(s.get("n_jobs", 0)),
            "mean_flow": float(s.get("mean_flow", 0.0)),
            "p50_flow": float(s.get("p50_flow", 0.0)),
            "p99_flow": float(s.get("p99_flow", 0.0)),
            "max_flow": float(s.get("max_flow", 0.0)),
            "quantiles": (
                "exact" if s.get("quantiles_exact", True) else "reservoir"
            ),
        }
        if "mean_slowdown" in s:
            row["mean_slowdown"] = float(s["mean_slowdown"])
        if "slo_attainment" in s:
            # exact O(1)-memory fold (never a reservoir estimate) — see
            # StreamingMetrics.slo_attainment
            row["slo"] = float(s.get("slo_threshold", 0.0))
            row["slo_attainment"] = round(float(s["slo_attainment"]), 4)
        if perf.get("peak_rss_mb"):
            row["peak_rss_mb"] = round(float(perf["peak_rss_mb"]), 1)
        if perf.get("py_peak_mb"):
            row["py_peak_mb"] = round(float(perf["py_peak_mb"]), 2)
        rows.append(row)
    return rows


def stream_report(summaries: "dict[str, dict]", title: str = "Streamed runs") -> str:
    """Markdown section for streamed (bounded-RAM) runs.

    The streaming twin of the dense report tables: per-run flow
    statistics from :class:`~repro.core.metrics.StreamingMetrics`
    summaries plus the recorded memory peaks, with a note when the
    tail quantiles are reservoir estimates rather than exact.
    """
    from repro.analysis.tables import format_table

    rows = stream_summary_rows(summaries)
    sec = _Section(title)
    if not rows:
        sec.body.append("(no streamed runs)")
        return sec.render()
    columns: list[str] = []
    for r in rows:  # key union, first-appearance order (rows may differ)
        for k in r:
            if k not in columns:
                columns.append(k)
    full = [{c: r.get(c, "") for c in columns} for r in rows]
    sec.body.append("```")
    sec.body.append(format_table(full, columns=columns))
    sec.body.append("```")
    if any(r["quantiles"] == "reservoir" for r in rows):
        sec.body.append(
            "\np50/p99 marked `reservoir` are fixed-seed reservoir-sample "
            "estimates (the run exceeded the exact-quantile buffer); "
            "count/mean/total/max are always exact."
        )
    return sec.render()


def tenant_breakdown(
    tenant_flows: dict[str, list[float]], slo: float | None = None
) -> list[dict]:
    """Per-tenant flow-time / SLO rows from grouped per-job flow times.

    ``tenant_flows`` is the shape produced by
    :meth:`repro.serve.online.OnlineScheduler.flows_by_tenant` and by the
    ``tenants`` block of :meth:`repro.serve.shard.ShardRouter.drain` —
    tenant label to list of completed flow times.  ``slo`` adds an
    ``slo_attainment`` column: the fraction of that tenant's jobs whose
    flow time is at or under the target.  Rows are sorted by tenant name
    so the table (and any serialization of it) is deterministic.
    """
    import numpy as np

    rows: list[dict] = []
    for tenant in sorted(tenant_flows):
        flows = np.asarray(tenant_flows[tenant], dtype=float)
        row = {
            "tenant": tenant,
            "count": int(flows.size),
            "mean_flow": float(flows.mean()) if flows.size else 0.0,
            "p95_flow": (
                float(np.percentile(flows, 95)) if flows.size else 0.0
            ),
            "p99_flow": (
                float(np.percentile(flows, 99)) if flows.size else 0.0
            ),
            "max_flow": float(flows.max()) if flows.size else 0.0,
        }
        if slo is not None:
            row["slo"] = float(slo)
            row["slo_attainment"] = (
                float((flows <= slo).mean()) if flows.size else 1.0
            )
        rows.append(row)
    return rows


__all__ += [
    "write_report",
    "tenant_breakdown",
    "stream_summary_rows",
    "stream_report",
]
