"""Zero-copy trace shipping for the grid pool (``repro.analysis.pool``).

A figure grid runs many cells against few distinct traces.  The memo
path (:func:`repro.analysis.parallel.memoized_trace`) already avoids
*pickling* traces — workers regenerate them from parameters — but each
worker process still pays one full ``generate_trace`` per distinct key:
RNG sampling, JobSpec validation, Poisson arrivals.  This module ships
the numeric columns of every distinct trace to the workers **once**
through ``multiprocessing.shared_memory`` instead:

* the parent packs each trace's ``release`` / ``work`` / ``span`` /
  ``weight`` float64 columns plus a uint8 mode code into one shared
  segment (:func:`pack_flow_traces`) and hands the pool a picklable
  *manifest* of ``{trace key -> (offset, length, metadata)}``;
* each worker attaches the segment lazily on its first lookup
  (:func:`shared_trace`) and reconstructs the job list from **read-only
  memoryview-backed arrays** — the float data is never copied or
  re-derived, only the ``JobSpec`` objects are materialized (numbers
  bit-for-bit equal to the parent's trace, so grid rows stay
  byte-identical to ``workers=1``);
* when shared memory is unavailable (no ``/dev/shm``, exotic platform —
  :class:`ShmUnavailable`), or for keys outside the manifest (e.g. DAG
  traces, whose graph objects cannot be packed), everything falls back
  to the existing per-process memo regeneration, unchanged.

Lifecycle: the parent owns the segment and must call
:meth:`Shipment.close_and_unlink` after the grid completes (the pool
runner does this in a ``finally``).  Workers only ever attach; their
mappings die with the process.  ``Trace.meta`` and DAG attachments are
*not* shipped — flow-level simulation reads neither.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.job import JobSpec, ParallelismMode

__all__ = [
    "ShmUnavailable",
    "Shipment",
    "pack_flow_traces",
    "install_manifest",
    "shared_trace",
    "shared_stats",
]

#: stable mode-code table (uint8 index); append-only by construction
_MODES = (
    ParallelismMode.SEQUENTIAL,
    ParallelismMode.FULLY_PARALLEL,
    ParallelismMode.DAG,
)
_MODE_CODE = {mode: i for i, mode in enumerate(_MODES)}

#: bytes per job: 4 float64 columns + 1 uint8 code, column-major per trace
_F64 = 8


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be used here; callers fall back to the memo."""


def _align8(x: int) -> int:
    return (x + 7) & ~7


@dataclass
class Shipment:
    """Parent-side handle to one shared segment holding packed traces."""

    shm: object  # multiprocessing.shared_memory.SharedMemory
    nbytes: int
    n_traces: int

    def close_and_unlink(self) -> None:
        """Release the segment (idempotent; swallows races with trackers)."""
        try:
            self.shm.close()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass
        try:
            self.shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - defensive
            pass


def pack_flow_traces(keyed_traces: dict) -> "tuple[dict, Shipment]":
    """Pack traces into one shared segment; return (manifest, shipment).

    ``keyed_traces`` maps the :func:`memoized_trace` key tuple
    ``(distribution, load, m, n_jobs, mode, seed)`` to the generated
    :class:`~repro.workloads.traces.Trace`.  Traces containing DAG jobs
    are skipped (graphs cannot be packed); if nothing is packable or
    shared memory cannot be created, :class:`ShmUnavailable` is raised
    and the caller stays on the memo path.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError as exc:  # pragma: no cover - always present on CPython
        raise ShmUnavailable(str(exc)) from exc

    entries = []
    offset = 0
    for key, trace in keyed_traces.items():
        if any(j.dag is not None for j in trace.jobs):
            continue  # graphs cannot be packed; memo path covers these
        n = len(trace.jobs)
        size = _align8(4 * _F64 * n + n)
        entries.append((key, trace, offset, n))
        offset += size
    if not entries:
        raise ShmUnavailable("no packable traces")
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    except (OSError, ValueError) as exc:
        raise ShmUnavailable(str(exc)) from exc

    manifest: dict = {"shm": shm.name, "traces": {}}
    buf = shm.buf
    for key, trace, off, n in entries:
        block = np.ndarray((4, n), dtype=np.float64, buffer=buf, offset=off)
        codes = np.ndarray(
            (n,), dtype=np.uint8, buffer=buf, offset=off + 4 * _F64 * n
        )
        for i, j in enumerate(trace.jobs):
            block[0, i] = j.release
            block[1, i] = j.work
            block[2, i] = j.span
            block[3, i] = j.weight
            codes[i] = _MODE_CODE[j.mode]
        manifest["traces"][key] = {
            "offset": off,
            "n": n,
            "m": trace.m,
            "load": trace.load,
            "distribution": trace.distribution,
            "name": trace.name,
        }
        # release the local views before the segment can be closed
        del block, codes
    return manifest, Shipment(shm=shm, nbytes=offset, n_traces=len(entries))


# -- worker side -----------------------------------------------------------

#: manifest installed by the pool initializer (None = no shipment active)
_MANIFEST: dict | None = None
#: lazily attached segment for the installed manifest
_ATTACHED = None
#: how many shared lookups this process served (test observability)
_STATS = {"hits": 0}


def install_manifest(manifest: dict | None) -> None:
    """Pool-initializer target: make ``manifest`` visible to lookups.

    Runs in every worker process before any task; also callable in the
    parent (``workers=1`` never needs it — the parent memo already holds
    the generated traces).  Passing ``None`` uninstalls.
    """
    global _MANIFEST, _ATTACHED
    _MANIFEST = manifest
    _ATTACHED = None
    _STATS["hits"] = 0


def _attach():
    global _ATTACHED
    if _ATTACHED is None:
        from multiprocessing import shared_memory

        assert _MANIFEST is not None
        _ATTACHED = shared_memory.SharedMemory(name=_MANIFEST["shm"])
    return _ATTACHED


def shared_trace(key: tuple):
    """Reconstruct the trace for ``key`` from shared memory, or ``None``.

    ``None`` means "not shipped" — the caller regenerates as before.
    The reconstruction reads the packed columns through read-only
    memoryview-backed arrays (zero copy of the numeric data) and
    materializes the ``JobSpec`` list exactly once per worker process;
    the caller memoizes the resulting trace.
    """
    manifest = _MANIFEST
    if manifest is None:
        return None
    entry = manifest["traces"].get(key)
    if entry is None:
        return None
    try:
        shm = _attach()
    except (OSError, FileNotFoundError):  # segment gone: fall back
        return None
    from repro.workloads.traces import Trace

    off = entry["offset"]
    n = entry["n"]
    ro = memoryview(shm.buf).toreadonly()
    block = np.ndarray((4, n), dtype=np.float64, buffer=ro, offset=off)
    codes = np.ndarray(
        (n,), dtype=np.uint8, buffer=ro, offset=off + 4 * _F64 * n
    )
    release, work, span, weight = block
    jobs = [
        JobSpec(
            job_id=i,
            release=float(release[i]),
            work=float(work[i]),
            span=float(span[i]),
            mode=_MODES[codes[i]],
            weight=float(weight[i]),
        )
        for i in range(n)
    ]
    _STATS["hits"] += 1
    return Trace(
        jobs=jobs,
        m=entry["m"],
        load=entry["load"],
        distribution=entry["distribution"],
        name=entry["name"],
    )


def shared_stats() -> dict:
    """Per-process lookup stats (``{"hits": int}``); for tests/benches."""
    return dict(_STATS)


# silence the unused-import linters: struct documents the layout intent
_ = struct
