"""Result tables and text rendering.

Every bench prints its figure/table as plain rows (the series the paper
plots), so reproduction output can be eyeballed and diffed.  Helpers here
are dependency-free renderers over lists of dicts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

__all__ = ["format_table", "pivot", "series_table", "ascii_plot", "save_rows"]


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(v: Any) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    body = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(b[i]) for b in body)) for i, c in enumerate(cols)]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(v.ljust(w) for v, w in zip(b, widths)) for b in body]
    return "\n".join(lines)


def pivot(
    rows: Sequence[dict], index: str, column: str, value: str
) -> tuple[list, list, list[list]]:
    """Pivot rows into (index values, column names, matrix of values).

    Missing cells become ``None``; duplicate cells keep the last value.
    """
    idx_vals: list = []
    col_vals: list = []
    cells: dict[tuple, Any] = {}
    for r in rows:
        i, c = r[index], r[column]
        if i not in idx_vals:
            idx_vals.append(i)
        if c not in col_vals:
            col_vals.append(c)
        cells[(i, c)] = r[value]
    matrix = [[cells.get((i, c)) for c in col_vals] for i in idx_vals]
    return idx_vals, col_vals, matrix


def series_table(
    rows: Sequence[dict],
    x: str,
    series: str,
    value: str,
    floatfmt: str = ".4g",
) -> str:
    """Figure-style rendering: one row per x, one column per series."""
    idx_vals, col_vals, matrix = pivot(rows, x, series, value)
    out_rows = []
    for i, iv in enumerate(idx_vals):
        row = {x: iv}
        for j, cv in enumerate(col_vals):
            row[str(cv)] = matrix[i][j] if matrix[i][j] is not None else ""
        out_rows.append(row)
    return format_table(out_rows, [x] + [str(c) for c in col_vals], floatfmt)


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Crude scatter plot of several (xs, ys) series in ASCII.

    Intended for EXPERIMENTS.md shape records, not publication graphics.
    Each series gets a marker letter; overlapping points show the later
    series' marker.
    """
    pts = [
        (float(xv), float(yv), name)
        for name, (xs, ys) in series.items()
        for xv, yv in zip(xs, ys)
    ]
    if not pts:
        return "(empty plot)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = {name: chr(ord("A") + i % 26) for i, name in enumerate(series)}
    for xv, yv, name in pts:
        col = int((xv - x0) / xspan * (width - 1))
        row = height - 1 - int((yv - y0) / yspan * (height - 1))
        grid[row][col] = markers[name]
    legend = "  ".join(f"{mk}={name}" for name, mk in markers.items())
    lines = []
    if title:
        lines.append(title)
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x0:g}, {x1:g}]  y: [{y0:g}, {y1:g}]")
    lines.append(" " + legend)
    return "\n".join(lines)


def save_rows(path: str | Path, rows: Sequence[dict]) -> None:
    """Persist result rows as JSON (creates parent directories)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(list(rows), indent=2, default=str))
