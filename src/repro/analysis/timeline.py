"""Runtime timelines: what every worker did, step by step.

For small work-stealing runs this renders the schedule the way the
paper's Sec. IV-A prose describes it — which worker executed which job,
when steals/muggings happened, when preemption flags fired — so runtime
behaviour can be inspected and asserted on directly.

Built on the :meth:`repro.wsim.runtime.WsRuntime.run` observer hook: the
recorder samples worker state once per step, then renders an ASCII chart
(one row per worker, one column per sampled step, job ids as symbols).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimelineRecorder", "render_timeline", "render_timeline_svg", "occupancy"]

_IDLE = -1
_SYMBOLS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass
class TimelineRecorder:
    """Observer that samples per-worker job occupancy each step.

    Pass ``recorder`` to ``WsRuntime.run(observer=recorder)``.  Use
    ``stride`` to subsample long runs.  A worker's sample is the job id
    it is assigned to (affinity mode) or the job of its current node
    (global mode); ``-1`` when neither exists.
    """

    stride: int = 1
    steps: list[int] = field(default_factory=list)
    rows: list[list[int]] = field(default_factory=list)
    active_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        self._tick = 0

    def __call__(self, rt) -> None:
        if self._tick % self.stride == 0:
            sample = []
            for w in rt.workers:
                if w.job is not None:
                    sample.append(w.job.job_id)
                elif w.current is not None:
                    sample.append(w.current[0].job_id)
                elif w.dq is not None and w.dq.nodes:
                    sample.append(w.dq.nodes[-1][0].job_id)
                else:
                    sample.append(_IDLE)
            self.rows.append(sample)
            self.steps.append(rt.step)
            self.active_counts.append(len(rt.active))
        self._tick += 1

    @property
    def matrix(self) -> np.ndarray:
        """``int[steps, workers]`` occupancy matrix (-1 = idle)."""
        return np.array(self.rows, dtype=np.int64).reshape(len(self.rows), -1)


def render_timeline(recorder: TimelineRecorder, max_width: int = 100) -> str:
    """ASCII chart: one row per worker, one character per sampled step.

    Job ids map to symbols cyclically; ``.`` marks an idle worker.
    """
    if not recorder.rows:
        return "(no samples)"
    mat = recorder.matrix.T  # workers x steps
    cols = mat.shape[1]
    stride = max(1, cols // max_width)
    lines = []
    for wid in range(mat.shape[0]):
        chars = []
        for c in range(0, cols, stride):
            job = int(mat[wid, c])
            chars.append("." if job == _IDLE else _SYMBOLS[job % len(_SYMBOLS)])
        lines.append(f"W{wid:<3d} |" + "".join(chars))
    lines.append(
        f"steps {recorder.steps[0]}..{recorder.steps[-1]} "
        f"(every {recorder.stride * stride} steps per column)"
    )
    return "\n".join(lines)


def render_timeline_svg(
    recorder: TimelineRecorder,
    width: int = 900,
    row_height: int = 18,
    title: str = "",
) -> str:
    """Self-contained SVG Gantt chart of the recorded schedule.

    One row per worker; colored blocks are contiguous runs on one job
    (color cycles by job id), grey gaps are idle.  No dependencies —
    plain SVG text, viewable in any browser.
    """
    if not recorder.rows:
        return "<svg xmlns='http://www.w3.org/2000/svg'/>"
    mat = recorder.matrix.T  # workers x samples
    workers, cols = mat.shape
    label_w = 46
    chart_w = width - label_w
    height = workers * row_height + (28 if title else 8) + 20
    top = 24 if title else 4
    palette = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
        "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
    ]
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='monospace' font-size='11'>"
    ]
    if title:
        parts.append(f"<text x='4' y='14'>{title}</text>")
    px_per_col = chart_w / cols
    for wid in range(workers):
        y = top + wid * row_height
        parts.append(
            f"<text x='2' y='{y + row_height - 5}'>W{wid}</text>"
        )
        # compress consecutive equal samples into blocks
        c = 0
        while c < cols:
            job = int(mat[wid, c])
            c_end = c
            while c_end + 1 < cols and int(mat[wid, c_end + 1]) == job:
                c_end += 1
            x = label_w + c * px_per_col
            w = (c_end - c + 1) * px_per_col
            color = "#dddddd" if job == _IDLE else palette[job % len(palette)]
            parts.append(
                f"<rect x='{x:.1f}' y='{y}' width='{max(w, 0.5):.1f}' "
                f"height='{row_height - 3}' fill='{color}'>"
                f"<title>W{wid} job {job if job != _IDLE else 'idle'} "
                f"steps {recorder.steps[c]}..{recorder.steps[c_end]}</title></rect>"
            )
            c = c_end + 1
    parts.append(
        f"<text x='{label_w}' y='{height - 6}'>steps "
        f"{recorder.steps[0]}..{recorder.steps[-1]}</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def occupancy(recorder: TimelineRecorder) -> dict[int, float]:
    """Fraction of sampled worker-steps spent on each job (incl. idle=-1).

    Under DREP this should be near-proportional to each job's share of
    active time — the equi-partition property of Lemma 4.1.
    """
    if not recorder.rows:
        return {}
    mat = recorder.matrix
    total = mat.size
    jobs, counts = np.unique(mat, return_counts=True)
    return {int(j): float(c) / total for j, c in zip(jobs, counts)}
