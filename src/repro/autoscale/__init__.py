"""Closed-loop elastic capacity: predictor, watermark guard, controller.

The package is engine-agnostic at its core (predictor → guard →
controller decision trace) with drivers for both simulation engines and
an experiment harness producing the cost-vs-flow-time Pareto report.
"""

from repro.autoscale.controller import AutoscaleController
from repro.autoscale.experiment import (
    autoscale_report,
    run_autoscale_experiment,
    write_autoscale_report,
)
from repro.autoscale.guard import AutoscaleConfig, WatermarkGuard
from repro.autoscale.loop import run_flowsim_elastic, run_wsim_elastic
from repro.autoscale.predictor import ArrivalPredictor

__all__ = [
    "ArrivalPredictor",
    "AutoscaleConfig",
    "AutoscaleController",
    "WatermarkGuard",
    "autoscale_report",
    "run_autoscale_experiment",
    "run_flowsim_elastic",
    "run_wsim_elastic",
    "write_autoscale_report",
]
