"""The closed-loop capacity controller: predictor + guard + decision trace.

:class:`AutoscaleController` is engine-agnostic.  A driver (the offline
loops in :mod:`repro.autoscale.loop`, or the live serving tier) calls
:meth:`observe` once per tick with what it can see — arrived work since
the last tick, current backlog, active-job count — and gets back the
target processor count.  The controller owns:

* the :class:`~repro.autoscale.predictor.ArrivalPredictor` feeding the
  look-ahead term of the backlog signal;
* the :class:`~repro.autoscale.guard.WatermarkGuard` enforcing
  hysteresis, cooldowns, and clamps;
* a seeded generator (``derive_seed(seed, "autoscale/<name>")``) whose
  only draws stretch cooldown windows by the configured ``jitter`` —
  decisions are a pure function of ``(seed, observation sequence)``, so
  the same seed yields a byte-identical decision trace;
* the **decision trace** (every tick: time, signal, rate/slope, m
  before/after, reason) and the **m(t) trace** (changes only), plus the
  running ``capacity_seconds`` integral ∫m(t)dt the Pareto report uses
  as its cost axis.

Everything round-trips through :meth:`state_dict` (the RNG via its
bit-generator state), so a SIGKILLed server recovers the controller
bit-for-bit alongside the engine.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.autoscale.guard import AutoscaleConfig, WatermarkGuard
from repro.autoscale.predictor import ArrivalPredictor
from repro.core.rng import derive_seed

__all__ = ["AutoscaleController"]


class AutoscaleController:
    """Seeded, deterministic closed-loop capacity controller."""

    def __init__(
        self, config: AutoscaleConfig, seed: int = 0, name: str = "autoscale"
    ) -> None:
        self.config = config
        self.seed = int(seed)
        self.name = str(name)
        self.predictor = ArrivalPredictor(halflife=config.halflife)
        self.guard = WatermarkGuard(config)
        self.rng = np.random.default_rng(derive_seed(seed, f"autoscale/{name}"))
        self.m = config.initial_m
        self.decisions: list[dict] = []
        self.m_trace: list[list[float]] = [[0.0, self.m]]
        self.capacity_seconds = 0.0
        self._last_t = 0.0

    def bind(self, t: float, m: int) -> None:
        """Pin the starting point of the capacity integral and m(t) trace."""
        self.m = int(m)
        self._last_t = float(t)
        self.m_trace = [[float(t), self.m]]

    def observe(
        self,
        t: float,
        *,
        arrived_work: float,
        backlog_work: float,
        n_active: int,
    ) -> int:
        """One control tick: fold in observations, return the target m.

        ``arrived_work`` is the work released/submitted since the last
        tick, ``backlog_work`` the remaining work of everything in the
        system, ``n_active`` the jobs currently admitted (the displace
        sizing input the drivers use).  The capacity integral accrues at
        the *pre-decision* m — a change decided at ``t`` takes effect at
        ``t``.
        """
        t = float(t)
        cfg = self.config
        self.capacity_seconds += self.m * max(0.0, t - self._last_t)
        self._last_t = t
        self.predictor.observe(t, arrived_work)
        lookahead = self.predictor.forecast(cfg.horizon)
        signal = (float(backlog_work) + lookahead) / max(1, self.m)
        cooldown_scale = 1.0
        if cfg.jitter > 0:
            cooldown_scale = 1.0 + cfg.jitter * (float(self.rng.random()) - 0.5)
        target, reason = self.guard.propose(
            t, signal, self.m, cooldown_scale=cooldown_scale
        )
        self.decisions.append(
            {
                "t": t,
                "m": self.m,
                "target": target,
                "signal": signal,
                "rate": self.predictor.rate,
                "slope": self.predictor.slope,
                "backlog_work": float(backlog_work),
                "n_active": int(n_active),
                "reason": reason,
            }
        )
        if target != self.m:
            self.m = target
            self.m_trace.append([t, target])
        return target

    def finalize(self, t: float) -> None:
        """Close the capacity integral at the end of a run."""
        t = float(t)
        self.capacity_seconds += self.m * max(0.0, t - self._last_t)
        self._last_t = t

    def summary(self) -> dict:
        """Counters the experiment rows and shard reports surface."""
        return {
            "m": self.m,
            "ticks": len(self.decisions),
            "scale_ups": self.guard.ups,
            "scale_downs": self.guard.downs,
            "holds": self.guard.holds,
            "capacity_seconds": self.capacity_seconds,
        }

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "config": asdict(self.config),
            "seed": self.seed,
            "name": self.name,
            "predictor": self.predictor.state_dict(),
            "guard": self.guard.state_dict(),
            "rng": self.rng.bit_generator.state,
            "m": self.m,
            "decisions": [dict(d) for d in self.decisions],
            "m_trace": [list(p) for p in self.m_trace],
            "capacity_seconds": self.capacity_seconds,
            "last_t": self._last_t,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "AutoscaleController":
        config = AutoscaleConfig(**state["config"])
        ctl = cls(config, seed=int(state["seed"]), name=state["name"])
        ctl.predictor = ArrivalPredictor.from_state_dict(state["predictor"])
        ctl.guard = WatermarkGuard.from_state_dict(config, state["guard"])
        ctl.rng.bit_generator.state = state["rng"]
        ctl.m = int(state["m"])
        ctl.decisions = [dict(d) for d in state["decisions"]]
        ctl.m_trace = [[float(t), int(m)] for t, m in state["m_trace"]]
        ctl.capacity_seconds = float(state["capacity_seconds"])
        ctl._last_t = float(state["last_t"])
        return ctl
