"""Autoscale experiment: DREP vs baselines under elastic capacity.

For every (engine, scheduler) pair the same trace runs twice: once at
fixed full capacity ``m_max`` (the baseline) and once under the
closed-loop controller (:mod:`repro.autoscale.loop`).  The report's axes
are the elastic-capacity trade-off the paper's fixed-machine theorems do
not cover:

* ``capacity_seconds`` — ∫m(t)dt, the cost of the capacity actually
  held (the fixed baseline pays ``m_max × makespan``);
* ``mean_flow`` — what the users felt;
* ``switches`` — probing whether the O(mn) switch bound survives
  capacity churn.

The summary block pairs each elastic row with its fixed baseline into
``flow_ratio`` / ``capacity_ratio`` — the Pareto point "x% of the
capacity bill for y× the flow time".  Rows are computed through
:func:`repro.analysis.pool.run_grid`, assembled in submission order, so
``workers=N`` is byte-identical to ``workers=1`` (schema
``autoscale/1``, same contract as the resilience report).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.pool import run_grid
from repro.autoscale.guard import AutoscaleConfig

__all__ = [
    "run_autoscale_experiment",
    "autoscale_report",
    "write_autoscale_report",
]

DEFAULT_FLOW_POLICIES = ("drep", "srpt", "rr")
DEFAULT_WS_SCHEDULERS = ("DREP", "SWF", "steal-first")

#: keys every row carries (decision/m(t)/requeue detail stays with the
#: loop functions; rows keep the aggregates so reports stay readable)
_ROW_DROP = ("decisions",)


@dataclass(frozen=True)
class _AutoscaleCell:
    """One (engine, scheduler, elastic|fixed) run, picklable for the grid."""

    engine: str
    policy: str
    elastic: bool
    aconfig: AutoscaleConfig
    n_jobs: int
    distribution: str
    load: float
    seed: int
    ws_work_units: int = 60
    ws_parallelism: int = 8

    def run(self) -> dict:
        if self.engine == "flowsim":
            row = self._run_flowsim()
        elif self.engine == "wsim":
            row = self._run_wsim()
        else:  # pragma: no cover - guarded by run_autoscale_experiment
            raise ValueError(f"unknown engine {self.engine!r}")
        for key in _ROW_DROP:
            row.pop(key, None)
        row["policy"] = self.policy
        return row

    def _run_flowsim(self) -> dict:
        from repro.analysis.parallel import memoized_trace
        from repro.flowsim.policies import policy_by_name

        trace = memoized_trace(
            self.distribution,
            self.load,
            self.aconfig.m_max,
            self.n_jobs,
            "sequential",
            self.seed,
        )
        if self.elastic:
            from repro.autoscale.loop import run_flowsim_elastic

            return run_flowsim_elastic(
                trace, policy_by_name(self.policy), self.aconfig, seed=self.seed
            )
        from repro.flowsim.engine import simulate

        result = simulate(
            trace, self.aconfig.m_max, policy_by_name(self.policy), seed=self.seed
        )
        return _fixed_row("flowsim", result, self.aconfig.m_max)

    def _run_wsim(self) -> dict:
        from repro.analysis.experiments import ws_scheduler_factories
        from repro.analysis.parallel import memoized_ws_trace

        trace = memoized_ws_trace(
            self.distribution,
            self.load,
            self.aconfig.m_max,
            self.n_jobs,
            self.ws_work_units,
            self.ws_parallelism,
            self.seed,
        )
        factory = ws_scheduler_factories()[self.policy]
        if self.elastic:
            from repro.autoscale.loop import run_wsim_elastic

            return run_wsim_elastic(
                trace, factory(), self.aconfig, seed=self.seed
            )
        from repro.wsim.runtime import WsRuntime

        result = WsRuntime(
            trace, self.aconfig.m_max, factory(), seed=self.seed
        ).run()
        return _fixed_row("wsim", result, self.aconfig.m_max)


def _fixed_row(engine: str, result, m: int) -> dict:
    """Shape a fixed-capacity baseline like an elastic row."""
    return {
        "engine": engine,
        "scheduler": result.scheduler,
        "mode": "fixed",
        "mean_flow": result.mean_flow,
        "makespan": result.makespan,
        "switches": result.extra.get("switches", 0),
        "preemptions": result.preemptions,
        "capacity_seconds": float(m) * float(result.makespan),
        "m_final": m,
        "ticks": 0,
        "scale_ups": 0,
        "scale_downs": 0,
        "displaced_work": 0.0,
        "requeues": 0,
        "displaced_unaccounted": 0.0,
        "m_trace": [[0.0, m]],
    }


def _run_autoscale_cell(cell: _AutoscaleCell) -> dict:
    return cell.run()


def _ratio(elastic: float, fixed: float) -> float:
    if fixed > 0:
        return elastic / fixed
    return float("inf") if elastic > 0 else 1.0


def run_autoscale_experiment(
    aconfig: AutoscaleConfig,
    n_jobs: int = 400,
    distribution: str = "finance",
    load: float = 0.7,
    flow_policies: tuple[str, ...] = DEFAULT_FLOW_POLICIES,
    ws_schedulers: tuple[str, ...] = DEFAULT_WS_SCHEDULERS,
    ws_jobs: int | None = None,
    seed: int = 0,
    workers: int | None = 1,
) -> list[dict]:
    """Rows of (engine × scheduler × {fixed, elastic}) under ``aconfig``.

    ``ws_jobs`` defaults to ``max(40, n_jobs // 4)`` — the step-exact
    runtime pays per work unit, so its sweep runs on a smaller trace.
    Either engine sweep can be disabled by passing an empty tuple.
    """
    if ws_jobs is None:
        ws_jobs = max(40, n_jobs // 4)
    grid: list[_AutoscaleCell] = []
    for policy in flow_policies:
        for elastic in (False, True):
            grid.append(
                _AutoscaleCell(
                    engine="flowsim",
                    policy=policy,
                    elastic=elastic,
                    aconfig=aconfig,
                    n_jobs=n_jobs,
                    distribution=distribution,
                    load=load,
                    seed=seed,
                )
            )
    for scheduler in ws_schedulers:
        for elastic in (False, True):
            grid.append(
                _AutoscaleCell(
                    engine="wsim",
                    policy=scheduler,
                    elastic=elastic,
                    aconfig=aconfig,
                    n_jobs=ws_jobs,
                    distribution=distribution,
                    load=load,
                    seed=seed,
                )
            )
    return run_grid(_run_autoscale_cell, grid, workers=workers)


def autoscale_report(
    rows: list[dict],
    aconfig: AutoscaleConfig,
    n_jobs: int,
    distribution: str,
    load: float,
    seed: int,
) -> dict:
    """BENCH-style JSON document: rows plus the Pareto pairing summary."""
    from dataclasses import asdict

    fixed = {
        (r["engine"], r["policy"]): r for r in rows if r["mode"] == "fixed"
    }
    pareto: dict[str, dict] = {}
    unaccounted = 0.0
    for row in rows:
        if row["mode"] != "elastic":
            continue
        base = fixed.get((row["engine"], row["policy"]))
        entry = {
            "mean_flow": row["mean_flow"],
            "capacity_seconds": row["capacity_seconds"],
            "switches": row["switches"],
            "scale_ups": row["scale_ups"],
            "scale_downs": row["scale_downs"],
            "displaced_work": row.get("displaced_work", 0.0),
            "requeues": row.get("requeues", 0),
        }
        if base is not None:
            entry["flow_ratio"] = _ratio(row["mean_flow"], base["mean_flow"])
            entry["capacity_ratio"] = _ratio(
                row["capacity_seconds"], base["capacity_seconds"]
            )
            entry["switch_ratio"] = _ratio(
                float(row["switches"]), float(base["switches"])
            )
        pareto.setdefault(row["engine"], {})[row["policy"]] = entry
        unaccounted += abs(row.get("displaced_unaccounted", 0.0))
    return {
        "schema": "autoscale/1",
        "params": {
            "autoscale": asdict(aconfig),
            "n_jobs": n_jobs,
            "distribution": distribution,
            "load": load,
            "seed": seed,
        },
        "rows": rows,
        "summary": {
            "pareto": pareto,
            "displaced_unaccounted": unaccounted,
        },
    }


def write_autoscale_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
