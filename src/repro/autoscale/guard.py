"""Watermark guard: hysteresis-banded scale-up/scale-down decisions.

The guard turns a backlog *signal* (estimated drain time per unit of
current capacity, look-ahead included) into a target processor count.
Three mechanisms keep capacity from flapping:

* **watermarks with a hysteresis band** — scale up only above
  ``up_watermark``, down only below ``down_watermark``, and
  ``up_watermark > down_watermark`` is enforced so there is a dead band
  where the guard holds;
* **cooldown windows** — after any change, no further change of either
  direction until ``cooldown_up`` / ``cooldown_down`` time has passed
  (scale-downs typically wait longer: adding capacity is cheap, evicting
  work is not);
* **min/max clamps** — targets never leave ``[m_min, m_max]``.

The guard is pure bookkeeping — no randomness, no engine knowledge — and
round-trips through ``state_dict`` for serve-tier snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscaleConfig", "WatermarkGuard"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tuning knobs for the closed-loop capacity controller.

    Watermarks are in *drain-time* units: backlog plus forecast work,
    divided by current capacity — "how many time units until the queue
    empties at today's size".  ``horizon`` is how far ahead the arrival
    predictor looks; ``requeue_delay`` is the penalty a displaced job
    pays before re-entering the queue; ``jitter`` (0..1) stretches or
    shrinks each cooldown window by a seeded random factor so fleets of
    controllers do not move in lockstep.
    """

    m_min: int = 1
    m_max: int = 8
    m_start: int | None = None  # None = start at m_min (cold start)
    tick: float = 10.0
    up_watermark: float = 20.0
    down_watermark: float = 5.0
    step_up: int = 1
    step_down: int = 1
    cooldown_up: float = 10.0
    cooldown_down: float = 30.0
    horizon: float = 20.0
    halflife: float = 50.0
    requeue_delay: float = 1.0
    displace: bool = True
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.m_min < 1:
            raise ValueError("m_min must be >= 1")
        if self.m_max < self.m_min:
            raise ValueError("m_max must be >= m_min")
        if self.m_start is not None and not (
            self.m_min <= self.m_start <= self.m_max
        ):
            raise ValueError("m_start must lie in [m_min, m_max]")
        if not self.tick > 0:
            raise ValueError("tick must be > 0")
        if not self.up_watermark > self.down_watermark >= 0:
            raise ValueError(
                "need up_watermark > down_watermark >= 0 (hysteresis band)"
            )
        if self.step_up < 1 or self.step_down < 1:
            raise ValueError("step_up/step_down must be >= 1")
        if self.cooldown_up < 0 or self.cooldown_down < 0:
            raise ValueError("cooldowns must be >= 0")
        if not self.horizon >= 0:
            raise ValueError("horizon must be >= 0")
        if not self.halflife > 0:
            raise ValueError("halflife must be > 0")
        if self.requeue_delay < 0:
            raise ValueError("requeue_delay must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    @property
    def initial_m(self) -> int:
        return self.m_start if self.m_start is not None else self.m_min


class WatermarkGuard:
    """Stateful watermark/hysteresis/cooldown gate over capacity targets."""

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self._last_change: float | None = None
        self.ups = 0
        self.downs = 0
        self.holds = 0

    def propose(
        self, t: float, signal: float, m: int, cooldown_scale: float = 1.0
    ) -> tuple[int, str]:
        """Return ``(target_m, reason)`` for the backlog ``signal`` at ``t``.

        ``reason`` is one of ``up`` / ``down`` / ``hold`` /
        ``cooldown`` / ``clamped`` — the decision trace keeps it so a
        flat m(t) line is explainable after the fact.
        """
        cfg = self.config
        if signal > cfg.up_watermark and m < cfg.m_max:
            if not self._cooled(t, cfg.cooldown_up * cooldown_scale):
                self.holds += 1
                return m, "cooldown"
            target = min(cfg.m_max, m + cfg.step_up)
            self._last_change = t
            self.ups += 1
            return target, "up"
        if signal < cfg.down_watermark and m > cfg.m_min:
            if not self._cooled(t, cfg.cooldown_down * cooldown_scale):
                self.holds += 1
                return m, "cooldown"
            target = max(cfg.m_min, m - cfg.step_down)
            self._last_change = t
            self.downs += 1
            return target, "down"
        self.holds += 1
        if signal > cfg.up_watermark or signal < cfg.down_watermark:
            return m, "clamped"
        return m, "hold"

    def _cooled(self, t: float, window: float) -> bool:
        return self._last_change is None or t - self._last_change >= window

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "last_change": self._last_change,
            "ups": self.ups,
            "downs": self.downs,
            "holds": self.holds,
        }

    @classmethod
    def from_state_dict(cls, config: AutoscaleConfig, state: dict) -> "WatermarkGuard":
        guard = cls(config)
        guard._last_change = (
            None if state["last_change"] is None else float(state["last_change"])
        )
        guard.ups = int(state["ups"])
        guard.downs = int(state["downs"])
        guard.holds = int(state["holds"])
        return guard
