"""Closed-loop elastic-capacity drivers for both engines.

Each driver runs one policy over one trace with capacity m(t) decided
live by an :class:`~repro.autoscale.controller.AutoscaleController`:

* :func:`run_flowsim_elastic` — the engine runs at ``m_max`` with an
  (initially empty) :class:`~repro.faults.timeline.FaultTimeline`
  attached; the loop advances the clock tick by tick and translates
  controller decisions into dynamically pushed ``crash`` / ``recover``
  point actions (processor ``p`` down ⇔ capacity excludes it; processors
  leave from the top, ``m_eff`` *is* the controlled capacity).  A
  scale-down that strands running jobs pushes ``displace`` actions: the
  youngest victims are preempted, lose their progress, and re-enter the
  queue ``requeue_delay`` later — every displaced unit lands in the
  engine's requeue log, which the row checks against ``displaced_work``
  (the "zero unaccounted displaced work" contract).

* :func:`run_wsim_elastic` — the runtime gets an ``autoscale`` tick hook
  on its fault heap; each tick observes progress counters and pushes
  ``drain`` / ``recover`` worker actions.  A drain parks a worker
  *gracefully*: its partial node keeps its progress (counted as
  ``preserved_work``) and its deque hands over exactly like a crash, so
  nothing is redone and nothing is dropped.

Determinism: controller randomness derives from
``derive_seed(seed, "autoscale/<engine>/<policy>")`` and every other
input is the deterministic engine state, so the same seed yields a
byte-identical decision trace, m(t) trace, and requeue log.
"""

from __future__ import annotations

import math

from repro.autoscale.controller import AutoscaleController
from repro.autoscale.guard import AutoscaleConfig

__all__ = ["run_flowsim_elastic", "run_wsim_elastic"]


def _suffix_work(works: list[float]) -> list[float]:
    """``suffix[i] = works[i] + works[i+1] + ...`` (suffix[n] = 0)."""
    suffix = [0.0] * (len(works) + 1)
    for i in range(len(works) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + works[i]
    return suffix


def run_flowsim_elastic(
    trace,
    policy,
    aconfig: AutoscaleConfig,
    seed: int = 0,
    sim_config=None,
    max_ticks: int = 200_000,
) -> dict:
    """Run ``policy`` over ``trace`` under closed-loop elastic capacity."""
    from repro.faults.plan import FaultPlan
    from repro.flowsim.engine import FlowSimConfig, FlowStepper

    m_max = aconfig.m_max
    timeline = FaultPlan((), name="elastic").timeline(m_max)
    stepper = FlowStepper(
        m_max,
        policy,
        seed=seed,
        config=sim_config or FlowSimConfig(),
        faults=timeline,
    )
    specs = list(trace.jobs)
    stepper.add_jobs(specs)
    suffix = _suffix_work([float(s.work) for s in specs])
    total_work = suffix[0]

    controller = AutoscaleController(
        aconfig, seed=seed, name=f"flowsim/{policy.name}"
    )
    m_cur = aconfig.initial_m
    controller.bind(0.0, m_cur)
    for p in range(m_cur, m_max):
        timeline.push_action(0.0, {"kind": "crash", "proc": p})
    stepper.refresh_event_budget()

    released_prev = 0.0
    t = 0.0
    ticks = 0
    while not stepper.drained:
        ticks += 1
        if ticks > max_ticks:
            raise RuntimeError(
                f"autoscale loop exceeded {max_ticks} ticks "
                f"({stepper.n_completed}/{stepper.n_jobs} jobs done)"
            )
        t += aconfig.tick
        stepper.advance_to(t)
        if stepper.drained:
            break  # no phantom decision after the last completion
        n_released = stepper.n_jobs - stepper.n_pending
        released = total_work - suffix[n_released]
        arrived = released - released_prev
        released_prev = released
        # backlog of *released* work only — the batch-registered tail of
        # the trace must stay invisible to an online controller
        backlog = stepper.backlog_work() - suffix[n_released]
        target = controller.observe(
            t,
            arrived_work=arrived,
            backlog_work=backlog,
            n_active=stepper.n_active,
        )
        if target == m_cur:
            continue
        if target > m_cur:
            for p in range(m_cur, target):
                timeline.push_action(t, {"kind": "recover", "proc": p})
        else:
            for p in range(target, m_cur):
                timeline.push_action(t, {"kind": "crash", "proc": p})
            if aconfig.displace:
                # jobs that no longer fit on the shrunk machine are
                # preempted and requeued; youngest first (deterministic)
                running = min(stepper.n_active, m_cur)
                n_victims = max(0, running - target)
                if n_victims:
                    victims = sorted(stepper.active_ids())[-n_victims:]
                    for j in victims:
                        timeline.push_action(
                            t,
                            {
                                "kind": "displace",
                                "job_id": int(j),
                                "resubmit_after": aconfig.requeue_delay,
                            },
                        )
        m_cur = target
        stepper.refresh_event_budget()

    controller.finalize(stepper.now)
    result = stepper.result()
    finfo = result.extra.get("faults", {})
    requeues = finfo.get("requeues", [])
    displaced = float(finfo.get("displaced_work", 0.0))
    summary = controller.summary()
    return {
        "engine": "flowsim",
        "scheduler": result.scheduler,
        "mode": "elastic",
        "events": int(result.extra.get("events", 0)),
        "mean_flow": result.mean_flow,
        "makespan": result.makespan,
        "switches": result.extra.get("switches", 0),
        "preemptions": result.preemptions,
        "capacity_seconds": summary["capacity_seconds"],
        "m_final": summary["m"],
        "ticks": summary["ticks"],
        "scale_ups": summary["scale_ups"],
        "scale_downs": summary["scale_downs"],
        "displaced_work": displaced,
        "requeues": len(requeues),
        "displaced_unaccounted": displaced
        - sum(float(r["redone_work"]) for r in requeues),
        "lost_work": float(finfo.get("lost_work", 0.0)),
        "m_trace": [list(p) for p in controller.m_trace],
        "decisions": controller.decisions,
        "requeue_log": [dict(r) for r in requeues],
    }


def run_wsim_elastic(
    trace,
    scheduler,
    aconfig: AutoscaleConfig,
    seed: int = 0,
    ws_config=None,
) -> dict:
    """Run a work-stealing ``scheduler`` under closed-loop elastic capacity.

    Capacity moves by *draining* workers — the graceful scale-down: a
    parked worker's in-progress node keeps its partial execution and its
    deque hands over to the survivors, so no work is re-executed
    (``preserved_work`` counts what a crash would have destroyed).
    """
    from repro.wsim.runtime import WsConfig, WsRuntime

    m_max = aconfig.m_max
    tick_steps = max(1, int(math.ceil(aconfig.tick)))
    controller = AutoscaleController(
        aconfig, seed=seed, name=f"wsim/{scheduler.name}"
    )
    m_start = aconfig.initial_m
    controller.bind(0.0, m_start)

    rel_steps = [int(math.ceil(s.release)) for s in trace.jobs]
    works = [float(s.dag.work) for s in trace.jobs]
    state = {"m": m_start, "ptr": 0, "released": 0.0}

    def hook(rt) -> None:
        released = state["released"]
        ptr = state["ptr"]
        while ptr < len(rel_steps) and rel_steps[ptr] <= rt.step:
            released += works[ptr]
            ptr += 1
        arrived = released - state["released"]
        state["ptr"] = ptr
        state["released"] = released
        # net useful progress: executed steps minus work later destroyed
        # (drains preserve progress, so they need no correction here)
        useful = rt.counters.work_steps - rt.counters.lost_work
        backlog = max(0.0, released - useful)
        target = controller.observe(
            float(rt.step),
            arrived_work=arrived,
            backlog_work=backlog,
            n_active=len(rt.active),
        )
        cur = state["m"]
        if target > cur:
            for p in range(cur, target):
                rt.push_fault_action(rt.step, {"kind": "recover", "proc": p})
        elif target < cur:
            for p in range(target, cur):
                rt.push_fault_action(rt.step, {"kind": "drain", "proc": p})
        state["m"] = target
        rt.push_fault_action(rt.step + tick_steps, {"kind": "autoscale"})

    runtime = WsRuntime(
        trace,
        m_max,
        scheduler,
        seed=seed,
        config=ws_config or WsConfig(),
        autoscale=hook,
    )
    for p in range(m_start, m_max):
        runtime.push_fault_action(0, {"kind": "drain", "proc": p})
    runtime.push_fault_action(tick_steps, {"kind": "autoscale"})
    result = runtime.run()
    controller.finalize(float(runtime.step))

    einfo = result.extra.get("elastic", {})
    summary = controller.summary()
    return {
        "engine": "wsim",
        "scheduler": result.scheduler,
        "mode": "elastic",
        "mean_flow": result.mean_flow,
        "makespan": result.makespan,
        "switches": result.extra.get("switches", 0),
        "preemptions": result.preemptions,
        "capacity_seconds": summary["capacity_seconds"],
        "m_final": summary["m"],
        "ticks": summary["ticks"],
        "scale_ups": summary["scale_ups"],
        "scale_downs": summary["scale_downs"],
        "drains": int(einfo.get("drains", 0)),
        "preserved_work": float(einfo.get("preserved_work", 0.0)),
        "parked_steps": int(einfo.get("parked_steps", 0)),
        # drains preserve progress bit-for-bit: nothing is redone, so
        # displaced work is zero by construction at this level
        "displaced_work": 0.0,
        "displaced_unaccounted": 0.0,
        "m_trace": [list(p) for p in controller.m_trace],
        "decisions": controller.decisions,
    }
