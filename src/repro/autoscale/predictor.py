"""Short-horizon arrival prediction for the capacity controller.

:class:`ArrivalPredictor` tracks the *work* arrival rate (sim-work units
per sim-time unit) as an exponentially weighted moving average plus an
EWMA of its first difference — a rate and a slope.  The controller asks
:meth:`forecast` how much work is likely to arrive over its look-ahead
horizon and adds that to the observed backlog, so capacity starts moving
*before* a ramp fully lands instead of after.

The smoothing weight is half-life based: an observation ``h`` time units
old carries half the weight of a fresh one, independent of the tick
cadence.  All state round-trips through :meth:`state_dict` /
:meth:`from_state_dict` as plain floats, so serve-tier snapshots restore
the predictor bit-for-bit.
"""

from __future__ import annotations

__all__ = ["ArrivalPredictor"]


class ArrivalPredictor:
    """EWMA rate + slope estimator over irregularly spaced observations."""

    def __init__(self, halflife: float = 50.0) -> None:
        if not halflife > 0:
            raise ValueError("halflife must be > 0")
        self.halflife = float(halflife)
        self._rate = 0.0
        self._slope = 0.0
        self._last_t: float | None = None
        self.observations = 0

    @property
    def rate(self) -> float:
        """Smoothed work arrival rate (work per time unit)."""
        return self._rate

    @property
    def slope(self) -> float:
        """Smoothed rate of change of the arrival rate."""
        return self._slope

    def observe(self, t: float, arrived_work: float) -> None:
        """Fold in ``arrived_work`` that landed since the last observation.

        The first observation seeds the rate directly (there is no prior
        interval to difference against, so the slope stays 0).
        """
        t = float(t)
        arrived_work = float(arrived_work)
        if self._last_t is None:
            self._last_t = t
            self.observations += 1
            return
        dt = t - self._last_t
        if dt <= 0:
            return
        inst_rate = arrived_work / dt
        alpha = 1.0 - 0.5 ** (dt / self.halflife)
        prev_rate = self._rate
        self._rate += alpha * (inst_rate - self._rate)
        self._slope += alpha * ((self._rate - prev_rate) / dt - self._slope)
        self._last_t = t
        self.observations += 1

    def forecast(self, horizon: float) -> float:
        """Predicted work arriving over the next ``horizon`` time units.

        Integrates the linear rate extrapolation ``rate + slope·τ`` over
        ``[0, horizon]`` and clips at zero — a falling rate never
        predicts negative work.
        """
        if horizon <= 0:
            return 0.0
        predicted = self._rate * horizon + 0.5 * self._slope * horizon * horizon
        return max(0.0, predicted)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "halflife": self.halflife,
            "rate": self._rate,
            "slope": self._slope,
            "last_t": self._last_t,
            "observations": self.observations,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "ArrivalPredictor":
        pred = cls(halflife=float(state["halflife"]))
        pred._rate = float(state["rate"])
        pred._slope = float(state["slope"])
        pred._last_t = None if state["last_t"] is None else float(state["last_t"])
        pred.observations = int(state["observations"])
        return pred
