"""Command-line entry point: regenerate the paper's experiments.

Installed as ``drep-sim``.  Examples::

    drep-sim fig1 --distribution finance --load 0.5 --n-jobs 5000
    drep-sim fig2 --distribution bing --load 0.7
    drep-sim fig3 --m 16 --n-jobs 500
    drep-sim preemptions --n-jobs 10000 --m 16
    drep-sim stats --distribution bing
    drep-sim report --out report.md --flow-jobs 5000

Each subcommand prints the corresponding figure's series as a table
(mean flow time per scheduler over the swept parameter).  Sizes default
to laptop-friendly values; raise ``--n-jobs`` toward the paper's 100,000
(fig1/fig2) or 10,000 (fig3) for tighter estimates.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    flow_policy_factories,
    run_flow_sweep,
    run_ws_sweep,
)
from repro.analysis.tables import series_table
from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies.drep import DrepSequential
from repro.theory.preemptions import check_theorem_1_2
from repro.workloads.traces import generate_trace

__all__ = ["main"]

_DEFAULT_M_SWEEP = [1, 2, 4, 8, 16, 32, 64]


def _fig_flow(args: argparse.Namespace, mode: ParallelismMode) -> int:
    rows = run_flow_sweep(
        distribution=args.distribution,
        load=args.load,
        mode=mode,
        m_values=args.m_values,
        n_jobs=args.n_jobs,
        seed=args.seed,
        policies=flow_policy_factories(mode),
    )
    print(
        f"# {args.distribution} workload, load={args.load:g}, "
        f"{mode.value} jobs, n={args.n_jobs} (mean flow time)"
    )
    print(series_table(rows, x="m", series="scheduler", value="mean_flow"))
    return 0


def _fig3(args: argparse.Namespace) -> int:
    rows = run_ws_sweep(
        distribution=args.distribution,
        loads=args.loads,
        m=args.m,
        n_jobs=args.n_jobs,
        seed=args.seed,
    )
    print(
        f"# {args.distribution} workload on {args.m} cores, n={args.n_jobs} "
        "(work-stealing runtime, mean flow in steps)"
    )
    print(series_table(rows, x="load", series="scheduler", value="mean_flow"))
    return 0


def _preemptions(args: argparse.Namespace) -> int:
    trace = generate_trace(
        n_jobs=args.n_jobs,
        distribution=args.distribution,
        load=args.load,
        m=args.m,
        mode=ParallelismMode.SEQUENTIAL,
        seed=args.seed,
    )
    result = simulate(trace, args.m, DrepSequential(), seed=args.seed)
    budget = check_theorem_1_2(result, args.n_jobs)
    print("# Theorem 1.2 check — sequential DREP")
    for key, value in budget.summary().items():
        print(f"{key:22s} {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="drep-sim", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--distribution", default="finance", help="bing|finance|...")
        p.add_argument("--seed", type=int, default=0)

    p1 = sub.add_parser("fig1", help="sequential jobs, m-sweep (Figure 1)")
    common(p1)
    p1.add_argument("--load", type=float, default=0.5)
    p1.add_argument("--n-jobs", type=int, default=5000)
    p1.add_argument("--m-values", type=int, nargs="+", default=_DEFAULT_M_SWEEP)

    p2 = sub.add_parser("fig2", help="fully parallel jobs, m-sweep (Figure 2)")
    common(p2)
    p2.add_argument("--load", type=float, default=0.5)
    p2.add_argument("--n-jobs", type=int, default=5000)
    p2.add_argument("--m-values", type=int, nargs="+", default=_DEFAULT_M_SWEEP)

    p3 = sub.add_parser("fig3", help="work-stealing runtime, load-sweep (Figure 3)")
    common(p3)
    p3.add_argument("--m", type=int, default=16)
    p3.add_argument("--n-jobs", type=int, default=300)
    p3.add_argument("--loads", type=float, nargs="+", default=[0.5, 0.6, 0.7])

    p4 = sub.add_parser("preemptions", help="Theorem 1.2 budget check")
    common(p4)
    p4.add_argument("--m", type=int, default=16)
    p4.add_argument("--load", type=float, default=0.6)
    p4.add_argument("--n-jobs", type=int, default=10000)

    p5 = sub.add_parser("stats", help="workload distribution statistics")
    common(p5)
    p5.add_argument("--samples", type=int, default=100_000)

    p6 = sub.add_parser("report", help="full reproduction report (markdown)")
    common(p6)
    p6.add_argument("--out", default="report.md")
    p6.add_argument("--flow-jobs", type=int, default=5000)
    p6.add_argument("--ws-jobs", type=int, default=200)

    p8 = sub.add_parser(
        "figures", help="render saved results/*.json into SVG line charts"
    )
    p8.add_argument("--results-dir", default="results")

    p7 = sub.add_parser(
        "hetero", help="related-machines comparison (the paper's open problem)"
    )
    common(p7)
    p7.add_argument("--n-jobs", type=int, default=4000)
    p7.add_argument(
        "--machine",
        default="2x4+6x1",
        help="speed spec: 'NxS+NxS+...' e.g. '2x4+6x1' or 'geometric:8:2'",
    )

    args = parser.parse_args(argv)
    if args.command == "fig1":
        return _fig_flow(args, ParallelismMode.SEQUENTIAL)
    if args.command == "fig2":
        return _fig_flow(args, ParallelismMode.FULLY_PARALLEL)
    if args.command == "fig3":
        return _fig3(args)
    if args.command == "preemptions":
        return _preemptions(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "report":
        return _report(args)
    if args.command == "hetero":
        return _hetero(args)
    if args.command == "figures":
        return _figures(args)
    return 2  # pragma: no cover


def _figures(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.charts import figure_svg_from_rows, save_figure_svg

    results = Path(args.results_dir)
    rendered = 0
    for path in sorted(results.glob("fig*.json")):
        rows = json.loads(path.read_text())
        tag = path.stem
        x = "m" if tag.startswith(("fig1", "fig2")) else "load"
        svg = figure_svg_from_rows(
            rows, x=x, title=tag, log_y=tag.startswith(("fig1", "fig2"))
        )
        save_figure_svg(results / f"{tag}.svg", svg)
        rendered += 1
    print(f"rendered {rendered} figures into {results}/")
    return 0 if rendered else 1


def _parse_machine(spec: str):
    import numpy as np

    from repro.hetero.machine import Machine, geometric_machine

    if spec.startswith("geometric:"):
        _, m, ratio = spec.split(":")
        return geometric_machine(int(m), ratio=float(ratio))
    speeds = []
    for part in spec.split("+"):
        count, speed = part.split("x")
        speeds.extend([float(speed)] * int(count))
    return Machine(np.array(speeds))


def _hetero(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.hetero import DrepRelated, FifoRelated, SrptRelated, simulate_hetero

    machine = _parse_machine(args.machine)
    eq_m = max(1, round(machine.total_speed))
    trace = generate_trace(
        args.n_jobs,
        args.distribution,
        0.6,
        eq_m,
        seed=args.seed,
        scale_work_with_m=False,
    )
    rows = []
    for policy in (SrptRelated(), FifoRelated(), DrepRelated(), DrepRelated(reseat=True)):
        r = simulate_hetero(trace, machine, policy, seed=args.seed)
        rows.append(
            {
                "scheduler": r.scheduler,
                "mean_flow": r.mean_flow,
                "p99_flow": r.percentile(99),
                "preemptions": r.preemptions,
            }
        )
    print(f"# machine {machine.describe()} — {args.distribution}, {args.n_jobs} jobs")
    print(format_table(rows))
    return 0


def _stats(args: argparse.Namespace) -> int:
    from repro.workloads.distributions import distribution_by_name
    from repro.workloads.stats import distribution_stats

    dist = distribution_by_name(args.distribution)
    stats = distribution_stats(dist, n=args.samples, seed=args.seed)
    print(f"# {args.distribution} work distribution ({args.samples} samples)")
    for key, value in stats.summary().items():
        print(f"{key:12s} {value:.6g}" if isinstance(value, float) else f"{key:12s} {value}")
    return 0


def _report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportConfig, write_report

    config = ReportConfig(
        flow_jobs=args.flow_jobs, ws_jobs=args.ws_jobs, seed=args.seed
    )
    path = write_report(args.out, config)
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
