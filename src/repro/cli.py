"""Command-line entry point: regenerate the paper's experiments.

Installed as ``drep-sim``.  Examples::

    drep-sim fig1 --distribution finance --load 0.5 --n-jobs 5000
    drep-sim fig2 --distribution bing --load 0.7
    drep-sim fig3 --m 16 --n-jobs 500
    drep-sim preemptions --n-jobs 10000 --m 16
    drep-sim stats --distribution bing
    drep-sim report --out report.md --flow-jobs 5000
    drep-sim serve --m 8 --policy drep --port 8071
    drep-sim loadgen --port 8071 --n-jobs 1000 --load 0.7 --verify
    drep-sim bench --pr 2            # writes BENCH_2.json
    drep-sim bench --scale 0.05      # CI smoke sizing, print only

Each subcommand prints the corresponding figure's series as a table
(mean flow time per scheduler over the swept parameter).  Sizes default
to laptop-friendly values; raise ``--n-jobs`` toward the paper's 100,000
(fig1/fig2) or 10,000 (fig3) for tighter estimates.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    flow_policy_factories,
    run_flow_sweep,
)
from repro.analysis.tables import series_table
from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies.drep import DrepSequential
from repro.theory.preemptions import check_theorem_1_2
from repro.workloads.traces import generate_trace

__all__ = ["main"]

_DEFAULT_M_SWEEP = [1, 2, 4, 8, 16, 32, 64]


def _fig_flow(args: argparse.Namespace, mode: ParallelismMode) -> int:
    workers = getattr(args, "workers", 1)
    if workers == 0:
        workers = None  # run_grid: all cores
    if workers is None or workers == "auto" or workers > 1:
        # shard the (m × policy) grid over a process pool; rows are
        # byte-identical to the serial sweep (see repro.analysis.pool)
        from repro.analysis.pool import flow_sweep_cells, run_flow_grid

        cells = flow_sweep_cells(
            distribution=args.distribution,
            load=args.load,
            mode=mode,
            m_values=args.m_values,
            n_jobs=args.n_jobs,
            seed=args.seed,
        )
        rows = run_flow_grid(cells, workers=workers)
    else:
        rows = run_flow_sweep(
            distribution=args.distribution,
            load=args.load,
            mode=mode,
            m_values=args.m_values,
            n_jobs=args.n_jobs,
            seed=args.seed,
            policies=flow_policy_factories(mode),
        )
    print(
        f"# {args.distribution} workload, load={args.load:g}, "
        f"{mode.value} jobs, n={args.n_jobs} (mean flow time)"
    )
    print(series_table(rows, x="m", series="scheduler", value="mean_flow"))
    return 0


def _fig3(args: argparse.Namespace) -> int:
    # always the grid path: workers=1 (and "auto" on a 1-core box) runs
    # inline, and grid rows are byte-identical to the serial
    # run_ws_sweep rows for every worker count (repro.analysis.pool)
    from repro.analysis.pool import run_ws_grid, ws_sweep_cells

    cells = ws_sweep_cells(
        distribution=args.distribution,
        loads=args.loads,
        m_values=[args.m],
        n_jobs=args.n_jobs,
        seed=args.seed,
    )
    rows = run_ws_grid(cells, workers=args.workers)
    print(
        f"# {args.distribution} workload on {args.m} cores, n={args.n_jobs} "
        "(work-stealing runtime, mean flow in steps)"
    )
    print(series_table(rows, x="load", series="scheduler", value="mean_flow"))
    return 0


def _preemptions(args: argparse.Namespace) -> int:
    trace = generate_trace(
        n_jobs=args.n_jobs,
        distribution=args.distribution,
        load=args.load,
        m=args.m,
        mode=ParallelismMode.SEQUENTIAL,
        seed=args.seed,
    )
    result = simulate(trace, args.m, DrepSequential(), seed=args.seed)
    budget = check_theorem_1_2(result, args.n_jobs)
    print("# Theorem 1.2 check — sequential DREP")
    for key, value in budget.summary().items():
        print(f"{key:22s} {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="drep-sim", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--distribution", default="finance", help="bing|finance|...")
        p.add_argument("--seed", type=int, default=0)

    def workers_value(value: str):
        # "auto" = available CPUs, serial on a 1-core box (see
        # repro.analysis.pool.resolve_workers); 0 = all cores
        if value == "auto":
            return value
        return int(value)

    def workers_arg(p: argparse.ArgumentParser, default=1) -> None:
        p.add_argument(
            "--workers",
            type=workers_value,
            default=default,
            help="process-pool size for the experiment grid "
            "(0 = all cores, 'auto' = available cores with serial "
            "fallback on 1; output is identical for any value)",
        )

    p1 = sub.add_parser("fig1", help="sequential jobs, m-sweep (Figure 1)")
    common(p1)
    p1.add_argument("--load", type=float, default=0.5)
    p1.add_argument("--n-jobs", type=int, default=5000)
    p1.add_argument("--m-values", type=int, nargs="+", default=_DEFAULT_M_SWEEP)
    workers_arg(p1)

    p2 = sub.add_parser("fig2", help="fully parallel jobs, m-sweep (Figure 2)")
    common(p2)
    p2.add_argument("--load", type=float, default=0.5)
    p2.add_argument("--n-jobs", type=int, default=5000)
    p2.add_argument("--m-values", type=int, nargs="+", default=_DEFAULT_M_SWEEP)
    workers_arg(p2)

    p3 = sub.add_parser("fig3", help="work-stealing runtime, load-sweep (Figure 3)")
    common(p3)
    p3.add_argument("--m", type=int, default=16)
    p3.add_argument("--n-jobs", type=int, default=300)
    p3.add_argument("--loads", type=float, nargs="+", default=[0.5, 0.6, 0.7])
    workers_arg(p3, default="auto")

    p4 = sub.add_parser("preemptions", help="Theorem 1.2 budget check")
    common(p4)
    p4.add_argument("--m", type=int, default=16)
    p4.add_argument("--load", type=float, default=0.6)
    p4.add_argument("--n-jobs", type=int, default=10000)

    p5 = sub.add_parser("stats", help="workload distribution statistics")
    common(p5)
    p5.add_argument("--samples", type=int, default=100_000)

    p6 = sub.add_parser("report", help="full reproduction report (markdown)")
    common(p6)
    p6.add_argument("--out", default="report.md")
    p6.add_argument("--flow-jobs", type=int, default=5000)
    p6.add_argument("--ws-jobs", type=int, default=200)

    p8 = sub.add_parser(
        "figures", help="render saved results/*.json into SVG line charts"
    )
    p8.add_argument("--results-dir", default="results")

    p9 = sub.add_parser(
        "serve", help="run a policy as a live online scheduling server"
    )
    p9.add_argument("--m", type=int, default=8)
    p9.add_argument("--policy", default="drep", help="policy key, e.g. drep|srpt|rr")
    p9.add_argument("--seed", type=int, default=0)
    p9.add_argument("--host", default="127.0.0.1")
    p9.add_argument("--port", type=int, default=8071)
    p9.add_argument(
        "--clock",
        choices=["trace", "wall"],
        default="trace",
        help="trace = virtual time driven by release stamps; wall = real time",
    )
    p9.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="sim-time units per wall second (wall clock only)",
    )
    p9.add_argument("--window", type=float, default=1000.0, help="metrics window (sim time)")
    p9.add_argument("--speed", type=float, default=1.0, help="resource augmentation")
    p9.add_argument("--max-active", type=int, default=None, help="admission: queue cap")
    p9.add_argument(
        "--max-backlog", type=float, default=None, help="admission: backlog cap (drain time)"
    )
    p9.add_argument(
        "--max-load", type=float, default=None, help="admission: estimated-load ceiling"
    )
    p9.add_argument("--snapshot-path", default=None, help="default snapshot target")
    p9.add_argument(
        "--restore", default=None, help="boot from a snapshot file instead of empty"
    )
    p9.add_argument(
        "--journal-dir",
        default=None,
        help="write-ahead journal directory; restarts recover from it",
    )
    p9.add_argument(
        "--snapshot-every",
        type=int,
        default=256,
        help="auto-checkpoint the journal every N mutating ops",
    )
    p9.add_argument(
        "--fsync", action="store_true", help="fsync each journal append"
    )
    p9.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="shed requests when this many are already waiting",
    )
    p9.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="refuse requests stuck behind the engine for this many seconds",
    )
    p9.add_argument(
        "--max-line-bytes",
        type=int,
        default=1 << 20,
        help="reject (and resync past) request lines longer than this",
    )
    p9.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run a consistent-hash router over N journaled engine-shard "
        "subprocesses instead of a single engine",
    )
    p9.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring",
    )
    p9.add_argument(
        "--multi-tenant",
        action="store_true",
        help="tenant-aware admission: submits may carry a tenant label, "
        "DRF throttling applies when soft caps trip",
    )
    p9.add_argument(
        "--credit-rate",
        type=float,
        default=None,
        help="per-tenant credit accrual as a fraction of fleet capacity "
        "(enables the credit check; implies --multi-tenant)",
    )
    p9.add_argument(
        "--credit-burst",
        type=float,
        default=20.0,
        help="seconds of accrual a tenant may bank while idle",
    )
    p9.add_argument(
        "--credit-borrow",
        type=float,
        default=0.0,
        help="seconds of accrual a tenant may borrow before being shed",
    )
    p9.add_argument(
        "--drf-headroom",
        type=float,
        default=1.2,
        help="slack multiplier on the DRF entitlement before a tenant "
        "counts as dominant",
    )
    p9.add_argument(
        "--autoscale",
        action="store_true",
        help="closed-loop elastic capacity: a seeded controller parks and "
        "revives processors between [--autoscale-m-min, --m]",
    )
    p9.add_argument(
        "--autoscale-m-min", type=int, default=1, help="capacity floor"
    )
    p9.add_argument(
        "--autoscale-tick",
        type=float,
        default=10.0,
        help="sim-time between controller decisions",
    )
    p9.add_argument(
        "--autoscale-up",
        type=float,
        default=20.0,
        help="scale-up backlog watermark (drain-time units)",
    )
    p9.add_argument(
        "--autoscale-down",
        type=float,
        default=5.0,
        help="scale-down backlog watermark (must be < --autoscale-up)",
    )
    p9.add_argument(
        "--autoscale-cooldown-up", type=float, default=10.0,
        help="sim-time after any change before the next scale-up",
    )
    p9.add_argument(
        "--autoscale-cooldown-down", type=float, default=30.0,
        help="sim-time after any change before the next scale-down",
    )
    p9.add_argument(
        "--autoscale-no-displace",
        action="store_true",
        help="let stranded jobs finish on the shrunken machine instead of "
        "preempting and requeueing them",
    )
    p9.add_argument(
        "--autoscale-requeue-delay",
        type=float,
        default=1.0,
        help="sim-time a displaced job waits before re-entering the queue",
    )
    p9.add_argument(
        "--supervise",
        action="store_true",
        help="with --shards: run a self-healing heartbeat loop that "
        "restarts dead shard subprocesses (journal replay on revival)",
    )
    p9.add_argument(
        "--supervise-interval",
        type=float,
        default=1.0,
        help="wall seconds between supervisor heartbeat sweeps",
    )

    p10 = sub.add_parser(
        "loadgen", help="replay a generated trace against a running server"
    )
    common(p10)
    p10.add_argument("--host", default="127.0.0.1")
    p10.add_argument("--port", type=int, default=8071)
    p10.add_argument("--n-jobs", type=int, default=1000)
    p10.add_argument("--load", type=float, default=0.7)
    p10.add_argument("--m", type=int, default=None, help="trace machine size (default: ask server)")
    p10.add_argument(
        "--rate", type=float, default=1.0, help="arrival-rate multiplier (2 = double load)"
    )
    p10.add_argument(
        "--pace", type=float, default=None, help="sim-time units per wall second (default: flat out)"
    )
    p10.add_argument(
        "--trace-file", default=None,
        help="replay a saved Trace JSON — or a .swf archive log, streamed "
        "lazily — instead of generating",
    )
    p10.add_argument("--no-drain", action="store_true", help="leave the server running full")
    p10.add_argument(
        "--verify",
        action="store_true",
        help="cross-check drained flow times against offline flowsim.simulate",
    )
    p10.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline in wall seconds",
    )
    p10.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retry budget per request (backoff with seeded jitter)",
    )
    p10.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds (doubles per attempt)",
    )
    p10.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="label jobs with K tenant ids drawn from a seeded Zipf "
        "distribution (t0 hottest)",
    )
    p10.add_argument(
        "--tenant-skew",
        default="zipf:1.0",
        help="tenant skew 'zipf:a' — a=0 uniform, larger = hotter t0",
    )

    p11 = sub.add_parser(
        "bench",
        help="throughput suite; optionally writes the BENCH_<pr>.json trajectory",
    )
    p11.add_argument(
        "--scale",
        type=float,
        default=None,
        help="job-count multiplier (default: $REPRO_BENCH_SCALE or 1.0)",
    )
    p11.add_argument("--repeats", type=int, default=3)
    p11.add_argument(
        "--pr",
        type=int,
        default=None,
        help="perf-trajectory entry number; writes BENCH_<pr>.json",
    )
    p11.add_argument(
        "--out", default=None, help="explicit output path (overrides --pr naming)"
    )
    p11.add_argument(
        "--cases", nargs="+", default=None, help="subset of bench case names"
    )
    p11.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="compare two trajectory entries (PR numbers or BENCH_*.json "
        "paths) instead of running the suite; prints per-case speedups",
    )
    p11.add_argument(
        "--require-drift",
        action="store_true",
        help="with --compare: fail unless the NEW entry carries the "
        "calibration case (machine-drift normalization)",
    )
    p11.add_argument(
        "--profile",
        action="store_true",
        help="add one untimed cProfile pass per case; writes "
        "<case>.cprofile.txt top-20 cumulative listings next to the "
        "BENCH json (or into ./bench_profiles when not writing one)",
    )

    p12 = sub.add_parser(
        "faults",
        help="resilience experiment: policies under crash traces vs baseline",
    )
    common(p12)
    p12.add_argument("--m", type=int, default=8)
    p12.add_argument("--n-jobs", type=int, default=400)
    p12.add_argument("--load", type=float, default=0.7)
    p12.add_argument(
        "--policies",
        nargs="+",
        default=["drep", "srpt", "rr"],
        help="flowsim policy keys to compare",
    )
    p12.add_argument(
        "--plans",
        nargs="+",
        default=["rolling", "half-down", "random"],
        help="named crash plans (see repro.faults.named_fault_plans)",
    )
    p12.add_argument(
        "--plan-file",
        nargs="+",
        default=None,
        help="run user-supplied fault-plan JSON files instead of named "
        "plans (validated against --m before anything runs)",
    )
    p12.add_argument(
        "--out", default=None, help="write the resilience/1 JSON report here"
    )
    workers_arg(p12)

    p13 = sub.add_parser(
        "autoscale",
        help="elastic-capacity experiment: DREP vs baselines under the "
        "closed-loop controller, cost-vs-flow Pareto report",
    )
    common(p13)
    p13.add_argument("--m-min", type=int, default=1, help="capacity floor")
    p13.add_argument("--m-max", type=int, default=8, help="capacity ceiling")
    p13.add_argument("--n-jobs", type=int, default=400)
    p13.add_argument("--load", type=float, default=0.7)
    p13.add_argument(
        "--tick", type=float, default=10.0, help="controller decision period"
    )
    p13.add_argument(
        "--up-watermark", type=float, default=20.0,
        help="scale-up backlog watermark (drain-time units)",
    )
    p13.add_argument(
        "--down-watermark", type=float, default=5.0,
        help="scale-down backlog watermark (must be < --up-watermark)",
    )
    p13.add_argument("--cooldown-up", type=float, default=10.0)
    p13.add_argument("--cooldown-down", type=float, default=30.0)
    p13.add_argument(
        "--requeue-delay", type=float, default=1.0,
        help="delay before a displaced job re-enters the queue",
    )
    p13.add_argument(
        "--no-displace",
        action="store_true",
        help="scale-downs never preempt running jobs",
    )
    p13.add_argument(
        "--policies",
        nargs="+",
        default=["drep", "srpt", "rr"],
        help="flowsim policy keys to compare",
    )
    p13.add_argument(
        "--ws-schedulers",
        nargs="+",
        default=["DREP", "SWF", "steal-first"],
        help="work-stealing schedulers to compare ('none' skips the "
        "wsim sweep)",
    )
    p13.add_argument(
        "--ws-jobs", type=int, default=None,
        help="wsim trace size (default: n-jobs // 4, floor 40)",
    )
    p13.add_argument(
        "--out", default=None, help="write the autoscale/1 JSON report here"
    )
    workers_arg(p13)

    p7 = sub.add_parser(
        "hetero", help="related-machines comparison (the paper's open problem)"
    )
    common(p7)
    p7.add_argument("--n-jobs", type=int, default=4000)
    p7.add_argument(
        "--machine",
        default="2x4+6x1",
        help="speed spec: 'NxS+NxS+...' e.g. '2x4+6x1' or 'geometric:8:2'",
    )

    p14 = sub.add_parser(
        "stream",
        help="bounded-RAM streamed run: SWF trace replay or lazy generator",
    )
    common(p14)
    p14.add_argument(
        "--trace-file",
        default=None,
        help="SWF trace file to replay (Standard Workload Format, the HPC "
        "archive format — not the SWF policy; see docs/workloads.md)",
    )
    p14.add_argument("--m", type=int, default=8)
    p14.add_argument("--n-jobs", type=int, default=100_000)
    p14.add_argument("--load", type=float, default=0.7)
    p14.add_argument(
        "--engine", choices=("flowsim", "wsim"), default="flowsim"
    )
    p14.add_argument(
        "--policy", default="srpt", help="flowsim policy key (engine=flowsim)"
    )
    p14.add_argument(
        "--scheduler", default="drep", help="wsim scheduler key (engine=wsim)"
    )
    p14.add_argument(
        "--arrival-process", choices=("poisson", "mmpp"), default="poisson"
    )
    p14.add_argument(
        "--time-scale", type=float, default=1.0,
        help="SWF: multiply all times (1s wall = this many sim units)",
    )
    p14.add_argument(
        "--calibrate-load", type=float, default=None,
        help="SWF: re-scale arrivals to offer this utilization on --m",
    )
    p14.add_argument(
        "--peak-window", type=float, default=None,
        help="SWF: replay only the busiest window of this length",
    )
    p14.add_argument(
        "--parallelism", type=int, default=8,
        help="wsim: DAG parallelism attached to streamed jobs",
    )
    p14.add_argument(
        "--keep-flow-times", action="store_true",
        help="retain per-job flow times (O(n) memory — defeats streaming)",
    )
    p14.add_argument(
        "--chunk", type=int, default=None,
        help="flowsim: arrivals pulled per ingest batch",
    )
    p14.add_argument(
        "--slo", type=float, default=None,
        help="flow-time SLO threshold: report the attained fraction "
        "(jobs with flow <= this) in the table and JSON",
    )
    p14.add_argument(
        "--json", default=None, help="write the run summary JSON here"
    )

    args = parser.parse_args(argv)
    if args.command == "fig1":
        return _fig_flow(args, ParallelismMode.SEQUENTIAL)
    if args.command == "fig2":
        return _fig_flow(args, ParallelismMode.FULLY_PARALLEL)
    if args.command == "fig3":
        return _fig3(args)
    if args.command == "preemptions":
        return _preemptions(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "report":
        return _report(args)
    if args.command == "hetero":
        return _hetero(args)
    if args.command == "figures":
        return _figures(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "faults":
        return _faults(args)
    if args.command == "autoscale":
        return _autoscale(args)
    if args.command == "stream":
        return _stream(args)
    return 2  # pragma: no cover


def _load_plan_files(paths: list[str], m: int):
    """Parse and validate user fault-plan JSON at the CLI boundary.

    Returns ``{name: FaultPlan}`` or raises :class:`SystemExit` with a
    structured one-line message — a malformed plan file must never reach
    the engine (or the user) as a traceback.
    """
    import json as _json

    from repro.faults.plan import FaultPlan

    plans = {}
    for path in paths:
        try:
            text = open(path, encoding="utf-8").read()
        except OSError as exc:
            raise SystemExit(f"faults: cannot read plan file {path}: {exc}")
        try:
            plan = FaultPlan.from_json(text)
        except (_json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise SystemExit(
                f"faults: invalid plan in {path}: {exc} "
                "(expected {\"name\": ..., \"events\": [{\"kind\": ..., "
                "\"t\": ..., ...}]})"
            )
        try:
            plan.validate_for(m)
        except ValueError as exc:
            raise SystemExit(f"faults: plan {plan.name!r} in {path}: {exc}")
        if plan.name in plans:
            raise SystemExit(
                f"faults: duplicate plan name {plan.name!r} (in {path})"
            )
        plans[plan.name] = plan
    return plans


def _faults(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.faults.experiment import (
        resilience_report,
        run_resilience_experiment,
        write_resilience_report,
    )

    plans = tuple(args.plans)
    if args.plan_file:
        plans = _load_plan_files(args.plan_file, args.m)
    rows = run_resilience_experiment(
        m=args.m,
        n_jobs=args.n_jobs,
        distribution=args.distribution,
        load=args.load,
        policies=tuple(args.policies),
        plans=plans,
        seed=args.seed,
        workers=args.workers or None,
    )
    print(
        f"# resilience — {args.distribution}, load={args.load:g}, "
        f"m={args.m}, n={args.n_jobs} (degradation = faulted / baseline)"
    )
    print(
        format_table(
            [
                {
                    "policy": r["policy"],
                    "plan": r["plan"],
                    "mean_flow": r["mean_flow"],
                    "flow_degradation": r["flow_degradation"],
                    "switch_degradation": r["switch_degradation"],
                    "faults_applied": r["faults_applied"],
                }
                for r in rows
            ]
        )
    )
    if args.out:
        report = resilience_report(
            rows,
            m=args.m,
            n_jobs=args.n_jobs,
            distribution=args.distribution,
            load=args.load,
            seed=args.seed,
        )
        path = write_resilience_report(report, args.out)
        print(f"wrote {path}")
    return 0


def _autoscale(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.autoscale import (
        AutoscaleConfig,
        autoscale_report,
        run_autoscale_experiment,
        write_autoscale_report,
    )

    try:
        aconfig = AutoscaleConfig(
            m_min=args.m_min,
            m_max=args.m_max,
            tick=args.tick,
            up_watermark=args.up_watermark,
            down_watermark=args.down_watermark,
            cooldown_up=args.cooldown_up,
            cooldown_down=args.cooldown_down,
            requeue_delay=args.requeue_delay,
            displace=not args.no_displace,
        )
    except ValueError as exc:
        print(f"autoscale: {exc}", file=sys.stderr)
        return 2
    ws_schedulers = tuple(args.ws_schedulers)
    if ws_schedulers == ("none",):
        ws_schedulers = ()
    rows = run_autoscale_experiment(
        aconfig,
        n_jobs=args.n_jobs,
        distribution=args.distribution,
        load=args.load,
        flow_policies=tuple(args.policies),
        ws_schedulers=ws_schedulers,
        ws_jobs=args.ws_jobs,
        seed=args.seed,
        workers=args.workers or None,
    )
    report = autoscale_report(
        rows,
        aconfig,
        n_jobs=args.n_jobs,
        distribution=args.distribution,
        load=args.load,
        seed=args.seed,
    )
    print(
        f"# autoscale — {args.distribution}, load={args.load:g}, "
        f"m∈[{args.m_min},{args.m_max}], n={args.n_jobs} "
        "(elastic vs fixed full capacity)"
    )
    print(
        format_table(
            [
                {
                    "engine": r["engine"],
                    "policy": r["policy"],
                    "mode": r["mode"],
                    "mean_flow": r["mean_flow"],
                    "capacity_s": r["capacity_seconds"],
                    "switches": r["switches"],
                    "ups": r["scale_ups"],
                    "downs": r["scale_downs"],
                    "displaced": r.get("displaced_work", 0.0),
                }
                for r in rows
            ]
        )
    )
    print("# Pareto (elastic / fixed):")
    for engine, entries in report["summary"]["pareto"].items():
        for policy, e in entries.items():
            if "flow_ratio" in e:
                print(
                    f"{engine:8s} {policy:12s} "
                    f"flow x{e['flow_ratio']:.3f}  "
                    f"capacity x{e['capacity_ratio']:.3f}  "
                    f"switches x{e['switch_ratio']:.3f}"
                )
    unacc = report["summary"]["displaced_unaccounted"]
    print(f"# displaced work unaccounted: {unacc:g}")
    if args.out:
        path = write_autoscale_report(report, args.out)
        print(f"wrote {path}")
    return 0 if unacc == 0.0 else 1


def _load_bench_entry(ref: str) -> dict:
    """Resolve ``--compare`` operand: a path, or a PR number in the trajectory."""
    import json
    from pathlib import Path

    from repro.perf import load_trajectory

    path = Path(ref)
    if path.suffix == ".json" or path.exists():
        return json.loads(path.read_text())
    try:
        pr = int(ref)
    except ValueError:
        raise SystemExit(f"bench --compare: {ref!r} is neither a file nor a PR number")
    entries = {e["pr"]: e for e in load_trajectory()}
    if pr not in entries:
        raise SystemExit(
            f"bench --compare: no BENCH_{pr}.json in trajectory "
            f"(have PRs {sorted(entries)})"
        )
    return entries[pr]


def _bench_compare(old_ref: str, new_ref: str, require_drift: bool = False) -> int:
    """Print per-case speedup ratios between two trajectory entries."""
    from repro.perf import CALIBRATION_CASE, drift_factor

    old, new = _load_bench_entry(old_ref), _load_bench_entry(new_ref)
    ob, nb = old.get("benches", {}), new.get("benches", {})
    if require_drift and CALIBRATION_CASE not in nb:
        # the NEW entry must carry the calibration case so future
        # comparisons can normalize machine drift; the OLD side may
        # legitimately predate it
        print(
            f"bench --compare: --require-drift set but {new_ref!r} has no "
            f"'{CALIBRATION_CASE}' case — its speedups can never be "
            "drift-normalized",
            file=sys.stderr,
        )
        return 1
    shared = [name for name in nb if name in ob]
    if not shared:
        print("bench --compare: the two entries share no case names", file=sys.stderr)
        return 1
    drift = drift_factor(old, new)
    print(
        f"# bench compare — PR {old.get('pr', '?')} -> PR {new.get('pr', '?')} "
        f"(scale {old.get('scale', '?')} -> {new.get('scale', '?')})"
    )
    if drift is not None:
        print(
            f"# machine drift (calibration case): {drift:.3f}x "
            f"{'slower' if drift > 1 else 'faster'} — 'norm' = speedup x drift"
        )
    else:
        print(
            "# no calibration case in both entries; speedups are raw "
            "(machine drift not normalized out)"
        )
    def _mem_mb(row: dict) -> "float | None":
        perf = row.get("perf") or {}
        v = perf.get("peak_rss_mb")
        return float(v) if v else None

    header = f"{'case':18s} {'old wall_s':>10s} {'new wall_s':>10s} {'speedup':>8s}"
    if drift is not None:
        header += f" {'norm':>8s}"
    header += f" {'old MB':>7s} {'new MB':>7s}"
    print(header + "  events")
    status = 0
    for name in shared:
        o, n = ob[name], nb[name]
        ratio = o["wall_s"] / n["wall_s"] if n["wall_s"] > 0 else float("inf")
        note = ""
        if o.get("events") != n.get("events"):
            # frozen workloads: differing event counts mean the comparison
            # is across a semantic change, not a perf delta
            note = f"  EVENTS CHANGED {o.get('events')} -> {n.get('events')}"
            status = 1
        line = (
            f"{name:18s} {o['wall_s']:10.4f} {n['wall_s']:10.4f} "
            f"{ratio:7.2f}x"
        )
        if drift is not None:
            line += f" {ratio * drift:7.2f}x"
        o_mem, n_mem = _mem_mb(o), _mem_mb(n)
        line += f" {o_mem:7.0f}" if o_mem is not None else f" {'-':>7s}"
        line += f" {n_mem:7.0f}" if n_mem is not None else f" {'-':>7s}"
        print(f"{line}  {n.get('events')}{note}")
    # incremental-kernel evidence: structure counters and fitted scaling
    # exponents, where a row recorded them (PR 10's order/calendar core)
    inc_keys = ("order_ops", "calendar_pops", "calendar_invalidations")
    for name in sorted(nb):
        perf = nb[name].get("perf") or {}
        counters = {k: perf[k] for k in inc_keys if k in perf}
        exponents = {
            k: perf[k] for k in sorted(perf) if k.startswith("exponent_")
        }
        if counters or exponents:
            parts = [f"{k}={v}" for k, v in counters.items()]
            parts += [
                f"{k.removeprefix('exponent_')}^{v}" for k, v in exponents.items()
            ]
            print(f"# {name}: {' '.join(parts)}")
    only_old = sorted(set(ob) - set(nb))
    only_new = sorted(set(nb) - set(ob))
    if only_old:
        print(f"only in old: {', '.join(only_old)}")
    if only_new:
        print(f"only in new: {', '.join(only_new)}")
    return status


def _bench(args: argparse.Namespace) -> int:
    import os

    from repro.perf import (
        BENCH_CASES,
        run_bench_suite,
        trajectory_entry,
        write_trajectory,
    )

    if args.compare is not None:
        return _bench_compare(*args.compare, require_drift=args.require_drift)
    scale = args.scale
    if scale is None:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    cases = BENCH_CASES
    if args.cases:
        by_name = {c.name: c for c in BENCH_CASES}
        unknown = sorted(set(args.cases) - set(by_name))
        if unknown:
            print(
                f"bench: unknown case(s) {', '.join(unknown)}; "
                f"available: {', '.join(by_name)}",
                file=sys.stderr,
            )
            return 2
        cases = tuple(by_name[name] for name in args.cases)
    print(f"# drep-sim bench — scale={scale:g}, repeats={args.repeats}")
    profile_dir = None
    if args.profile:
        from pathlib import Path

        out = args.out or (f"BENCH_{args.pr}.json" if args.pr is not None else None)
        profile_dir = str(Path(out).resolve().parent) if out else "bench_profiles"
    rows = run_bench_suite(
        scale=scale, repeats=args.repeats, cases=cases, progress=print,
        profile_dir=profile_dir,
    )
    if args.out is not None or args.pr is not None:
        entry = trajectory_entry(
            rows, pr=args.pr if args.pr is not None else 0,
            scale=scale, repeats=args.repeats,
        )
        path = write_trajectory(args.out or f"BENCH_{args.pr}.json", entry)
        print(f"wrote {path}")
    return 0


def _stream(args: argparse.Namespace) -> int:
    """Bounded-RAM streamed run: SWF replay or lazy synthetic generator."""
    import json as _json
    from pathlib import Path

    from repro.analysis.report import stream_report
    from repro.workloads.stream import (
        attach_dags_stream,
        calibrate_load,
        generate_stream,
        peak_window,
    )
    from repro.workloads.swf import SwfParseError, swf_stream

    def build_stream():
        if args.trace_file is not None:
            factory = lambda: swf_stream(  # noqa: E731
                args.trace_file, time_scale=args.time_scale
            )
            if args.peak_window is not None:
                inner = factory
                factory = lambda: peak_window(inner, args.peak_window)  # noqa: E731
            if args.calibrate_load is not None:
                outer = factory
                factory = lambda: calibrate_load(  # noqa: E731
                    outer, args.calibrate_load, args.m
                )
            return factory()
        if (
            args.calibrate_load is not None
            or args.peak_window is not None
            or args.time_scale != 1.0
        ):
            raise SystemExit(
                "stream: --time-scale/--calibrate-load/--peak-window are "
                "SWF replay options; they need --trace-file"
            )
        return generate_stream(
            args.n_jobs,
            args.distribution,
            args.load,
            args.m,
            seed=args.seed,
            arrival_process=args.arrival_process,
        )

    try:
        stream = build_stream()
        label = getattr(stream, "name", "stream")
        # a pre-built accumulator carries the SLO threshold into either
        # engine; the seed derivation matches the engines' default so
        # the reservoir quantile sample is unchanged by --slo
        slo_metrics = None
        if args.slo is not None:
            from repro.core.metrics import StreamingMetrics
            from repro.core.rng import derive_seed

            slo_metrics = StreamingMetrics(
                keep_flow_times=args.keep_flow_times,
                seed=derive_seed(args.seed, "stream/metrics"),
                slo_threshold=args.slo,
            )
        if args.engine == "wsim":
            from repro.wsim import simulate_ws_stream, ws_scheduler_by_name

            jobs = attach_dags_stream(
                stream, parallelism=args.parallelism, seed=args.seed
            )
            result = simulate_ws_stream(
                jobs,
                args.m,
                ws_scheduler_by_name(args.scheduler),
                seed=args.seed,
                keep_flow_times=args.keep_flow_times,
                metrics=slo_metrics,
            )
        else:
            from repro.flowsim import policy_by_name, simulate_stream

            kwargs = {}
            if args.chunk:
                kwargs["ingest_chunk"] = args.chunk
            result = simulate_stream(
                stream,
                args.m,
                policy_by_name(args.policy),
                seed=args.seed,
                keep_flow_times=args.keep_flow_times,
                metrics=slo_metrics,
                **kwargs,
            )
    except SwfParseError as exc:
        print(f"stream: {exc}", file=sys.stderr)
        return 1
    except (OSError, KeyError, ValueError) as exc:
        # CLI boundary: unknown policy/scheduler keys, unreadable trace
        # files and contract violations surface as one-liners, not
        # tracebacks
        print(f"stream: {exc}", file=sys.stderr)
        return 1
    summary = result.summary()
    print(
        f"# drep-sim stream — {label}, engine={args.engine}, "
        f"m={args.m}, seed={args.seed}"
    )
    print(stream_report({label: summary}, title="streamed run"))
    if args.json is not None:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(summary, indent=2, default=str) + "\n")
        print(f"wrote {path}")
    return 0


def _figures(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.charts import figure_svg_from_rows, save_figure_svg

    results = Path(args.results_dir)
    rendered = 0
    for path in sorted(results.glob("fig*.json")):
        rows = json.loads(path.read_text())
        tag = path.stem
        x = "m" if tag.startswith(("fig1", "fig2")) else "load"
        svg = figure_svg_from_rows(
            rows, x=x, title=tag, log_y=tag.startswith(("fig1", "fig2"))
        )
        save_figure_svg(results / f"{tag}.svg", svg)
        rendered += 1
    print(f"rendered {rendered} figures into {results}/")
    return 0 if rendered else 1


def _serve_shards(args: argparse.Namespace) -> int:
    """Router mode: N journaled engine-shard subprocesses + a frontend."""
    import asyncio
    import tempfile

    from repro.serve.admission import AdmissionConfig
    from repro.serve.shard import ShardFrontend, build_subprocess_router
    from repro.serve.tenancy import TenancyConfig

    if args.shards < 1:
        print("serve: --shards must be >= 1", file=sys.stderr)
        return 2
    journal_root = args.journal_dir or tempfile.mkdtemp(prefix="drep-shards-")
    tenancy = None
    if args.multi_tenant or args.credit_rate is not None:
        tenancy = TenancyConfig(
            credit_rate=args.credit_rate,
            credit_burst=args.credit_burst,
            credit_borrow=args.credit_borrow,
            drf_headroom=args.drf_headroom,
        )
    admission_config = None
    if (
        args.max_active is not None
        or args.max_backlog is not None
        or args.max_load is not None
    ):
        admission_config = AdmissionConfig(
            max_active=args.max_active,
            max_backlog=args.max_backlog,
            max_load=args.max_load,
        )
    if admission_config is not None and tenancy is None:
        # caps without tenancy flags: the multi-tenant controller runs
        # over the lone "default" tenant, whose soft caps fall back to
        # base-class shedding — same behavior as the serial server
        tenancy = TenancyConfig()
    router = build_subprocess_router(
        args.shards,
        journal_root,
        m=args.m,
        policy=args.policy,
        seed=args.seed,
        vnodes=args.vnodes,
        tenancy=tenancy,
        admission_config=admission_config,
        snapshot_every=args.snapshot_every,
        fsync=args.fsync,
    )

    supervisor = None
    stop_event = None
    sup_thread = None
    if args.supervise:
        import threading

        from repro.serve.shard import ShardSupervisor

        supervisor = ShardSupervisor(router)
        stop_event = threading.Event()
        sup_thread = threading.Thread(
            target=supervisor.run,
            kwargs={"interval": args.supervise_interval, "stop": stop_event},
            name="shard-supervisor",
            daemon=True,
        )
        sup_thread.start()

    async def run() -> None:
        frontend = ShardFrontend(router, host=args.host, port=args.port)
        await frontend.start()
        print(
            f"drep-serve-router listening on {args.host}:{frontend.port} "
            f"(shards={args.shards}, m_total={router.m_total}, "
            f"policy={args.policy}, journal={journal_root}, "
            f"supervise={'on' if supervisor else 'off'})",
            flush=True,
        )
        await frontend.wait_closed()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        router.close()
    finally:
        if stop_event is not None:
            stop_event.set()
        if sup_thread is not None:
            sup_thread.join(timeout=2.0)
    return 0


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import SchedulerServer, ServeConfig
    from repro.serve.snapshot import restore_scheduler_file

    if args.shards is not None:
        return _serve_shards(args)

    config = ServeConfig(
        m=args.m,
        policy=args.policy,
        seed=args.seed,
        host=args.host,
        port=args.port,
        clock=args.clock,
        time_scale=args.time_scale,
        window=args.window,
        speed=args.speed,
        max_active=args.max_active,
        max_backlog=args.max_backlog,
        max_load=args.max_load,
        snapshot_path=args.snapshot_path,
        journal_dir=args.journal_dir,
        snapshot_every=args.snapshot_every,
        fsync=args.fsync,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        max_line_bytes=args.max_line_bytes,
        multi_tenant=args.multi_tenant,
        credit_rate=args.credit_rate,
        credit_burst=args.credit_burst,
        credit_borrow=args.credit_borrow,
        drf_headroom=args.drf_headroom,
        autoscale=args.autoscale,
        autoscale_m_min=args.autoscale_m_min,
        autoscale_tick=args.autoscale_tick,
        autoscale_up=args.autoscale_up,
        autoscale_down=args.autoscale_down,
        autoscale_cooldown_up=args.autoscale_cooldown_up,
        autoscale_cooldown_down=args.autoscale_cooldown_down,
        autoscale_displace=not args.autoscale_no_displace,
        autoscale_requeue_delay=args.autoscale_requeue_delay,
    )
    scheduler = None
    if args.restore:
        scheduler = restore_scheduler_file(args.restore)
        print(
            f"restored snapshot {args.restore}: t={scheduler.now:.6g}, "
            f"{scheduler.n_active} jobs in flight"
        )

    async def run() -> None:
        server = SchedulerServer(config, scheduler=scheduler)
        if server.recovered_seq:
            print(
                f"recovered journal {config.journal_dir}: "
                f"seq={server.recovered_seq}, "
                f"{server.recovered_entries} entries replayed, "
                f"t={server.scheduler.now:.6g}, "
                f"{server.scheduler.n_active} jobs in flight",
                flush=True,
            )
        await server.start()
        print(
            f"drep-serve listening on {config.host}:{server.port} "
            f"(m={config.m}, policy={config.policy}, clock={config.clock})",
            flush=True,
        )
        await server.wait_closed()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.loadgen import replay_over_wire, tenant_labels
    from repro.workloads.traces import Trace

    async def run() -> int:
        if args.trace_file and args.trace_file.endswith(".swf"):
            # SWF archive replay: jobs stream lazily through the wire
            # client, so a multi-million-job log never materializes here
            from repro.workloads.swf import swf_stream

            trace = swf_stream(args.trace_file)
        elif args.trace_file:
            trace = Trace.load_file(args.trace_file)
        else:
            m = args.m
            if m is None:
                reader, writer = await asyncio.open_connection(args.host, args.port)
                writer.write(b'{"op": "hello"}\n')
                await writer.drain()
                hello = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                m = int(hello["m"])
            trace = generate_trace(
                n_jobs=args.n_jobs,
                distribution=args.distribution,
                load=args.load,
                m=m,
                seed=args.seed,
            )
        tenants = None
        if args.tenants is not None:
            if not isinstance(trace, Trace):
                print(
                    "loadgen: --tenants needs an in-memory trace "
                    "(labels are indexed by job id); not available for "
                    ".swf streams",
                    file=sys.stderr,
                )
                return 2
            tenants = tenant_labels(
                len(trace.jobs),
                args.tenants,
                skew=args.tenant_skew,
                seed=args.seed,
            )
        report = await replay_over_wire(
            args.host,
            args.port,
            trace,
            rate=args.rate,
            pace=args.pace,
            drain=not args.no_drain,
            verify=args.verify,
            tenants=tenants,
            timeout=args.timeout,
            max_retries=args.max_retries,
            backoff=args.backoff,
            retry_seed=args.seed,
        )
        print(f"# loadgen: {trace.name} @ rate x{args.rate:g}")
        for key, value in report.summary().items():
            if key == "tenants":
                continue  # printed as their own block below
            print(f"{key:16s} {value:.6g}" if isinstance(value, float) else f"{key:16s} {value}")
        for name, row in sorted(report.tenant_counts.items()):
            print(
                f"tenant {name:9s} offered={row['offered']} "
                f"accepted={row['accepted']} shed={row['shed']} "
                f"errors={row['errors']} retries={row['retries']}"
            )
        window = report.stats.get("window")
        if window:
            print(
                f"window           mean={window['mean_flow']:.6g} "
                f"p99={window['p99_flow']:.6g} throughput={window['throughput']:.6g}"
            )
        if args.verify and report.verified is False:
            print("VERIFY FAILED: online flow times diverge from offline simulate")
            return 1
        if args.verify and report.verified:
            print("verify ok: online == offline flowsim.simulate "
                  f"(max |Δflow| = {report.max_abs_diff:.3g})")
        if args.verify and report.verified is None:
            print("verify skipped: wall-clock server (releases not replayable)")
        return 0

    try:
        return asyncio.run(run())
    except ConnectionError as exc:
        print(
            f"loadgen: cannot reach server at {args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 1


def _parse_machine(spec: str):
    import numpy as np

    from repro.hetero.machine import Machine, geometric_machine

    if spec.startswith("geometric:"):
        _, m, ratio = spec.split(":")
        return geometric_machine(int(m), ratio=float(ratio))
    speeds = []
    for part in spec.split("+"):
        count, speed = part.split("x")
        speeds.extend([float(speed)] * int(count))
    return Machine(np.array(speeds))


def _hetero(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.hetero import DrepRelated, FifoRelated, SrptRelated, simulate_hetero

    machine = _parse_machine(args.machine)
    eq_m = max(1, round(machine.total_speed))
    trace = generate_trace(
        args.n_jobs,
        args.distribution,
        0.6,
        eq_m,
        seed=args.seed,
        scale_work_with_m=False,
    )
    rows = []
    for policy in (SrptRelated(), FifoRelated(), DrepRelated(), DrepRelated(reseat=True)):
        r = simulate_hetero(trace, machine, policy, seed=args.seed)
        rows.append(
            {
                "scheduler": r.scheduler,
                "mean_flow": r.mean_flow,
                "p99_flow": r.percentile(99),
                "preemptions": r.preemptions,
            }
        )
    print(f"# machine {machine.describe()} — {args.distribution}, {args.n_jobs} jobs")
    print(format_table(rows))
    return 0


def _stats(args: argparse.Namespace) -> int:
    from repro.workloads.distributions import distribution_by_name
    from repro.workloads.stats import distribution_stats

    dist = distribution_by_name(args.distribution)
    stats = distribution_stats(dist, n=args.samples, seed=args.seed)
    print(f"# {args.distribution} work distribution ({args.samples} samples)")
    for key, value in stats.summary().items():
        print(f"{key:12s} {value:.6g}" if isinstance(value, float) else f"{key:12s} {value}")
    return 0


def _report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportConfig, write_report

    config = ReportConfig(
        flow_jobs=args.flow_jobs, ws_jobs=args.ws_jobs, seed=args.seed
    )
    path = write_report(args.out, config)
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
