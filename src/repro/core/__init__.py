"""Core primitives shared across the library.

* :mod:`repro.core.job` — job specifications and per-run state;
* :mod:`repro.core.events` — event queue for the continuous-time simulator;
* :mod:`repro.core.metrics` — schedule results and summaries;
* :mod:`repro.core.rng` — named deterministic random streams.
"""

from repro.core.events import Event, EventKind, EventQueue
from repro.core.job import JobSpec, JobState, ParallelismMode
from repro.core.metrics import ScheduleResult, compare_results, summarize_flow
from repro.core.rng import RngFactory, stable_hash

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "JobSpec",
    "JobState",
    "ParallelismMode",
    "ScheduleResult",
    "compare_results",
    "summarize_flow",
    "RngFactory",
    "stable_hash",
]
