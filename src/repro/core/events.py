"""Typed event queue for the continuous-time flow-level simulator.

The flow-level engine is event-driven: between consecutive events the rate
vector is constant, so job progress is linear and the engine can jump
straight to the next event.  Events are job arrivals and (predicted) job
completions; completion predictions are invalidated lazily via a version
counter rather than removed from the heap (the standard "lazy deletion"
idiom, O(log n) per operation).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event discriminator.  Arrival sorts before completion at equal time
    so that a job finishing exactly when another arrives sees the arrival
    first — this matches the paper's convention that preemption coin flips
    happen at arrival instants over the *current* active set.
    """

    ARRIVAL = 0
    COMPLETION = 1
    TIMER = 2


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled event.  Ordering: time, then kind, then insertion order."""

    time: float
    kind: EventKind
    seq: int
    job_id: int = field(compare=False, default=-1)
    version: int = field(compare=False, default=0)


class EventQueue:
    """Min-heap of :class:`Event` with lazy invalidation of completions.

    ``push_completion(job_id, t, version)`` records a completion prediction;
    a prediction is *stale* (silently dropped on pop) unless its ``version``
    matches the version last registered for that job via
    :meth:`set_version`.  The engine bumps a job's version whenever its rate
    changes, so old predictions die without heap surgery.

    Contract: version numbers must be **fresh** — never re-register a
    version that was already consumed by a pop or superseded by a later
    :meth:`set_version`, or a stale heap entry carrying that number would
    come back to life.  Monotonically increasing versions per job (what
    any engine naturally does) satisfy this.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._versions: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def push_arrival(self, time: float, job_id: int) -> None:
        self._check_time(time)
        heapq.heappush(
            self._heap, Event(time, EventKind.ARRIVAL, next(self._seq), job_id=job_id)
        )

    def push_timer(self, time: float) -> None:
        self._check_time(time)
        heapq.heappush(self._heap, Event(time, EventKind.TIMER, next(self._seq)))

    def push_completion(self, time: float, job_id: int, version: int) -> None:
        self._check_time(time)
        heapq.heappush(
            self._heap,
            Event(time, EventKind.COMPLETION, next(self._seq), job_id=job_id, version=version),
        )

    def set_version(self, job_id: int, version: int) -> None:
        """Declare ``version`` the only live completion prediction for job."""
        self._versions[job_id] = version

    def clear_job(self, job_id: int) -> None:
        """Invalidate all outstanding predictions for ``job_id``."""
        self._versions.pop(job_id, None)

    def pop(self) -> Event | None:
        """Pop the next *live* event, or ``None`` if the queue drains."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.kind is EventKind.COMPLETION:
                if self._versions.get(ev.job_id) != ev.version:
                    continue  # stale prediction
                # consume: a completion fires once
                self._versions.pop(ev.job_id, None)
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without popping it."""
        while self._heap:
            ev = self._heap[0]
            if (
                ev.kind is EventKind.COMPLETION
                and self._versions.get(ev.job_id) != ev.version
            ):
                heapq.heappop(self._heap)
                continue
            return ev.time
        return None

    @staticmethod
    def _check_time(time: float) -> None:
        if not (math.isfinite(time) and time >= 0):
            raise ValueError(f"event time must be finite and >= 0, got {time}")
