"""Job model shared by both simulators.

The paper (Sec. II) characterizes a parallel DAG job :math:`J_i` by two
parameters: its *work* :math:`W_i` (total processing time of all DAG nodes)
and its *critical-path length* :math:`C_i` (longest weighted path).  The
flow-level simulator (Figures 1-2) only needs these scalars plus a
parallelism mode; the work-stealing runtime simulator additionally carries
an explicit DAG (see :mod:`repro.dag`).

``JobSpec`` is the immutable description of a job before simulation;
``JobState`` is the mutable per-run bookkeeping a simulator keeps for it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

__all__ = ["ParallelismMode", "JobSpec", "JobState"]


class ParallelismMode(enum.Enum):
    """How a job can use processors in the flow-level simulator.

    The paper's simulations (Sec. V-A) consider the two extremes:

    * ``SEQUENTIAL`` — the job uses at most one processor at a time
      (Figure 1, "sequential jobs with multiprocessors" setting);
    * ``FULLY_PARALLEL`` — near-linear speedup up to all ``m`` processors
      (Figure 2, "fully parallel jobs" setting).

    ``DAG`` marks jobs whose parallelism comes from an explicit DAG and is
    only meaningful to the work-stealing runtime simulator.
    """

    SEQUENTIAL = "sequential"
    FULLY_PARALLEL = "fully_parallel"
    DAG = "dag"

    def rate_cap(self, m: int) -> float:
        """Maximum processing rate this mode permits on an ``m``-core machine."""
        if self is ParallelismMode.SEQUENTIAL:
            return 1.0
        return float(m)


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job.

    Attributes
    ----------
    job_id:
        Dense index, unique within a trace, assigned in release order.
    release:
        Arrival time :math:`r_i` (non-negative).
    work:
        Total work :math:`W_i > 0`.
    span:
        Critical-path length :math:`C_i`; must satisfy
        ``0 < span <= work``.  For sequential jobs ``span == work``.
    mode:
        Parallelism mode (see :class:`ParallelismMode`).
    dag:
        Optional explicit DAG (``repro.dag.DagJob``); required by the
        work-stealing simulator, ignored by the flow-level simulator.
    weight:
        Importance weight for *weighted* flow time (extension beyond the
        paper, whose objective is unweighted — i.e. all weights 1).
    """

    job_id: int
    release: float
    work: float
    span: float
    mode: ParallelismMode = ParallelismMode.SEQUENTIAL
    dag: object | None = field(default=None, compare=False, repr=False)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not (self.weight > 0 and math.isfinite(self.weight)):
            raise ValueError(f"weight must be finite and > 0, got {self.weight}")
        if self.job_id < 0:
            raise ValueError(f"job_id must be >= 0, got {self.job_id}")
        if not (self.release >= 0 and math.isfinite(self.release)):
            raise ValueError(f"release must be finite and >= 0, got {self.release}")
        if not (self.work > 0 and math.isfinite(self.work)):
            raise ValueError(f"work must be finite and > 0, got {self.work}")
        if not (0 < self.span <= self.work * (1 + 1e-12)):
            raise ValueError(
                f"span must satisfy 0 < span <= work, got span={self.span}, work={self.work}"
            )
        if self.mode is ParallelismMode.SEQUENTIAL and not math.isclose(
            self.span, self.work, rel_tol=1e-9
        ):
            raise ValueError("sequential jobs must have span == work")

    def lower_bound(self, m: int) -> float:
        """Observation 1: any unit-speed schedule needs ``max(W/m', C)`` time.

        ``m'`` is the number of processors the job could ever use at once —
        1 for sequential jobs, ``m`` otherwise.
        """
        usable = 1 if self.mode is ParallelismMode.SEQUENTIAL else m
        return max(self.work / usable, self.span)


@dataclass
class JobState:
    """Mutable per-run bookkeeping for one job inside a simulator.

    The flow-level engine updates ``remaining`` continuously; the runtime
    simulator decrements it one unit per executed node-step.  ``processors``
    is the DREP assignment count :math:`p_i(t)`.
    """

    spec: JobSpec
    remaining: float = field(default=0.0)
    processors: int = 0
    finish: float | None = None
    preemptions: int = 0

    def __post_init__(self) -> None:
        if self.remaining == 0.0:
            self.remaining = self.spec.work

    @property
    def done(self) -> bool:
        return self.finish is not None

    @property
    def flow_time(self) -> float:
        """Flow time :math:`f_i - r_i`; raises if the job has not finished."""
        if self.finish is None:
            raise ValueError(f"job {self.spec.job_id} has not completed")
        return self.finish - self.spec.release

    def complete(self, now: float) -> None:
        """Mark completion at time ``now`` (must not precede the release)."""
        if self.finish is not None:
            raise ValueError(f"job {self.spec.job_id} already completed")
        if now < self.spec.release:
            raise ValueError("completion before release")
        self.finish = now
        self.remaining = 0.0
