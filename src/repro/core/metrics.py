"""Result containers and summary statistics for schedule evaluations.

The paper's headline metric is **average (total) flow time** — the mean of
:math:`f_i - r_i` over all jobs (Sec. I).  The practicality arguments rest
on secondary counters: preemptions, migrations, steal attempts and muggings
(Sec. IV-A, Theorem 1.2).  ``ScheduleResult`` carries all of them so every
bench can report the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ScheduleResult", "summarize_flow", "compare_results"]


@dataclass
class ScheduleResult:
    """Outcome of simulating one trace under one scheduler.

    Attributes
    ----------
    scheduler:
        Human-readable scheduler name (e.g. ``"DREP"``, ``"SRPT"``).
    m:
        Number of processors simulated.
    flow_times:
        Array of per-job flow times, indexed by ``job_id``.
    preemptions:
        Times a processor switched *away from an unfinished job*
        (the quantity Theorem 1.2 bounds).
    migrations:
        Times a job resumed on a different processor than it last ran on.
    steal_attempts / muggings:
        Work-stealing runtime counters (zero for flow-level runs).
    makespan:
        Completion time of the last job.
    extra:
        Free-form per-run diagnostics (e.g. utilization achieved).
    """

    scheduler: str
    m: int
    flow_times: np.ndarray
    preemptions: int = 0
    migrations: int = 0
    steal_attempts: int = 0
    muggings: int = 0
    makespan: float = 0.0
    #: per-job minimal possible flow times (Observation 1 bounds), set by
    #: the engines so slowdown statistics can be computed
    min_flows: np.ndarray | None = None
    #: per-job importance weights (all ones when the trace is unweighted)
    weights: np.ndarray | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.flow_times = np.asarray(self.flow_times, dtype=float)
        if self.flow_times.ndim != 1:
            raise ValueError("flow_times must be a 1-D array")
        if self.flow_times.size and float(self.flow_times.min()) < -1e-9:
            raise ValueError("negative flow time")
        if self.m <= 0:
            raise ValueError("m must be positive")
        if self.min_flows is not None:
            self.min_flows = np.asarray(self.min_flows, dtype=float)
            if self.min_flows.shape != self.flow_times.shape:
                raise ValueError("min_flows must align with flow_times")
            if self.min_flows.size and float(self.min_flows.min()) <= 0:
                raise ValueError("min_flows must be positive")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=float)
            if self.weights.shape != self.flow_times.shape:
                raise ValueError("weights must align with flow_times")
            if self.weights.size and float(self.weights.min()) <= 0:
                raise ValueError("weights must be positive")

    @property
    def n_jobs(self) -> int:
        return int(self.flow_times.size)

    @property
    def mean_flow(self) -> float:
        """Average flow time — the paper's objective (divided by n)."""
        return float(self.flow_times.mean()) if self.flow_times.size else 0.0

    @property
    def total_flow(self) -> float:
        return float(self.flow_times.sum())

    @property
    def max_flow(self) -> float:
        return float(self.flow_times.max()) if self.flow_times.size else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.flow_times, q)) if self.flow_times.size else 0.0

    def weighted_mean_flow(self) -> float:
        """Weight-normalized mean flow ``Σ w_i f_i / Σ w_i`` (extension;
        equals :attr:`mean_flow` for unweighted traces)."""
        if self.weights is None:
            return self.mean_flow
        total = float(self.weights.sum())
        if total == 0:
            return 0.0
        return float((self.weights * self.flow_times).sum() / total)

    @property
    def slowdowns(self) -> np.ndarray:
        """Per-job slowdown (stretch): flow time over the job's minimal
        possible flow time (Observation 1).

        Slowdown is the fairness lens of this literature: SRPT minimizes
        mean flow but can stretch large jobs arbitrarily, while
        equi-partition schedulers (RR, DREP) keep every job's slowdown
        near the system load factor.  Requires ``min_flows``.
        """
        if self.min_flows is None:
            raise ValueError(f"{self.scheduler}: result carries no min_flows")
        return self.flow_times / self.min_flows

    def mean_slowdown(self) -> float:
        s = self.slowdowns
        return float(s.mean()) if s.size else 0.0

    def max_slowdown(self) -> float:
        s = self.slowdowns
        return float(s.max()) if s.size else 0.0

    def slowdown_percentile(self, q: float) -> float:
        s = self.slowdowns
        return float(np.percentile(s, q)) if s.size else 0.0

    def lk_norm(self, k: float) -> float:
        """ℓ_k norm of flow times, ``(Σ f_i^k)^{1/k}``.

        k=1 recovers total flow (the paper's objective × n); large k
        approaches max flow — the fairness-sensitive objectives studied
        in the related work the paper cites ([32, 33]).
        """
        if k <= 0:
            raise ValueError("k must be > 0")
        if not self.flow_times.size:
            return 0.0
        return float((self.flow_times**k).sum() ** (1.0 / k))

    def summary(self) -> dict:
        """Flat dict of the headline numbers, ready for table rows."""
        return {
            "scheduler": self.scheduler,
            "m": self.m,
            "n_jobs": self.n_jobs,
            "mean_flow": self.mean_flow,
            "p50_flow": self.percentile(50),
            "p99_flow": self.percentile(99),
            "max_flow": self.max_flow,
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "steal_attempts": self.steal_attempts,
            "muggings": self.muggings,
            "makespan": self.makespan,
            **self.extra,
        }


def summarize_flow(results: list[ScheduleResult]) -> dict[str, float]:
    """Map scheduler name -> mean flow over a list of repetition results.

    Repetitions of the same scheduler are averaged (mean of means, since all
    repetitions simulate the same number of jobs).
    """
    acc: dict[str, list[float]] = {}
    for r in results:
        acc.setdefault(r.scheduler, []).append(r.mean_flow)
    return {name: float(np.mean(vals)) for name, vals in acc.items()}


def compare_results(
    baseline: ScheduleResult, other: ScheduleResult
) -> dict[str, float]:
    """Ratios of ``other`` relative to ``baseline`` (e.g. DREP vs SRPT).

    ``flow_ratio`` is the number the paper quotes, e.g. "at most a factor of
    3.25 compared to SRPT" (Sec. V-A).
    """
    if baseline.n_jobs != other.n_jobs:
        raise ValueError("results cover different job counts")
    base = baseline.mean_flow
    return {
        "flow_ratio": other.mean_flow / base if base > 0 else float("inf"),
        "preemption_ratio": (
            other.preemptions / baseline.preemptions
            if baseline.preemptions
            else float("inf") if other.preemptions else 1.0
        ),
    }
