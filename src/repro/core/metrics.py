"""Result containers and summary statistics for schedule evaluations.

The paper's headline metric is **average (total) flow time** — the mean of
:math:`f_i - r_i` over all jobs (Sec. I).  The practicality arguments rest
on secondary counters: preemptions, migrations, steal attempts and muggings
(Sec. IV-A, Theorem 1.2).  ``ScheduleResult`` carries all of them so every
bench can report the same rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ScheduleResult",
    "StreamingMetrics",
    "StreamResult",
    "summarize_flow",
    "compare_results",
]


def _validate_percentile(q: float) -> float:
    """Reject out-of-range percentile ranks with a clear error.

    ``np.percentile`` error messages name neither the caller nor the
    offending value; surfacing both here turns a silent analysis bug
    (e.g. ``percentile(0.99)`` meaning p99) into an immediate failure.
    """
    q = float(q)
    if not 0.0 <= q <= 100.0 or math.isnan(q):
        raise ValueError(f"percentile rank must be in [0, 100], got {q!r}")
    return q


@dataclass
class ScheduleResult:
    """Outcome of simulating one trace under one scheduler.

    Attributes
    ----------
    scheduler:
        Human-readable scheduler name (e.g. ``"DREP"``, ``"SRPT"``).
    m:
        Number of processors simulated.
    flow_times:
        Array of per-job flow times, indexed by ``job_id``.
    preemptions:
        Times a processor switched *away from an unfinished job*
        (the quantity Theorem 1.2 bounds).
    migrations:
        Times a job resumed on a different processor than it last ran on.
    steal_attempts / muggings:
        Work-stealing runtime counters (zero for flow-level runs).
    makespan:
        Completion time of the last job.
    extra:
        Free-form per-run diagnostics (e.g. utilization achieved).
    """

    scheduler: str
    m: int
    flow_times: np.ndarray
    preemptions: int = 0
    migrations: int = 0
    steal_attempts: int = 0
    muggings: int = 0
    makespan: float = 0.0
    #: per-job minimal possible flow times (Observation 1 bounds), set by
    #: the engines so slowdown statistics can be computed
    min_flows: np.ndarray | None = None
    #: per-job importance weights (all ones when the trace is unweighted)
    weights: np.ndarray | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.flow_times = np.asarray(self.flow_times, dtype=float)
        if self.flow_times.ndim != 1:
            raise ValueError("flow_times must be a 1-D array")
        if self.flow_times.size and float(self.flow_times.min()) < -1e-9:
            raise ValueError("negative flow time")
        if self.m <= 0:
            raise ValueError("m must be positive")
        if self.min_flows is not None:
            self.min_flows = np.asarray(self.min_flows, dtype=float)
            if self.min_flows.shape != self.flow_times.shape:
                raise ValueError("min_flows must align with flow_times")
            if self.min_flows.size and float(self.min_flows.min()) <= 0:
                raise ValueError("min_flows must be positive")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=float)
            if self.weights.shape != self.flow_times.shape:
                raise ValueError("weights must align with flow_times")
            if self.weights.size and float(self.weights.min()) <= 0:
                raise ValueError("weights must be positive")

    @property
    def n_jobs(self) -> int:
        return int(self.flow_times.size)

    @property
    def mean_flow(self) -> float:
        """Average flow time — the paper's objective (divided by n)."""
        return float(self.flow_times.mean()) if self.flow_times.size else 0.0

    @property
    def total_flow(self) -> float:
        return float(self.flow_times.sum())

    @property
    def max_flow(self) -> float:
        return float(self.flow_times.max()) if self.flow_times.size else 0.0

    def percentile(self, q: float) -> float:
        q = _validate_percentile(q)
        return float(np.percentile(self.flow_times, q)) if self.flow_times.size else 0.0

    def weighted_mean_flow(self) -> float:
        """Weight-normalized mean flow ``Σ w_i f_i / Σ w_i`` (extension;
        equals :attr:`mean_flow` for unweighted traces)."""
        if self.weights is None:
            return self.mean_flow
        total = float(self.weights.sum())
        if total == 0:
            return 0.0
        return float((self.weights * self.flow_times).sum() / total)

    @property
    def slowdowns(self) -> np.ndarray:
        """Per-job slowdown (stretch): flow time over the job's minimal
        possible flow time (Observation 1).

        Slowdown is the fairness lens of this literature: SRPT minimizes
        mean flow but can stretch large jobs arbitrarily, while
        equi-partition schedulers (RR, DREP) keep every job's slowdown
        near the system load factor.  Requires ``min_flows``.
        """
        if self.min_flows is None:
            raise ValueError(f"{self.scheduler}: result carries no min_flows")
        return self.flow_times / self.min_flows

    def mean_slowdown(self) -> float:
        s = self.slowdowns
        return float(s.mean()) if s.size else 0.0

    def max_slowdown(self) -> float:
        s = self.slowdowns
        return float(s.max()) if s.size else 0.0

    def slowdown_percentile(self, q: float) -> float:
        q = _validate_percentile(q)
        s = self.slowdowns
        return float(np.percentile(s, q)) if s.size else 0.0

    def lk_norm(self, k: float) -> float:
        """ℓ_k norm of flow times, ``(Σ f_i^k)^{1/k}``.

        k=1 recovers total flow (the paper's objective × n); large k
        approaches max flow — the fairness-sensitive objectives studied
        in the related work the paper cites ([32, 33]).
        """
        if k <= 0:
            raise ValueError("k must be > 0")
        if not self.flow_times.size:
            return 0.0
        return float((self.flow_times**k).sum() ** (1.0 / k))

    def summary(self) -> dict:
        """Flat dict of the headline numbers, ready for table rows."""
        return {
            "scheduler": self.scheduler,
            "m": self.m,
            "n_jobs": self.n_jobs,
            "mean_flow": self.mean_flow,
            "p50_flow": self.percentile(50),
            "p99_flow": self.percentile(99),
            "max_flow": self.max_flow,
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "steal_attempts": self.steal_attempts,
            "muggings": self.muggings,
            "makespan": self.makespan,
            **self.extra,
        }


class _CompensatedSum:
    """Neumaier (improved Kahan) compensated accumulator.

    Each folded batch is first reduced with :func:`math.fsum` (exactly
    rounded), then folded into the running ``(sum, compensation)`` pair,
    so the streaming total agrees with a dense ``np.sum`` over the whole
    array to within one ulp regardless of how arrivals were chunked.
    """

    __slots__ = ("_s", "_c")

    def __init__(self) -> None:
        self._s = 0.0
        self._c = 0.0

    def add(self, x: float) -> None:
        s = self._s
        t = s + x
        if abs(s) >= abs(x):
            self._c += (s - t) + x
        else:
            self._c += (x - t) + s
        self._s = t

    @property
    def value(self) -> float:
        return self._s + self._c


class StreamingMetrics:
    """Bounded-RAM flow-time statistics for streamed runs.

    Completed jobs are *folded in* and forgotten: exact count / total /
    mean / max flow (compensated summation), weighted flow, slowdown
    (stretch) moments, and fixed-seed reservoir sampling (Algorithm R)
    for quantiles — exact whenever ``count <= reservoir_size``, an
    unbiased seeded estimate beyond that.  Memory is
    ``O(reservoir_size)`` independent of job count, which is what lets a
    10⁶-job trace finish in flat RAM (see ``docs/workloads.md``).

    Pass ``keep_flow_times=True`` to *opt out* of bounded memory and
    retain every per-job value — the bridge back to a dense
    :class:`ScheduleResult` used by the streaming≡materialized golden
    tests.

    ``slo_threshold`` enables SLO-attainment accounting: every folded
    job with ``flow <= slo_threshold`` counts as attained, and
    :attr:`slo_attainment` reports the attained fraction.  It is an
    exact O(1)-memory fold (a counter, not a reservoir estimate), so it
    stays trustworthy far past the quantile-exactness horizon.
    """

    def __init__(
        self,
        *,
        keep_flow_times: bool = False,
        reservoir_size: int = 4096,
        seed: int = 0,
        slo_threshold: float | None = None,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        if slo_threshold is not None and not slo_threshold > 0:
            raise ValueError(
                f"slo_threshold must be positive, got {slo_threshold}"
            )
        self.keep_flow_times = bool(keep_flow_times)
        self.reservoir_size = int(reservoir_size)
        self.seed = int(seed)
        self._rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([int(seed), 0x5EED]))
        )
        self.slo_threshold = (
            None if slo_threshold is None else float(slo_threshold)
        )
        self.slo_attained = 0
        self.count = 0
        self.max_flow = 0.0
        self._flow_sum = _CompensatedSum()
        self._flow_sq_sum = _CompensatedSum()
        self._weight_sum = _CompensatedSum()
        self._wflow_sum = _CompensatedSum()
        self._slow_count = 0
        self._slow_sum = _CompensatedSum()
        self._slow_sq_sum = _CompensatedSum()
        self.max_slowdown = 0.0
        self._reservoir = np.empty(self.reservoir_size, dtype=float)
        # whether any producer ever supplied weights: an unweighted run
        # must round-trip to ``weights=None`` (what wsim results carry),
        # while flowsim always materializes the all-ones array
        self._weights_explicit = False
        self._kept_flows: list[np.ndarray] = []
        self._kept_min_flows: list[np.ndarray] = []
        self._kept_weights: list[np.ndarray] = []

    # -- folding ----------------------------------------------------------

    def add(
        self,
        flow: float,
        weight: float | None = None,
        min_flow: float | None = None,
    ) -> None:
        """Fold a single completed job (scalar convenience wrapper)."""
        mf = None if min_flow is None else np.array([min_flow], dtype=float)
        w = None if weight is None else np.array([weight], dtype=float)
        self.add_batch(np.array([flow], dtype=float), w, mf)

    def add_batch(
        self,
        flows: np.ndarray,
        weights: np.ndarray | None = None,
        min_flows: np.ndarray | None = None,
    ) -> None:
        """Fold a batch of completed jobs, in completion-id order.

        ``flows``/``weights``/``min_flows`` align elementwise; ``weights``
        defaults to all-ones and ``min_flows`` may be omitted when the
        producer has no lower bounds (slowdown moments then stay empty).
        """
        flows = np.asarray(flows, dtype=float)
        if flows.ndim != 1:
            raise ValueError("flows must be a 1-D array")
        n = flows.size
        if n == 0:
            return
        if flows.min() < -1e-9:
            raise ValueError("negative flow time")
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != flows.shape:
                raise ValueError("weights must align with flows")
            self._weights_explicit = True
        if min_flows is not None:
            min_flows = np.asarray(min_flows, dtype=float)
            if min_flows.shape != flows.shape:
                raise ValueError("min_flows must align with flows")
            if min_flows.size and float(min_flows.min()) <= 0:
                raise ValueError("min_flows must be positive")

        self._flow_sum.add(math.fsum(flows))
        self._flow_sq_sum.add(math.fsum(flows * flows))
        mx = float(flows.max())
        if mx > self.max_flow:
            self.max_flow = mx
        if weights is None:
            self._weight_sum.add(float(n))
            self._wflow_sum.add(math.fsum(flows))
        else:
            self._weight_sum.add(math.fsum(weights))
            self._wflow_sum.add(math.fsum(weights * flows))
        if min_flows is not None:
            s = flows / min_flows
            self._slow_count += n
            self._slow_sum.add(math.fsum(s))
            self._slow_sq_sum.add(math.fsum(s * s))
            smx = float(s.max())
            if smx > self.max_slowdown:
                self.max_slowdown = smx

        if self.slo_threshold is not None:
            self.slo_attained += int(
                np.count_nonzero(flows <= self.slo_threshold)
            )

        self._reservoir_fold(flows)
        if self.keep_flow_times:
            self._kept_flows.append(flows.copy())
            self._kept_weights.append(
                np.ones(n) if weights is None else weights.copy()
            )
            if min_flows is not None:
                self._kept_min_flows.append(min_flows.copy())
        self.count += n

    def _reservoir_fold(self, flows: np.ndarray) -> None:
        """Algorithm R over the concatenated stream, chunk-vectorized.

        The acceptance draw for global element ``j`` is
        ``rng.integers(0, j + 1)`` exactly as in the scalar algorithm, so
        the retained sample depends only on ``(seed, stream order)`` and
        never on how completions were batched.
        """
        k = self.reservoir_size
        n0 = self.count
        c = flows.size
        fill = min(max(k - n0, 0), c)
        if fill:
            self._reservoir[n0 : n0 + fill] = flows[:fill]
        if fill < c:
            idx = np.arange(n0 + fill, n0 + c)
            slots = self._rng.integers(0, idx + 1)
            hits = np.flatnonzero(slots < k)
            # scalar writes: duplicate slots must resolve last-wins in
            # stream order, which fancy assignment does not guarantee
            for h in hits:
                self._reservoir[slots[h]] = flows[fill + h]

    # -- statistics -------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        return self.count

    @property
    def total_flow(self) -> float:
        return self._flow_sum.value

    @property
    def mean_flow(self) -> float:
        return self._flow_sum.value / self.count if self.count else 0.0

    @property
    def flow_stddev(self) -> float:
        if not self.count:
            return 0.0
        mean = self.mean_flow
        var = self._flow_sq_sum.value / self.count - mean * mean
        return math.sqrt(max(var, 0.0))

    def weighted_mean_flow(self) -> float:
        total = self._weight_sum.value
        return self._wflow_sum.value / total if total else 0.0

    def mean_slowdown(self) -> float:
        if not self._slow_count:
            raise ValueError("no min_flows were folded; slowdowns unavailable")
        return self._slow_sum.value / self._slow_count

    def slowdown_stddev(self) -> float:
        if not self._slow_count:
            raise ValueError("no min_flows were folded; slowdowns unavailable")
        mean = self.mean_slowdown()
        var = self._slow_sq_sum.value / self._slow_count - mean * mean
        return math.sqrt(max(var, 0.0))

    @property
    def slo_attainment(self) -> float | None:
        """Fraction of folded jobs with ``flow <= slo_threshold``.

        ``None`` when no threshold was configured; 0.0 before any job
        completes (vacuous attainment would overstate an empty run).
        """
        if self.slo_threshold is None:
            return None
        return self.slo_attained / self.count if self.count else 0.0

    @property
    def quantiles_exact(self) -> bool:
        """True while every folded flow is still held in the reservoir."""
        return self.count <= self.reservoir_size

    def percentile(self, q: float) -> float:
        """Flow-time percentile: exact below ``reservoir_size`` jobs,
        a seeded reservoir estimate beyond."""
        q = _validate_percentile(q)
        if not self.count:
            return 0.0
        if self.keep_flow_times:
            return float(np.percentile(self.flow_times, q))
        held = min(self.count, self.reservoir_size)
        return float(np.percentile(self._reservoir[:held], q))

    @property
    def flow_times(self) -> np.ndarray:
        """Dense per-job flow times (requires ``keep_flow_times=True``)."""
        if not self.keep_flow_times:
            raise ValueError(
                "flow times were folded away; construct StreamingMetrics "
                "with keep_flow_times=True to retain them"
            )
        if not self._kept_flows:
            return np.empty(0, dtype=float)
        return np.concatenate(self._kept_flows)

    @property
    def min_flows(self) -> np.ndarray | None:
        if not self.keep_flow_times:
            raise ValueError(
                "min flows were folded away; construct StreamingMetrics "
                "with keep_flow_times=True to retain them"
            )
        if not self._kept_min_flows:
            return None
        return np.concatenate(self._kept_min_flows)

    @property
    def weights(self) -> np.ndarray | None:
        """Retained weights, or ``None`` when no producer supplied any."""
        if not self.keep_flow_times:
            raise ValueError(
                "weights were folded away; construct StreamingMetrics "
                "with keep_flow_times=True to retain them"
            )
        if not self._weights_explicit:
            return None
        if not self._kept_weights:
            return np.empty(0, dtype=float)
        return np.concatenate(self._kept_weights)

    def summary(self) -> dict:
        """Flat dict mirroring :meth:`ScheduleResult.summary` stat keys."""
        out = {
            "n_jobs": self.count,
            "mean_flow": self.mean_flow,
            "p50_flow": self.percentile(50),
            "p99_flow": self.percentile(99),
            "max_flow": self.max_flow,
            "total_flow": self.total_flow,
            "weighted_mean_flow": self.weighted_mean_flow(),
            "quantiles_exact": self.quantiles_exact,
        }
        if self._slow_count:
            out["mean_slowdown"] = self.mean_slowdown()
            out["max_slowdown"] = self.max_slowdown
        if self.slo_threshold is not None:
            out["slo_threshold"] = self.slo_threshold
            out["slo_attainment"] = self.slo_attainment
        return out


@dataclass
class StreamResult:
    """Outcome of a streamed simulation: counters + folded metrics.

    The streaming twin of :class:`ScheduleResult` — same headline
    counters, but per-job arrays live inside :attr:`metrics` (and only
    if it was built with ``keep_flow_times=True``).
    """

    scheduler: str
    m: int
    metrics: StreamingMetrics
    preemptions: int = 0
    migrations: int = 0
    steal_attempts: int = 0
    muggings: int = 0
    makespan: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return self.metrics.count

    @property
    def mean_flow(self) -> float:
        return self.metrics.mean_flow

    def summary(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "m": self.m,
            **self.metrics.summary(),
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "steal_attempts": self.steal_attempts,
            "muggings": self.muggings,
            "makespan": self.makespan,
            **self.extra,
        }

    def to_schedule_result(self) -> ScheduleResult:
        """Rebuild the dense result (requires ``keep_flow_times=True``).

        Flows are retained in job-id order by both engines' harvest
        paths, so the reconstruction is bit-for-bit comparable to a
        materialized run's :class:`ScheduleResult`.
        """
        weights = self.metrics.weights
        if weights is not None and not weights.size:
            weights = None
        return ScheduleResult(
            scheduler=self.scheduler,
            m=self.m,
            flow_times=self.metrics.flow_times,
            preemptions=self.preemptions,
            migrations=self.migrations,
            steal_attempts=self.steal_attempts,
            muggings=self.muggings,
            makespan=self.makespan,
            min_flows=self.metrics.min_flows,
            weights=weights,
            extra=dict(self.extra),
        )


def summarize_flow(results: list[ScheduleResult]) -> dict[str, float]:
    """Map scheduler name -> mean flow over a list of repetition results.

    Repetitions of the same scheduler are averaged (mean of means, since all
    repetitions simulate the same number of jobs).
    """
    acc: dict[str, list[float]] = {}
    for r in results:
        acc.setdefault(r.scheduler, []).append(r.mean_flow)
    return {name: float(np.mean(vals)) for name, vals in acc.items()}


def compare_results(
    baseline: ScheduleResult, other: ScheduleResult
) -> dict[str, float]:
    """Ratios of ``other`` relative to ``baseline`` (e.g. DREP vs SRPT).

    ``flow_ratio`` is the number the paper quotes, e.g. "at most a factor of
    3.25 compared to SRPT" (Sec. V-A).
    """
    if baseline.n_jobs != other.n_jobs:
        raise ValueError("results cover different job counts")
    base = baseline.mean_flow
    return {
        "flow_ratio": other.mean_flow / base if base > 0 else float("inf"),
        "preemption_ratio": (
            other.preemptions / baseline.preemptions
            if baseline.preemptions
            else float("inf") if other.preemptions else 1.0
        ),
    }
