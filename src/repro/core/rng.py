"""Deterministic random-stream management.

Every stochastic component in the library (workload generators, the DREP
coin flips, steal-victim selection, ...) draws from its own named child
stream derived from one master seed.  Two benefits:

* **Reproducibility** — a run is fully determined by a single integer seed.
* **Decoupling** — adding draws to one component never perturbs another
  component's stream, so experiments stay comparable across code changes.

The implementation uses :class:`numpy.random.SeedSequence` spawning, which
guarantees statistically independent child streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "derive_seed", "stable_hash"]


def stable_hash(name: str) -> int:
    """Map ``name`` to a stable 64-bit integer (independent of PYTHONHASHSEED).

    Python's builtin :func:`hash` is salted per process for strings, which
    would break cross-run reproducibility; we use BLAKE2 instead.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def derive_seed(seed: int, name: str) -> int:
    """Derive a named 63-bit child seed from ``seed``, deterministically.

    The one seed-derivation rule of the library: a golden-ratio (Weyl)
    multiply of the parent seed mixed with :func:`stable_hash` of the
    name.  :meth:`RngFactory.child` and the experiment grid runner
    (:mod:`repro.analysis.pool`) both use it, so a cell labelled
    ``"rep/3"`` sees the same seed whether the grid runs serially, in a
    process pool, or through a hand-rolled loop.  Pinned by a regression
    test — changing this invalidates every recorded sweep.
    """
    return (seed * 0x9E3779B97F4A7C15 + stable_hash(name)) % 2**63


class RngFactory:
    """Create named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  Runs with equal seeds and equal stream names produce
        identical draws regardless of creation order.

    Examples
    --------
    >>> rngs = RngFactory(seed=42)
    >>> g1 = rngs.stream("arrivals")
    >>> g2 = rngs.stream("drep")
    >>> g1 is g2
    False
    >>> bool(RngFactory(42).stream("arrivals").integers(100)
    ...      == RngFactory(42).stream("arrivals").integers(100))
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name``.

        Calling twice with the same name returns two generators in the same
        initial state (identical future draws) — callers own generator state.
        """
        ss = np.random.SeedSequence([self.seed, stable_hash(name)])
        return np.random.Generator(np.random.PCG64(ss))

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per experiment repetition."""
        return RngFactory(seed=derive_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self.seed})"
