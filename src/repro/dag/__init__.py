"""Explicit DAG job model (paper Sec. II) and Cilk-style DAG generators."""

from repro.dag.generators import chain, fork_join, layered_random, spawn_tree, wide
from repro.dag.graph import NO_CHILD, DagJob
from repro.dag.profile import ParallelismProfile
from repro.dag.validate import DagValidationError, validate_dag

__all__ = [
    "DagJob",
    "NO_CHILD",
    "ParallelismProfile",
    "chain",
    "fork_join",
    "layered_random",
    "spawn_tree",
    "wide",
    "validate_dag",
    "DagValidationError",
]
