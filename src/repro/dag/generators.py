"""DAG generators mimicking programs written in Cilk-style languages.

The paper's runtime experiments execute jobs produced by a work-stealing
parallel language (Cilk Plus).  These generators produce the DAG shapes such
programs induce:

* :func:`chain` — a purely sequential job (span == work);
* :func:`spawn_tree` — binary spawn/sync recursion (``cilk_spawn`` of two
  halves), the canonical divide-and-conquer shape;
* :func:`fork_join` — a ``cilk_for``-style loop: repeated parallel segments
  fanned out/in through binary trees so out-degree stays <= 2;
* :func:`layered_random` — random layered DAGs with irregular parallelism;
* :func:`wide` — maximal parallelism: n heavy leaves under a binary fan-out,
  approximating the paper's "fully parallel" extreme within the DAG model.

All generators emit nodes in topological order and respect out-degree <= 2.
"""

from __future__ import annotations

import numpy as np

from repro.dag.graph import NO_CHILD, DagJob

__all__ = ["chain", "spawn_tree", "fork_join", "layered_random", "wide"]


class _Builder:
    """Incremental DAG assembly helper (append nodes, link edges)."""

    def __init__(self) -> None:
        self.weights: list[int] = []
        self.child1: list[int] = []
        self.child2: list[int] = []

    def add(self, weight: int) -> int:
        if weight < 1:
            raise ValueError("node weight must be >= 1")
        self.weights.append(int(weight))
        self.child1.append(NO_CHILD)
        self.child2.append(NO_CHILD)
        return len(self.weights) - 1

    def link(self, parent: int, child: int) -> None:
        if child <= parent:
            raise ValueError("edges must go forward in node order")
        if self.child1[parent] == NO_CHILD:
            self.child1[parent] = child
        elif self.child2[parent] == NO_CHILD:
            self.child2[parent] = child
        else:
            raise ValueError(f"node {parent} already has two children")

    def build(self, name: str) -> DagJob:
        return DagJob(
            weights=np.array(self.weights, dtype=np.int64),
            child1=np.array(self.child1, dtype=np.int64),
            child2=np.array(self.child2, dtype=np.int64),
            name=name,
        )

    def fan_out(self, root: int, count: int, node_weight: int = 1) -> list[int]:
        """Attach a binary tree under ``root`` exposing ``count`` leaves.

        Returns the leaf node ids.  Internal tree nodes get ``node_weight``
        (they model the constant-cost spawn strands of a real runtime).
        """
        frontier = [root]
        while len(frontier) < count:
            nxt: list[int] = []
            for node in frontier:
                if len(frontier) + len(nxt) >= count:
                    nxt.append(node)  # carry through unexpanded
                    continue
                a = self.add(node_weight)
                b = self.add(node_weight)
                self.link(node, a)
                self.link(node, b)
                nxt.append(a)
                nxt.append(b)
            frontier = nxt
        return frontier[:count]

    def fan_in(self, leaves: list[int], node_weight: int = 1) -> int:
        """Merge ``leaves`` through a binary reduction tree; returns the sink."""
        frontier = list(leaves)
        while len(frontier) > 1:
            nxt: list[int] = []
            for i in range(0, len(frontier) - 1, 2):
                j = self.add(node_weight)
                self.link(frontier[i], j)
                self.link(frontier[i + 1], j)
                nxt.append(j)
            if len(frontier) % 2 == 1:
                nxt.append(frontier[-1])
            frontier = nxt
        return frontier[0]


def chain(total_work: int, granularity: int = 1) -> DagJob:
    """A sequential job: a path of nodes totalling ``total_work`` units.

    ``granularity`` is the per-node weight; the final node absorbs the
    remainder so work is exact.
    """
    if total_work < 1:
        raise ValueError("total_work must be >= 1")
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    b = _Builder()
    remaining = total_work
    prev = None
    while remaining > 0:
        w = min(granularity, remaining)
        node = b.add(w)
        if prev is not None:
            b.link(prev, node)
        prev = node
        remaining -= w
    return b.build("chain")


def spawn_tree(depth: int, leaf_weight: int, spawn_weight: int = 1) -> DagJob:
    """Binary divide-and-conquer: spawn two halves, sync, continue.

    Produces ``2**depth`` leaves of weight ``leaf_weight`` under a full
    binary fan-out/fan-in; spawn and sync strands weigh ``spawn_weight``.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if leaf_weight < 1:
        raise ValueError("leaf_weight must be >= 1")
    b = _Builder()

    def rec(d: int) -> tuple[int, int]:
        """Build a subtree; returns (entry node, exit node)."""
        if d == 0:
            node = b.add(leaf_weight)
            return node, node
        entry = b.add(spawn_weight)
        l_in, l_out = rec(d - 1)
        b.link(entry, l_in)
        r_in, r_out = rec(d - 1)
        b.link(entry, r_in)
        exit_ = b.add(spawn_weight)
        b.link(l_out, exit_)
        b.link(r_out, exit_)
        return entry, exit_

    # Note: rec emits the left subtree fully before the right, and parents
    # before children within each spawn, so node order is topological.
    rec(depth)
    return b.build("spawn_tree")


def fork_join(
    segments: int, width: int, strand_work: int, overhead_weight: int = 1
) -> DagJob:
    """``segments`` sequential phases, each a parallel loop of ``width``
    strands of ``strand_work`` units, fanned out/in by binary trees.

    This is the DAG a ``for`` loop of ``cilk_for`` rounds induces.
    """
    if segments < 1 or width < 1 or strand_work < 1:
        raise ValueError("segments, width and strand_work must be >= 1")
    b = _Builder()
    prev_sink: int | None = None
    for _ in range(segments):
        root = b.add(overhead_weight)
        if prev_sink is not None:
            b.link(prev_sink, root)
        fan_leaves = b.fan_out(root, width, overhead_weight)
        strands = []
        for leaf in fan_leaves:
            s = b.add(strand_work)
            b.link(leaf, s)
            strands.append(s)
        prev_sink = b.fan_in(strands, overhead_weight)
    return b.build("fork_join")


def layered_random(
    layers: int,
    max_width: int,
    max_node_weight: int,
    rng: np.random.Generator,
) -> DagJob:
    """Random layered DAG with irregular, time-varying parallelism.

    Each layer has a random width in ``[1, max_width]``; every node links to
    one or two random nodes in the next layer, and orphaned next-layer nodes
    get a parent from the current layer if in-degree room remains, else from
    a chain of filler nodes.  A single source node roots the DAG.
    """
    if layers < 1 or max_width < 1 or max_node_weight < 1:
        raise ValueError("layers, max_width and max_node_weight must be >= 1")
    b = _Builder()
    source = b.add(int(rng.integers(1, max_node_weight + 1)))
    prev = [source]
    for _ in range(layers):
        width = int(rng.integers(1, max_width + 1))
        cur = [b.add(int(rng.integers(1, max_node_weight + 1))) for _ in range(width)]
        def out_degree(u: int) -> int:
            return (b.child1[u] != NO_CHILD) + (b.child2[u] != NO_CHILD)

        # Guaranteed coverage: give every current node one parent, drawn
        # from prev nodes (in shuffled order) and, once those run out of
        # out-degree room, from already-covered current nodes with a lower
        # index.  Each covered node adds two units of out-capacity while
        # consuming one, so the pool never empties.
        donor_pool = [prev[int(i)] for i in rng.permutation(len(prev))]
        for node in cur:
            while out_degree(donor_pool[0]) >= 2:
                donor_pool.pop(0)
            b.link(donor_pool[0], node)
            donor_pool.append(node)
        # Extra random cross edges from prev nodes with spare out-degree.
        for u in prev:
            if out_degree(u) >= 2 or rng.random() < 0.5:
                continue
            target = cur[int(rng.integers(0, len(cur)))]
            if b.child1[u] == target or b.child2[u] == target:
                continue  # avoid duplicate edges
            b.link(u, target)
        prev = cur
    return b.build("layered_random")


def wide(width: int, strand_work: int, overhead_weight: int = 1) -> DagJob:
    """Maximal-parallelism job: one fork-join phase of ``width`` strands."""
    return fork_join(1, width, strand_work, overhead_weight)
