"""Compact DAG representation for parallel jobs.

The paper models a parallel program as a DAG whose nodes are sequential
instruction strands and whose edges are dependences (Sec. I); following the
paper (Sec. IV-A) every node has **out-degree at most two** — "the system
can only spawn a constant number of nodes in constant time", and any
constant out-degree converts to two without asymptotic change in work or
span.

``DagJob`` stores the DAG as flat numpy arrays (two child slots per node
with ``-1`` sentinels) so the runtime simulator can walk it with O(1)
bookkeeping per executed node.  Nodes are kept in a topological order
(every edge goes from a lower to a higher index); generators guarantee
this, :func:`repro.dag.validate.validate_dag` checks it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DagJob", "NO_CHILD"]

NO_CHILD = -1


@dataclass(frozen=True)
class DagJob:
    """One parallel job's DAG.

    Attributes
    ----------
    weights:
        ``int64[n]`` — processing time of each node in unit steps (>= 1).
        The runtime simulator executes one unit per worker per time step.
    child1, child2:
        ``int64[n]`` — children of each node, ``NO_CHILD`` when absent.
        ``child2 != NO_CHILD`` implies ``child1 != NO_CHILD``.
    name:
        Generator tag, for diagnostics.
    """

    weights: np.ndarray
    child1: np.ndarray
    child2: np.ndarray
    name: str = "dag"

    def __post_init__(self) -> None:
        w = np.ascontiguousarray(self.weights, dtype=np.int64)
        c1 = np.ascontiguousarray(self.child1, dtype=np.int64)
        c2 = np.ascontiguousarray(self.child2, dtype=np.int64)
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "child1", c1)
        object.__setattr__(self, "child2", c2)
        if not (len(w) == len(c1) == len(c2)):
            raise ValueError("weights/child1/child2 must have equal length")
        if len(w) == 0:
            raise ValueError("a DAG job must have at least one node")
        if (w < 1).any():
            raise ValueError("node weights must be >= 1")

    @property
    def n_nodes(self) -> int:
        return int(len(self.weights))

    @property
    def work(self) -> int:
        """Total work :math:`W_i` — the sum of all node weights (Sec. II)."""
        return int(self.weights.sum())

    @property
    def span(self) -> int:
        """Critical-path length :math:`C_i` — the heaviest path (Sec. II).

        Computed by dynamic programming over the topological node order,
        then cached on the instance (the DAG is immutable and results
        assembly asks for the span of every job).
        """
        cached = self.__dict__.get("_span")
        if cached is not None:
            return cached
        n = self.n_nodes
        w = self.weights.tolist()
        c1 = self.child1.tolist()
        c2 = self.child2.tolist()
        # best_prefix[v] = heaviest path ending just before v
        best_prefix = [0] * n
        best = 0
        for u in range(n):
            du = best_prefix[u] + w[u]
            if du > best:
                best = du
            c = c1[u]
            if c != NO_CHILD and best_prefix[c] < du:
                best_prefix[c] = du
            c = c2[u]
            if c != NO_CHILD and best_prefix[c] < du:
                best_prefix[c] = du
        object.__setattr__(self, "_span", best)
        return best

    def in_degrees(self) -> np.ndarray:
        """``int64[n]`` — number of parents per node (cached; do not mutate)."""
        cached = self.__dict__.get("_indeg")
        if cached is None:
            cached = np.zeros(self.n_nodes, dtype=np.int64)
            for arr in (self.child1, self.child2):
                valid = arr[arr != NO_CHILD]
                np.add.at(cached, valid, 1)
            object.__setattr__(self, "_indeg", cached)
        return cached

    def sources(self) -> np.ndarray:
        """Indices of nodes with no parents (cached; do not mutate)."""
        cached = self.__dict__.get("_sources")
        if cached is None:
            cached = np.flatnonzero(self.in_degrees() == 0)
            object.__setattr__(self, "_sources", cached)
        return cached

    def children_of(self, u: int) -> tuple[int, ...]:
        """Children of node ``u`` as a 0-, 1- or 2-tuple."""
        out = []
        if self.child1[u] != NO_CHILD:
            out.append(int(self.child1[u]))
        if self.child2[u] != NO_CHILD:
            out.append(int(self.child2[u]))
        return tuple(out)

    def edges(self) -> list[tuple[int, int]]:
        """All edges as (parent, child) pairs, for validation and tests."""
        out: list[tuple[int, int]] = []
        for u in range(self.n_nodes):
            for c in self.children_of(u):
                out.append((u, c))
        return out

    def node_depths(self) -> np.ndarray:
        """``d(u)`` for every node: heaviest path *ending* at u (Sec. IV-B).

        Used by the steal potential, where a node's weight is
        ``w(u) = C_i - d(u)``.
        """
        n = self.n_nodes
        best_prefix = np.zeros(n, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        c1, c2, w = self.child1, self.child2, self.weights
        for u in range(n):
            du = best_prefix[u] + w[u]
            depth[u] = du
            for c in (c1[u], c2[u]):
                if c != NO_CHILD and best_prefix[c] < du:
                    best_prefix[c] = du
        return depth

    def to_dot(self, highlight_critical: bool = True) -> str:
        """Graphviz DOT rendering of the DAG (debugging/documentation).

        Nodes are labeled ``id:weight``; with ``highlight_critical`` the
        nodes on one critical path are drawn bold red.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;", "  node [shape=box];"]
        critical: set[int] = set()
        if highlight_critical:
            # walk one heaviest path backwards from the deepest node
            depths = self.node_depths()
            v = int(depths.argmax())
            critical.add(v)
            parents: dict[int, list[int]] = {}
            for u, c in self.edges():
                parents.setdefault(c, []).append(u)
            while True:
                preds = parents.get(v, [])
                best = None
                for u in preds:
                    if depths[u] == depths[v] - self.weights[v]:
                        best = u
                        break
                if best is None:
                    break
                critical.add(best)
                v = best
        for u in range(self.n_nodes):
            style = (
                ' color=red penwidth=2' if u in critical else ""
            )
            lines.append(f'  n{u} [label="{u}:{int(self.weights[u])}"{style}];')
        for u, c in self.edges():
            style = " [color=red penwidth=2]" if u in critical and c in critical else ""
            lines.append(f"  n{u} -> n{c}{style};")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DagJob(name={self.name!r}, nodes={self.n_nodes}, "
            f"work={self.work}, span={self.span})"
        )
