"""Parallelism profiles: how much parallelism a DAG exposes as it runs.

The paper's flow-level simulations assume "all jobs are equally parallel
since running accurate simulations with different and changing
parallelisms is difficult" (Sec. V-A).  This module removes that
restriction for the flow-level simulator: a
:class:`ParallelismProfile` maps *attained work* to the number of
processors the job can exploit at that point, derived from the DAG's
infinite-processor (greedy) execution:

* on infinitely many processors every node ``u`` runs during the
  interval ``(d(u) - w(u), d(u)]`` where ``d(u)`` is its depth;
* the instantaneous parallelism at time ``t`` is the number of running
  nodes, a piecewise-constant function over ``[0, span]``;
* attained work is its integral, so inverting it yields parallelism as
  a (piecewise-constant) function of attained work.

This is the classic work/span view (the profile's average equals
``work / span``) and gives the flow-level engine exact event times via
cap-breakpoint timers (see ``repro.flowsim.engine``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.graph import DagJob

__all__ = ["ParallelismProfile"]


@dataclass(frozen=True)
class ParallelismProfile:
    """Piecewise-constant parallelism as a function of attained work.

    Attributes
    ----------
    work_breaks:
        ``float[k+1]`` increasing, from 0 to total work — segment
        boundaries in attained-work space.
    parallelism:
        ``float[k]`` — parallelism available within each segment (>= 1).
    """

    work_breaks: np.ndarray
    parallelism: np.ndarray

    def __post_init__(self) -> None:
        wb = np.ascontiguousarray(self.work_breaks, dtype=float)
        par = np.ascontiguousarray(self.parallelism, dtype=float)
        object.__setattr__(self, "work_breaks", wb)
        object.__setattr__(self, "parallelism", par)
        if wb.ndim != 1 or par.ndim != 1 or wb.size != par.size + 1:
            raise ValueError("need k+1 work breaks for k parallelism segments")
        if wb[0] != 0 or (np.diff(wb) <= 0).any():
            raise ValueError("work_breaks must start at 0 and increase")
        if (par < 1).any():
            raise ValueError("parallelism must be >= 1 everywhere")

    @property
    def total_work(self) -> float:
        return float(self.work_breaks[-1])

    @property
    def span(self) -> float:
        """Time to drain the profile at full parallelism — equals the
        DAG's critical path by construction."""
        seg = np.diff(self.work_breaks)
        return float((seg / self.parallelism).sum())

    @property
    def average_parallelism(self) -> float:
        return self.total_work / self.span

    def cap_at(self, attained: float, tol: float = 0.0) -> float:
        """Parallelism available once ``attained`` work is done.

        ``tol`` makes the lookup robust to float drift: an attained value
        within ``tol`` below a breakpoint counts as having crossed it
        (simulators accumulate ``remaining -= rate*dt`` error, so landing
        *exactly* on a break is numerically impossible).
        """
        if attained < -tol:
            raise ValueError("attained must be >= 0")
        probe = attained + tol
        if probe >= self.total_work:
            return float(self.parallelism[-1])
        idx = int(np.searchsorted(self.work_breaks, probe, side="right")) - 1
        idx = min(max(idx, 0), self.parallelism.size - 1)
        return float(self.parallelism[idx])

    def next_break_after(self, attained: float, tol: float = 0.0) -> float | None:
        """Attained-work level where the cap next changes, or ``None``.

        Breakpoints within ``tol`` of ``attained`` are treated as already
        crossed (matching :meth:`cap_at`'s view), so the returned break is
        always strictly ahead by more than ``tol``.
        """
        probe = attained + tol
        idx = int(np.searchsorted(self.work_breaks, probe, side="right"))
        cur = self.cap_at(attained, tol)
        while idx < self.work_breaks.size - 1:
            brk = float(self.work_breaks[idx])
            if self.cap_at(brk, tol) != cur:
                return brk
            idx += 1
        return None

    @classmethod
    def from_dag(cls, dag: DagJob) -> "ParallelismProfile":
        """Profile of the infinite-processor greedy execution of ``dag``."""
        depths = dag.node_depths().astype(np.int64)
        starts = depths - dag.weights  # node u runs in (start, depth]
        span = int(depths.max())
        # parallelism over unit time steps 0..span-1: node u is running
        # during steps start..depth-1
        delta = np.zeros(span + 1, dtype=np.int64)
        np.add.at(delta, starts, 1)
        np.add.at(delta, depths, -1)
        par_t = np.cumsum(delta[:-1])  # parallelism at each unit step
        if (par_t < 1).any():
            raise ValueError("profile gap: DAG has an idle instant")
        # compress equal consecutive steps into segments; work per step
        # equals parallelism (every running node does one unit per step)
        breaks = [0.0]
        pars = []
        seg_par = int(par_t[0])
        seg_work = 0
        for p in par_t:
            if int(p) != seg_par:
                breaks.append(breaks[-1] + seg_work)
                pars.append(float(seg_par))
                seg_par = int(p)
                seg_work = 0
            seg_work += int(p)
        breaks.append(breaks[-1] + seg_work)
        pars.append(float(seg_par))
        return cls(
            work_breaks=np.array(breaks, dtype=float),
            parallelism=np.array(pars, dtype=float),
        )

    @classmethod
    def constant(cls, work: float, parallelism: float) -> "ParallelismProfile":
        """Fixed-parallelism profile (testing and the paper's settings)."""
        if work <= 0:
            raise ValueError("work must be > 0")
        return cls(
            work_breaks=np.array([0.0, float(work)]),
            parallelism=np.array([float(parallelism)]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelismProfile(segments={self.parallelism.size}, "
            f"work={self.total_work:g}, span={self.span:g}, "
            f"avg_par={self.average_parallelism:.2f})"
        )
