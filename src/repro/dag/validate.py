"""Structural validation for :class:`repro.dag.DagJob`.

The runtime simulator's correctness rests on three structural properties the
paper assumes (Sec. II, IV-A): the graph is acyclic, nodes have out-degree
at most two, and node weights are positive.  We additionally require nodes
to be stored in a topological order (every edge forward), which the
simulator exploits, and we cross-check the work/span accessors.
"""

from __future__ import annotations

import numpy as np

from repro.dag.graph import NO_CHILD, DagJob

__all__ = ["validate_dag", "DagValidationError"]


class DagValidationError(ValueError):
    """Raised when a DAG violates a structural invariant."""


def validate_dag(dag: DagJob) -> None:
    """Check all structural invariants; raise :class:`DagValidationError`.

    Checks performed:

    1. child indices in range or ``NO_CHILD``;
    2. every edge goes from a lower to a higher node index (which implies
       acyclicity);
    3. ``child2`` set implies ``child1`` set, and the two differ unless
       both are ``NO_CHILD`` (no duplicate edges);
    4. weights >= 1 (enforced at construction, re-checked here);
    5. ``1 <= span <= work``;
    6. every node is reachable from some source (no disconnected garbage
       that would leave the job unfinishable is possible here by
       construction, but unreachable nodes with parents forming a cycle are
       ruled out by check 2; we still verify every non-source node has a
       parent edge pointing at it).
    """
    n = dag.n_nodes
    for name, arr in (("child1", dag.child1), ("child2", dag.child2)):
        bad = (arr != NO_CHILD) & ((arr < 0) | (arr >= n))
        if bad.any():
            raise DagValidationError(f"{name} contains out-of-range indices")

    idx = np.arange(n)
    for name, arr in (("child1", dag.child1), ("child2", dag.child2)):
        has = arr != NO_CHILD
        if (arr[has] <= idx[has]).any():
            raise DagValidationError(f"{name} contains a non-forward edge")

    orphan_second = (dag.child2 != NO_CHILD) & (dag.child1 == NO_CHILD)
    if orphan_second.any():
        raise DagValidationError("child2 set while child1 empty")

    dup = (dag.child1 != NO_CHILD) & (dag.child1 == dag.child2)
    if dup.any():
        raise DagValidationError("duplicate edge (child1 == child2)")

    if (dag.weights < 1).any():
        raise DagValidationError("node weight < 1")

    work, span = dag.work, dag.span
    if not (1 <= span <= work):
        raise DagValidationError(f"span/work inconsistent: span={span}, work={work}")

    # every non-source node must be someone's child
    deg = dag.in_degrees()
    sources = deg == 0
    if n > 1 and sources.sum() == n:
        raise DagValidationError("multi-node DAG with no edges at all")
