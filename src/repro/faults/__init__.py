"""Fault injection across both simulators (machine churn, overload, loss).

The paper's guarantees are robustness claims: DREP stays competitive
*non-clairvoyantly* and bounds processor switches at O(mn) (Theorems
1.1-1.2) — but both our simulators and the serving layer historically ran
on a perfectly reliable machine.  This package makes failure a first-class
input:

* :mod:`repro.faults.plan` — declarative, seeded :class:`FaultPlan`
  descriptions (processor crash/recover traces, transient capacity
  degradation, straggler slowdowns, job abort-and-resubmit events), JSON
  round-trippable and generated from :class:`repro.core.rng.RngFactory`
  streams so runs stay reproducible;
* :mod:`repro.faults.timeline` — the compiled, stateful form the engines
  consume: a piecewise-constant machine state for
  :class:`repro.flowsim.FlowStepper` and an integer-step agenda for
  :class:`repro.wsim.runtime.WsRuntime`;
* :mod:`repro.faults.experiment` — the resilience experiment comparing
  policies under crash traces against their no-fault baselines, emitting
  BENCH-style JSON (imported lazily; see ``drep-sim faults``).

Fault semantics per engine are documented in ``docs/robustness.md``.
"""

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    named_fault_plans,
    random_crash_plan,
)
from repro.faults.timeline import FaultTimeline, step_agenda

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultTimeline",
    "named_fault_plans",
    "random_crash_plan",
    "step_agenda",
]


def __getattr__(name: str):
    # experiment pulls in repro.flowsim (which must stay importable without
    # this package); load it lazily to keep the dependency one-directional
    if name in ("resilience_report", "run_resilience_experiment"):
        from repro.faults import experiment

        return getattr(experiment, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
