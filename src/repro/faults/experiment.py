"""Resilience experiment: scheduling policies under crash traces.

The paper's competitiveness story (Theorems 1.1-1.2) is proved on a
fixed machine; this experiment asks the practical follow-up — *how
gracefully does each policy degrade when processors crash under it?*
For every (policy, crash plan) pair the same trace is simulated twice on
:func:`repro.flowsim.engine.simulate`: once fault-free (the baseline)
and once with the plan injected, and the report carries the ratios that
matter:

* ``flow_degradation`` — mean flow time with faults / without, the
  headline robustness number;
* ``switch_degradation`` — same ratio for processor switches
  (preemptions), probing whether crash-driven reshuffles blow through
  DREP's O(mn) switch budget in practice.

All plans are built once per machine size from a shared seed, so every
policy faces the *identical* crash trace, and two invocations with the
same arguments produce bit-identical reports (the repro contract of
this codebase).  The JSON shape (``schema: "resilience/1"``) mirrors the
BENCH trajectory files: a flat ``rows`` list plus a ``summary`` block.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.pool import run_grid
from repro.core.job import ParallelismMode
from repro.faults.plan import FaultPlan, named_fault_plans

__all__ = ["run_resilience_experiment", "resilience_report"]

DEFAULT_POLICIES = ("drep", "srpt", "rr")
DEFAULT_PLANS = ("rolling", "half-down", "random")


def _ratio(faulted: float, baseline: float) -> float:
    if baseline > 0:
        return faulted / baseline
    return float("inf") if faulted > 0 else 1.0


@dataclass(frozen=True)
class _ResilienceCell:
    """One (policy, plan) simulation, picklable for the grid runner.

    ``plan=None`` is the fault-free baseline.  The worker regenerates the
    trace from its parameters (memoized per process) and the plan ships
    inside the cell — :class:`repro.faults.plan.FaultPlan` is frozen
    plain data, so serializing one per cell is cheap and exact.
    """

    m: int
    n_jobs: int
    distribution: str
    load: float
    mode: str
    seed: int
    policy: str
    plan: FaultPlan | None = None

    def run(self) -> dict:
        from repro.analysis.parallel import memoized_trace
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import policy_by_name

        trace = memoized_trace(
            self.distribution, self.load, self.m, self.n_jobs, self.mode, self.seed
        )
        result = simulate(
            trace,
            self.m,
            policy_by_name(self.policy),
            seed=self.seed,
            faults=self.plan,
        )
        finfo = result.extra.get("faults", {})
        return {
            "scheduler": result.scheduler,
            "mean_flow": result.mean_flow,
            "preemptions": result.preemptions,
            "makespan": result.makespan,
            "fault_points": finfo.get("points", 0),
            "faults_applied": finfo.get("applied", 0),
            "lost_work": finfo.get("lost_work", 0.0),
        }


def _run_resilience_cell(cell: _ResilienceCell) -> dict:
    return cell.run()


def run_resilience_experiment(
    m: int = 8,
    n_jobs: int = 400,
    distribution: str = "finance",
    load: float = 0.7,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    plans: tuple[str, ...] | dict[str, FaultPlan] = DEFAULT_PLANS,
    seed: int = 0,
    mode: ParallelismMode | str = ParallelismMode.SEQUENTIAL,
    workers: int | None = 1,
) -> list[dict]:
    """Rows of (policy × fault plan) degradation vs. no-fault baselines.

    ``plans`` is either a tuple of names from
    :func:`repro.faults.plan.named_fault_plans` or an explicit mapping
    ``{name: FaultPlan}``.  Named plans are sized to the *longest*
    baseline makespan across the swept policies, so every crash lands
    inside every policy's busy period.

    ``workers`` shards the simulations over
    :func:`repro.analysis.pool.run_grid` in two waves (baselines, then
    faulted runs — the plans depend on the baseline horizon); rows are
    assembled in the parent in the serial nested order, so the output is
    byte-identical for every worker count.
    """
    if isinstance(mode, str):
        mode = ParallelismMode(mode)
    mode_s = mode.value

    def _cell(policy: str, plan: FaultPlan | None = None) -> _ResilienceCell:
        return _ResilienceCell(
            m=m,
            n_jobs=n_jobs,
            distribution=distribution,
            load=load,
            mode=mode_s,
            seed=seed,
            policy=policy,
            plan=plan,
        )

    base_rows = run_grid(
        _run_resilience_cell, [_cell(key) for key in policies], workers=workers
    )
    baselines = dict(zip(policies, base_rows))
    if isinstance(plans, dict):
        plan_map = dict(plans)
    else:
        horizon = max(r["makespan"] for r in base_rows)
        named = named_fault_plans(m, horizon, seed=seed)
        unknown = sorted(set(plans) - set(named))
        if unknown:
            raise ValueError(
                f"unknown fault plan(s) {unknown}; available: {sorted(named)}"
            )
        plan_map = {name: named[name] for name in plans}
    grid = [
        (key, plan_name, plan)
        for key in policies
        for plan_name, plan in plan_map.items()
    ]
    fault_rows = run_grid(
        _run_resilience_cell,
        [_cell(key, plan) for key, _, plan in grid],
        workers=workers,
    )
    rows: list[dict] = []
    for (key, plan_name, _), faulted in zip(grid, fault_rows):
        base = baselines[key]
        rows.append(
            {
                "policy": key,
                "scheduler": faulted["scheduler"],
                "plan": plan_name,
                "mean_flow": faulted["mean_flow"],
                "baseline_mean_flow": base["mean_flow"],
                "flow_degradation": _ratio(
                    faulted["mean_flow"], base["mean_flow"]
                ),
                "switches": faulted["preemptions"],
                "baseline_switches": base["preemptions"],
                "switch_degradation": _ratio(
                    float(faulted["preemptions"]), float(base["preemptions"])
                ),
                "makespan": faulted["makespan"],
                "baseline_makespan": base["makespan"],
                "fault_points": faulted["fault_points"],
                "faults_applied": faulted["faults_applied"],
                "lost_work": faulted["lost_work"],
            }
        )
    return rows


def resilience_report(
    rows: list[dict],
    m: int,
    n_jobs: int,
    distribution: str,
    load: float,
    seed: int,
) -> dict:
    """BENCH-style JSON document wrapping experiment rows."""
    by_plan: dict[str, list[dict]] = {}
    for row in rows:
        by_plan.setdefault(row["plan"], []).append(row)
    summary = {
        plan: {
            "worst_flow_degradation": max(
                r["flow_degradation"] for r in plan_rows
            ),
            "best_policy": min(plan_rows, key=lambda r: r["mean_flow"])[
                "policy"
            ],
            "policies": {r["policy"]: r["flow_degradation"] for r in plan_rows},
        }
        for plan, plan_rows in by_plan.items()
    }
    return {
        "schema": "resilience/1",
        "params": {
            "m": m,
            "n_jobs": n_jobs,
            "distribution": distribution,
            "load": load,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def write_resilience_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
