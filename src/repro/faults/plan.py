"""Declarative fault plans: what goes wrong, when, and for how long.

A :class:`FaultPlan` is an immutable, JSON-round-trippable list of
:class:`FaultEvent` records.  Plans are *descriptions*, not machinery:
the engines consume them through :mod:`repro.faults.timeline`, which
compiles a plan into the event agenda a particular simulator steps over.

Event kinds
-----------

``crash``
    Processor/worker ``proc`` goes down at ``t`` and recovers at
    ``t + duration``.  The flow simulator shrinks ``m(t)``; the
    work-stealing runtime kills the worker (its in-progress node loses
    its partial execution and its deque is handed over for stealing).
``degrade``
    The whole machine runs at ``factor`` times nominal speed during
    ``[t, t + duration)`` — thermal throttling, a noisy neighbor, a
    shared-cache storm.
``straggle``
    Processor ``proc`` alone runs at ``factor`` speed during the window.
    The flow simulator folds this into the fluid machine speed; the
    work-stealing runtime rejects it (its workers are unit-speed by
    construction — use the static ``speeds=`` vector for heterogeneity).
``abort``
    Job ``job_id`` is killed at ``t`` (all progress lost) and resubmitted
    ``resubmit_after`` time units later with its full work.  Flow time is
    still measured from the job's *original* release — an abort shows up
    as latency, exactly as a user would experience it.
``displace``
    Same mechanics as ``abort`` — job ``job_id`` loses its progress at
    ``t`` and re-enters the queue ``resubmit_after`` later — but the
    *cause* is capacity management (a scale-down evicting work), not a
    failure, so the engines account the redone work separately
    (``displaced_work`` + a requeue log instead of ``lost_work``).  The
    autoscale controller pushes these dynamically; plans may also script
    them.

Determinism: a plan is plain data, and the random generators below draw
from dedicated :class:`repro.core.rng.RngFactory` streams, so the same
seed always yields the same plan and the same seed + plan always yields
the same simulation trajectory (tested in ``tests/faults/``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.core.rng import RngFactory

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "named_fault_plans",
    "random_crash_plan",
]

_KINDS = ("crash", "degrade", "straggle", "abort", "displace")


@dataclass(frozen=True)
class FaultEvent:
    """One fault: a kind, a start time, and kind-specific parameters."""

    kind: str
    t: float
    duration: float = 0.0
    proc: int | None = None
    factor: float = 1.0
    job_id: int | None = None
    resubmit_after: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {_KINDS}")
        if not self.t >= 0:
            raise ValueError("fault time t must be >= 0")
        if self.kind in ("crash", "degrade", "straggle"):
            if not self.duration > 0:
                raise ValueError(f"{self.kind} needs duration > 0")
        if self.kind in ("crash", "straggle"):
            if self.proc is None or self.proc < 0:
                raise ValueError(f"{self.kind} needs proc >= 0")
        if self.kind in ("degrade", "straggle"):
            if not 0 < self.factor <= 1:
                raise ValueError(f"{self.kind} factor must be in (0, 1]")
        if self.kind in ("abort", "displace"):
            if self.job_id is None or self.job_id < 0:
                raise ValueError(f"{self.kind} needs job_id >= 0")
            if not self.resubmit_after >= 0:
                raise ValueError("resubmit_after must be >= 0")

    @property
    def end(self) -> float:
        """End of the fault window (``t`` itself for point events)."""
        if self.kind in ("abort", "displace"):
            return self.t + self.resubmit_after
        return self.t + self.duration

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "t": self.t}
        if self.kind not in ("abort", "displace"):
            out["duration"] = self.duration
        if self.proc is not None:
            out["proc"] = self.proc
        if self.kind in ("degrade", "straggle"):
            out["factor"] = self.factor
        if self.kind in ("abort", "displace"):
            out["job_id"] = self.job_id
            out["resubmit_after"] = self.resubmit_after
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            t=float(data["t"]),
            duration=float(data.get("duration", 0.0)),
            proc=data.get("proc"),
            factor=float(data.get("factor", 1.0)),
            job_id=data.get("job_id"),
            resubmit_after=float(data.get("resubmit_after", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault events plus a display name."""

    events: tuple[FaultEvent, ...] = ()
    name: str = "plan"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"events must be FaultEvent, got {type(ev).__name__}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Latest time any fault in the plan is still in effect."""
        return max((ev.end for ev in self.events), default=0.0)

    def kinds(self) -> set[str]:
        return {ev.kind for ev in self.events}

    def validate_for(self, m: int) -> None:
        """Reject plans that name processors the machine does not have."""
        for ev in self.events:
            if ev.proc is not None and ev.proc >= m:
                raise ValueError(
                    f"{ev.kind} targets proc {ev.proc} on an m={m} machine"
                )

    def timeline(self, m: int):
        """Compile into a fresh (single-use) flow-level timeline."""
        from repro.faults.timeline import FaultTimeline

        return FaultTimeline(self, m)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "meta": dict(self.meta),
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in data["events"]),
            name=data.get("name", "plan"),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


# -- generators -------------------------------------------------------------


def random_crash_plan(
    m: int,
    horizon: float,
    seed: int = 0,
    *,
    crash_rate: float = 0.001,
    mttr: float = 50.0,
    name: str = "random-crashes",
) -> FaultPlan:
    """Poisson processor crashes with exponential repair times.

    Each of the ``m`` processors independently fails at rate
    ``crash_rate`` (crashes per sim-time unit) over ``[0, horizon)``;
    each outage lasts an exponential time with mean ``mttr``, clipped so
    a processor's outages never overlap.  Drawn from the dedicated
    ``faults/<name>`` stream of :class:`~repro.core.rng.RngFactory`, so
    the plan is a pure function of its arguments.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    rng = RngFactory(seed).stream(f"faults/{name}")
    events: list[FaultEvent] = []
    for proc in range(m):
        t = 0.0
        while True:
            gap = float(rng.exponential(1.0 / crash_rate)) if crash_rate > 0 else math.inf
            t += gap
            if t >= horizon:
                break
            duration = max(1e-6, float(rng.exponential(mttr)))
            events.append(FaultEvent("crash", t=t, duration=duration, proc=proc))
            t += duration
    events.sort(key=lambda ev: (ev.t, ev.proc if ev.proc is not None else -1))
    return FaultPlan(
        events=tuple(events),
        name=name,
        meta={"m": m, "horizon": horizon, "seed": seed,
              "crash_rate": crash_rate, "mttr": mttr},
    )


def named_fault_plans(m: int, horizon: float, seed: int = 0) -> dict[str, FaultPlan]:
    """The standing crash traces the resilience experiment sweeps.

    * ``rolling`` — one processor at a time goes down, staggered evenly
      across the horizon (a rolling restart / kernel-upgrade wave);
    * ``half-down`` — ``m // 2`` processors are simultaneously dead for
      the middle third of the horizon (a rack failure);
    * ``brownout`` — full capacity, but the machine runs at half speed
      for the middle half plus two stragglers (flow-level only);
    * ``random`` — seeded Poisson crashes (:func:`random_crash_plan`).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    third = horizon / 3.0
    rolling = tuple(
        FaultEvent(
            "crash",
            t=(p + 0.5) * horizon / m,
            duration=max(1e-6, horizon / (2 * m)),
            proc=p,
        )
        for p in range(m)
    )
    half = tuple(
        FaultEvent("crash", t=third, duration=third, proc=p)
        for p in range(max(1, m // 2))
    )
    brown = (
        FaultEvent("degrade", t=horizon / 4, duration=horizon / 2, factor=0.5),
        FaultEvent(
            "straggle", t=horizon / 8, duration=horizon / 4, proc=0, factor=0.25
        ),
        FaultEvent(
            "straggle",
            t=horizon / 2,
            duration=horizon / 4,
            proc=m - 1,
            factor=0.5,
        ),
    )
    return {
        "rolling": FaultPlan(rolling, name="rolling", meta={"m": m, "horizon": horizon}),
        "half-down": FaultPlan(half, name="half-down", meta={"m": m, "horizon": horizon}),
        "brownout": FaultPlan(brown, name="brownout", meta={"m": m, "horizon": horizon}),
        "random": random_crash_plan(
            m, horizon, seed=seed, crash_rate=2.0 / horizon, mttr=horizon / 10,
            name="random",
        ),
    }
