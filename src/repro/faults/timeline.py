"""Compiled fault state the engines actually step over.

:class:`FaultTimeline` is the flow-level form: interval events from a
:class:`~repro.faults.plan.FaultPlan` become *point* actions (``crash`` /
``recover``, ``degrade_on`` / ``degrade_off``, ...) on a heap, and the
timeline tracks the resulting piecewise-constant machine state — the
up-processor count ``m_eff`` and the fluid speed factor.  The engine asks
for :meth:`next_time` to bound its constant-rate segments, pops due
actions with :meth:`pop_due` exactly when the clock reaches them, and
pushes dynamically scheduled job resubmissions with :meth:`push_resume`.

A timeline is **single-use**: it mutates as the run consumes it.  Build a
fresh one per simulation (``plan.timeline(m)``), or snapshot/restore it
mid-run via :meth:`state_dict` / :meth:`from_state_dict` together with
the engine's own checkpoint.

:func:`step_agenda` is the work-stealing form: the same compilation, but
times rounded up to integer steps and only the kinds the discrete runtime
supports (``crash`` and ``abort`` — per-worker speed changes belong to
the runtime's static ``speeds`` vector).

Fluid straggler/degradation semantics (flow level): crashes change the
integer processor count policies see; stragglers and degradation combine
into one machine-wide speed multiplier — ``degrade`` factors multiply,
and a straggling processor contributes ``factor`` instead of 1 to the up
capacity, i.e. ``speed_factor = Π degrade · (Σ_up f_p) / m_eff``.  This
keeps the simulation event-exact (rates stay piecewise constant) at the
cost of spreading a straggler's slowdown evenly, which is the standard
fluid approximation; the work-stealing runtime models per-worker effects
exactly instead.
"""

from __future__ import annotations

import heapq
import math

from repro.faults.plan import FaultPlan

__all__ = ["FaultTimeline", "step_agenda"]

#: relative tolerance when deciding an action is "due now" (matches the
#: flow engine's arrival-admission tolerance)
_DUE_TOL = 1e-15


def _point_actions(plan: FaultPlan) -> list[tuple[float, int, dict]]:
    """Expand interval events into (time, seq, action) points."""
    points: list[tuple[float, int, dict]] = []
    seq = 0

    def add(t: float, action: dict) -> None:
        nonlocal seq
        points.append((float(t), seq, action))
        seq += 1

    for ev in plan.events:
        if ev.kind == "crash":
            add(ev.t, {"kind": "crash", "proc": int(ev.proc)})
            add(ev.t + ev.duration, {"kind": "recover", "proc": int(ev.proc)})
        elif ev.kind == "degrade":
            add(ev.t, {"kind": "degrade_on", "factor": float(ev.factor)})
            add(ev.t + ev.duration, {"kind": "degrade_off", "factor": float(ev.factor)})
        elif ev.kind == "straggle":
            add(ev.t, {"kind": "straggle_on", "proc": int(ev.proc),
                       "factor": float(ev.factor)})
            add(ev.t + ev.duration, {"kind": "straggle_off", "proc": int(ev.proc),
                                     "factor": float(ev.factor)})
        elif ev.kind == "abort":
            add(ev.t, {"kind": "abort", "job_id": int(ev.job_id),
                       "resubmit_after": float(ev.resubmit_after)})
        elif ev.kind == "displace":
            add(ev.t, {"kind": "displace", "job_id": int(ev.job_id),
                       "resubmit_after": float(ev.resubmit_after)})
    return points


class FaultTimeline:
    """Stateful, single-use fault agenda for the flow-level engine."""

    def __init__(self, plan: FaultPlan, m: int) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        plan.validate_for(m)
        self.plan = plan
        self.m = int(m)
        self._agenda = _point_actions(plan)
        heapq.heapify(self._agenda)
        #: total static points compiled (for engine event budgets)
        self.n_points = len(self._agenda)
        self._seq = self.n_points
        self._down: dict[int, int] = {}  # proc -> crash depth
        self._slow: dict[int, list[float]] = {}  # proc -> straggle factors
        self._degrade: list[float] = []
        self.applied = 0

    # -- schedule ----------------------------------------------------------

    def next_time(self) -> float | None:
        """Time of the earliest pending action, or ``None`` when exhausted."""
        return self._agenda[0][0] if self._agenda else None

    def push_resume(self, t: float, job_id: int) -> None:
        """Schedule an aborted/displaced job's re-arrival at time ``t``.

        Resumes ride on the event budget their triggering point already
        paid for, so they do not count toward :attr:`n_points`.
        """
        heapq.heappush(
            self._agenda, (float(t), self._seq, {"kind": "resume", "job_id": int(job_id)})
        )
        self._seq += 1

    def push_action(self, t: float, action: dict) -> None:
        """Schedule an arbitrary point action at time ``t``.

        This is the dynamic counterpart of the compiled plan: closed-loop
        controllers push ``crash``/``recover`` pairs to move capacity and
        ``displace`` actions to evict work ahead of a scale-down.  Every
        dynamic push counts toward :attr:`n_points` so engine event
        budgets stay wide enough for the extra agenda traffic.
        """
        heapq.heappush(self._agenda, (float(t), self._seq, dict(action)))
        self._seq += 1
        self.n_points += 1

    def pop_due(self, t: float) -> list[dict]:
        """Apply and return every action scheduled at or before ``t``.

        Machine-state actions (crash/recover/slowdowns) are folded into
        the timeline's own state before being returned; ``abort`` and
        ``resume`` are returned untouched for the engine to act on.  Each
        returned dict gains ``"t"``, the action's *scheduled* time.
        """
        due: list[dict] = []
        bound = t * (1 + _DUE_TOL) if t > 0 else t
        while self._agenda and self._agenda[0][0] <= bound:
            when, _, action = heapq.heappop(self._agenda)
            action = dict(action)
            action["t"] = when
            self._apply(action)
            self.applied += 1
            due.append(action)
        return due

    def _apply(self, action: dict) -> None:
        kind = action["kind"]
        if kind == "crash":
            proc = action["proc"]
            self._down[proc] = self._down.get(proc, 0) + 1
        elif kind == "recover":
            proc = action["proc"]
            depth = self._down.get(proc, 0) - 1
            if depth <= 0:
                self._down.pop(proc, None)
            else:
                self._down[proc] = depth
        elif kind == "degrade_on":
            self._degrade.append(action["factor"])
        elif kind == "degrade_off":
            try:
                self._degrade.remove(action["factor"])
            except ValueError:
                pass
        elif kind == "straggle_on":
            self._slow.setdefault(action["proc"], []).append(action["factor"])
        elif kind == "straggle_off":
            factors = self._slow.get(action["proc"], [])
            try:
                factors.remove(action["factor"])
            except ValueError:
                pass
            if not factors:
                self._slow.pop(action["proc"], None)
        # "abort"/"resume"/"displace" carry no machine state

    # -- machine state -----------------------------------------------------

    def down_procs(self) -> frozenset[int]:
        return frozenset(self._down)

    def m_eff(self) -> int:
        """Up-processor count — what policies see as ``view.m``."""
        return self.m - len(self._down)

    def speed_factor(self) -> float:
        """Machine-wide fluid speed multiplier in (0, 1]."""
        factor = 1.0
        for f in self._degrade:
            factor *= f
        m_eff = self.m_eff()
        if m_eff <= 0:
            return factor
        if self._slow:
            capacity = 0.0
            for proc in range(self.m):
                if proc in self._down:
                    continue
                f = 1.0
                for s in self._slow.get(proc, ()):
                    f *= s
                capacity += f
            factor *= capacity / m_eff
        return factor

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "m": self.m,
            "agenda": [[t, seq, dict(action)] for t, seq, action in sorted(self._agenda)],
            "seq": self._seq,
            "down": [[int(p), int(d)] for p, d in sorted(self._down.items())],
            "slow": [[int(p), list(f)] for p, f in sorted(self._slow.items())],
            "degrade": list(self._degrade),
            "applied": self.applied,
            "n_points": self.n_points,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "FaultTimeline":
        tl = cls.__new__(cls)
        tl.plan = FaultPlan.from_dict(state["plan"])
        tl.m = int(state["m"])
        tl._agenda = [
            (float(t), int(seq), dict(action)) for t, seq, action in state["agenda"]
        ]
        heapq.heapify(tl._agenda)
        # older snapshots predate dynamic push_action points; recompute
        # the static count for those
        tl.n_points = int(
            state.get("n_points", len(_point_actions(tl.plan)))
        )
        tl._seq = int(state["seq"])
        tl._down = {int(p): int(d) for p, d in state["down"]}
        tl._slow = {int(p): [float(x) for x in f] for p, f in state["slow"]}
        tl._degrade = [float(f) for f in state["degrade"]]
        tl.applied = int(state["applied"])
        return tl


def step_agenda(plan: FaultPlan) -> list[tuple[int, int, dict]]:
    """Compile a plan for the discrete work-stealing runtime.

    Returns ``(step, seq, action)`` triples sorted by step.  Interval
    times round *up* to whole steps and every outage lasts at least one
    step.  Only ``crash`` and ``abort`` events are supported — the
    runtime's workers are unit-speed by design, so fractional slowdowns
    (``degrade`` / ``straggle``) have no discrete analogue here; model
    those with the static ``speeds=`` vector or at the flow level.
    """
    unsupported = plan.kinds() - {"crash", "abort"}
    if unsupported:
        raise ValueError(
            f"wsim fault plans support crash/abort only; got {sorted(unsupported)}"
        )
    agenda: list[tuple[int, int, dict]] = []
    seq = 0
    for ev in plan.events:
        start = int(math.ceil(ev.t))
        if ev.kind == "crash":
            end = max(start + 1, int(math.ceil(ev.t + ev.duration)))
            agenda.append((start, seq, {"kind": "crash", "proc": int(ev.proc)}))
            agenda.append((end, seq + 1, {"kind": "recover", "proc": int(ev.proc)}))
            seq += 2
        else:  # abort
            agenda.append(
                (
                    start,
                    seq,
                    {
                        "kind": "abort",
                        "job_id": int(ev.job_id),
                        "resubmit_after": int(math.ceil(ev.resubmit_after)),
                    },
                )
            )
            seq += 1
    agenda.sort()
    return agenda
