"""Flow-level simulator (paper Sec. V-A, Figures 1-2).

Jobs are characterized by remaining work and a parallelism cap; policies
assign (possibly fractional) processor rates that stay constant between
events.  See :mod:`repro.flowsim.engine` for the loop and
:mod:`repro.flowsim.policies` for the scheduler implementations.
"""

from repro.flowsim.engine import (
    FlowSimConfig,
    FlowSimError,
    FlowStepper,
    default_max_events,
    simulate,
)
from repro.flowsim.policies import (
    FIFO,
    LAPS,
    MLF,
    RoundRobin,
    SETF,
    SJF,
    SRPT,
    SWF,
    ActiveView,
    DrepParallel,
    DrepSequential,
    Policy,
    policy_by_name,
)
from repro.flowsim.rates import equal_split, priority_waterfill
from repro.flowsim.stream import (
    DEFAULT_HARVEST_EVERY,
    DEFAULT_INGEST_CHUNK,
    simulate_stream,
)

__all__ = [
    "simulate",
    "simulate_stream",
    "DEFAULT_INGEST_CHUNK",
    "DEFAULT_HARVEST_EVERY",
    "FlowSimConfig",
    "FlowSimError",
    "FlowStepper",
    "default_max_events",
    "Policy",
    "ActiveView",
    "SRPT",
    "SJF",
    "SWF",
    "RoundRobin",
    "FIFO",
    "LAPS",
    "MLF",
    "SETF",
    "DrepSequential",
    "DrepParallel",
    "policy_by_name",
    "equal_split",
    "priority_waterfill",
]
