"""Event-driven flow-level simulator.

Simulates a trace of jobs on an ``m``-processor machine under a
:class:`~repro.flowsim.policies.base.Policy`.  Between events the policy's
rate vector is constant, so job progress is linear and the engine jumps
straight to the earliest of (a) the next arrival, (b) the earliest
predicted completion, (c) a policy timer.  This is exact for every policy
in the paper's simulation study (their rate vectors only change at events)
and for SETF via its timers.

This mirrors the paper's simulation methodology (Sec. V-A): no scheduling
or preemption overheads are charged, so results "can be thought of as the
lower bounds of what these scheduling algorithms can achieve".

Invariants enforced every event (simulation bugs fail loudly rather than
skew results): rates within per-job caps, total rate within machine
capacity, work conservation at completion time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.job import ParallelismMode
from repro.core.metrics import ScheduleResult
from repro.core.rng import RngFactory
from repro.dag.profile import ParallelismProfile
from repro.flowsim.policies.base import ActiveView, Policy
from repro.workloads.traces import Trace

__all__ = ["FlowSimConfig", "simulate", "FlowSimError"]

_RATE_TOL = 1e-7


class FlowSimError(RuntimeError):
    """Raised when a policy violates an engine invariant or the run stalls."""


@dataclass(frozen=True)
class FlowSimConfig:
    """Engine knobs.

    ``completion_tol`` is the relative remaining-work threshold below which
    a job counts as finished (guards float drift); ``max_events`` bounds the
    event loop (default ``60 * n + 1000``) to catch Zeno behaviour from a
    buggy policy timer.

    ``speed`` implements **resource augmentation** (Sec. II): every
    processor runs ``speed`` times faster than the adversary's unit-speed
    machine.  Theorem 1.1 gives DREP O(1/ε³)-competitiveness at speed
    4+ε; benches use this to compare DREP-at-speed-s against OPT proxies
    at speed 1.  Rate caps and the total-capacity check are unchanged
    (they are in *processors*); only work drains faster.

    ``use_profiles`` turns on **changing-parallelism** simulation for jobs
    carrying a DAG: the per-job rate cap follows the DAG's parallelism
    profile (:class:`repro.dag.ParallelismProfile`) as the job's attained
    work crosses profile breakpoints, instead of the paper's
    equally-parallel assumption.  Breakpoints generate exact event times,
    so the simulation stays event-exact.

    ``record_segments`` stores the piecewise-constant schedule itself:
    the result's ``extra["segments"]`` becomes a list of
    ``(t_start, t_end, {job_id: rate})`` tuples — every constant-rate
    interval with its non-zero allocations.  Costs memory (one entry per
    event); meant for schedule-shape verification and visualization, not
    large sweeps.
    """

    completion_tol: float = 1e-9
    max_events: int | None = None
    speed: float = 1.0
    use_profiles: bool = False
    record_segments: bool = False

    def __post_init__(self) -> None:
        if not self.speed > 0:
            raise ValueError("speed must be > 0")


def simulate(
    trace: Trace,
    m: int,
    policy: Policy,
    seed: int = 0,
    config: FlowSimConfig = FlowSimConfig(),
) -> ScheduleResult:
    """Run ``policy`` over ``trace`` on ``m`` processors; return the result.

    The policy is reset at the start with a dedicated random stream derived
    from ``seed``, so repeated calls are reproducible and two policies in
    the same sweep never share randomness.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    n = len(trace)
    if n == 0:
        return ScheduleResult(scheduler=policy.name, m=m, flow_times=np.empty(0))

    release = np.array([j.release for j in trace.jobs], dtype=float)
    work = np.array([j.work for j in trace.jobs], dtype=float)
    caps_all = np.array(
        [j.mode.rate_cap(m) for j in trace.jobs], dtype=float
    )
    flow_times = np.full(n, np.nan, dtype=float)

    # optional changing-parallelism caps from DAG profiles; breakpoints
    # are rescaled into the spec's work units (attach_dags may have
    # quantized work into DAG units of a different size)
    profiles: list[ParallelismProfile | None] = [None] * n
    if config.use_profiles:
        for spec in trace.jobs:
            if spec.mode is ParallelismMode.DAG and spec.dag is not None:
                prof = ParallelismProfile.from_dag(spec.dag)
                unit = spec.work / prof.total_work
                profiles[spec.job_id] = ParallelismProfile(
                    work_breaks=prof.work_breaks * unit,
                    parallelism=prof.parallelism,
                )

    def caps_for(ids: np.ndarray, remaining: np.ndarray) -> np.ndarray:
        caps = caps_all[ids].copy()
        if config.use_profiles:
            for k, j in enumerate(ids):
                prof = profiles[j]
                if prof is not None:
                    attained = max(0.0, work[j] - remaining[k])
                    tol = config.completion_tol * max(1.0, work[j])
                    caps[k] = min(float(m), prof.cap_at(attained, tol=tol))
        return caps

    weights = np.array([j.weight for j in trace.jobs], dtype=float)
    rng = RngFactory(seed).stream(f"flowsim/{policy.name}")
    policy.reset(m, rng)
    if hasattr(policy, "set_weights"):
        policy.set_weights(weights)

    # Active set: id list plus a full-length remaining-work array indexed
    # by job id, so draining and completion checks are vectorized fancy
    # indexing instead of per-element Python loops (profiled hot path).
    act_ids: list[int] = []
    rem_all = np.zeros(n, dtype=float)
    tol_all = config.completion_tol * np.maximum(1.0, work)

    t = 0.0
    next_arrival = 0  # index into the (release-sorted) trace
    completed = 0
    busy_time = 0.0
    max_events = config.max_events or (60 * n + 1000)
    events = 0
    segments: list[tuple[float, float, dict[int, float]]] = []

    def build_view() -> ActiveView:
        ids = np.asarray(act_ids, dtype=np.int64)
        rem = rem_all[ids]
        return ActiveView(
            t=t,
            m=m,
            job_ids=ids,
            remaining=rem,
            work=work[ids] if ids.size else np.empty(0),
            release=release[ids] if ids.size else np.empty(0),
            caps=caps_for(ids, rem) if ids.size else np.empty(0),
            speed=config.speed,
        )

    def checked_rates(view: ActiveView) -> np.ndarray:
        rates = np.asarray(policy.rates(view), dtype=float)
        if rates.shape != (view.n,):
            raise FlowSimError(
                f"{policy.name}: rates shape {rates.shape} != ({view.n},)"
            )
        if view.n == 0:
            return rates
        if (rates < -_RATE_TOL).any():
            raise FlowSimError(f"{policy.name}: negative rate")
        if (rates > view.caps * (1 + _RATE_TOL) + _RATE_TOL).any():
            raise FlowSimError(f"{policy.name}: rate exceeds per-job cap")
        if rates.sum() > m * (1 + _RATE_TOL) + _RATE_TOL:
            raise FlowSimError(
                f"{policy.name}: total rate {rates.sum():.6g} exceeds m={m}"
            )
        return np.clip(rates, 0.0, None)

    while completed < n:
        events += 1
        if events > max_events:
            raise FlowSimError(
                f"{policy.name}: exceeded {max_events} events "
                f"({completed}/{n} jobs done at t={t:.6g}) — Zeno loop?"
            )

        # ---- admit arrivals due now -----------------------------------
        while next_arrival < n and release[next_arrival] <= t * (1 + 1e-15):
            j = next_arrival
            act_ids.append(j)
            rem_all[j] = work[j]
            next_arrival += 1
            policy.on_arrival(j, build_view())

        if not act_ids:
            if next_arrival >= n:
                break  # nothing active, nothing to come
            t = float(release[next_arrival])
            continue

        # ---- constant-rate segment until the next event -----------------
        view = build_view()
        rates = checked_rates(view)
        eff = rates * config.speed  # resource augmentation (Sec. II)
        rem = view.remaining

        dt_candidates: list[float] = []
        served = eff > 0
        if served.any():
            dt_candidates.append(float((rem[served] / eff[served]).min()))
        if next_arrival < n:
            dt_candidates.append(float(release[next_arrival] - t))
        timer = policy.next_timer(view)
        if timer is not None and timer > t:
            dt_candidates.append(float(timer - t))
        if config.use_profiles:
            # stop exactly at the next parallelism-profile breakpoint of
            # any served job so its cap change takes effect on time
            for k in np.flatnonzero(served):
                prof = profiles[act_ids[k]]
                if prof is None:
                    continue
                j = act_ids[k]
                tol = config.completion_tol * max(1.0, work[j])
                attained = max(0.0, work[j] - rem[k])
                brk = prof.next_break_after(attained, tol=tol)
                if brk is not None:
                    dt_candidates.append(float((brk - attained) / eff[k]))

        if not dt_candidates:
            raise FlowSimError(
                f"{policy.name}: stalled at t={t:.6g} with {len(act_ids)} "
                "active jobs, zero rates and no future events"
            )
        dt = min(dt_candidates)
        if dt < 0:
            raise FlowSimError(f"{policy.name}: negative time step {dt}")

        if dt > 0:
            ids_arr = view.job_ids
            rem_all[ids_arr] -= eff * dt
            busy_time += float(rates.sum()) * dt  # processor-time, not work
            if config.record_segments:
                alloc = {
                    int(j): float(r)
                    for j, r in zip(ids_arr, rates)
                    if r > 0
                }
                segments.append((t, t + dt, alloc))
            t += dt

        # ---- completions -------------------------------------------------
        # Jobs whose remaining work dropped (within tolerance) to zero
        # finish now.  They are removed one at a time, lowest job id first,
        # and the policy hook sees the active set *after* each removal —
        # matching the paper's semantics where a freed DREP processor
        # re-draws from the jobs still alive.
        while True:
            ids_arr = np.asarray(act_ids, dtype=np.int64)
            done = ids_arr[rem_all[ids_arr] <= tol_all[ids_arr]]
            if done.size == 0:
                break
            j = int(done.min())
            act_ids.remove(j)
            flow_times[j] = t - release[j]
            completed += 1
            policy.on_completion(j, build_view())

    makespan = t
    if np.isnan(flow_times).any():
        raise FlowSimError(f"{policy.name}: run ended with unfinished jobs")
    utilization = busy_time / (makespan * m) if makespan > 0 else 0.0
    return ScheduleResult(
        scheduler=policy.name,
        m=m,
        flow_times=flow_times,
        preemptions=policy.preemptions,
        migrations=policy.migrations,
        makespan=makespan,
        min_flows=np.array([j.lower_bound(m) for j in trace.jobs]) / config.speed,
        weights=weights,
        extra={
            "utilization": utilization,
            "events": events,
            "switches": policy.switches,
            **({"segments": segments} if config.record_segments else {}),
        },
    )
