"""Event-driven flow-level simulator.

Simulates jobs on an ``m``-processor machine under a
:class:`~repro.flowsim.policies.base.Policy`.  Between events the policy's
rate vector is constant, so job progress is linear and the engine jumps
straight to the earliest of (a) the next arrival, (b) the earliest
predicted completion, (c) a policy timer.  This is exact for every policy
in the paper's simulation study (their rate vectors only change at events)
and for SETF via its timers.

Two entry points share one core:

* :func:`simulate` — the batch harness: registers a whole
  :class:`~repro.workloads.traces.Trace` up front and drains it.
* :class:`FlowStepper` — the incremental core itself, usable directly:
  ``add_job`` registers jobs *while the clock runs* and ``advance_to``
  processes events up to a horizon, which is what the online serving
  layer (:mod:`repro.serve`) builds on.

This mirrors the paper's simulation methodology (Sec. V-A): no scheduling
or preemption overheads are charged, so results "can be thought of as the
lower bounds of what these scheduling algorithms can achieve".

Invariant checks (rates within per-job caps, total rate within machine
capacity) are *amortized*: full-strength on the first rate computation
and every :attr:`FlowSimConfig.check_every_k`-th thereafter, so simulation
bugs still fail loudly without paying four array passes per event.  Tests
that exercise the checks set ``check_every_k=1``.

The hot loop is a flat structure-of-arrays: the active set lives in
persistent, id-sorted parallel buffers (ids / remaining / caps / tol /
work / release) that the event loop reads and updates in place — no
per-event gathers against the master job table.  Policies that implement
the vectorized :meth:`~repro.flowsim.policies.base.Policy.rates_array`
hook are fed those buffers directly; the engine materializes an
:class:`~repro.flowsim.policies.base.ActiveView` only for policy hooks,
timers, and the object-path fallback.  Policies declaring
:attr:`~repro.flowsim.policies.base.Policy.rates_stable` have their rate
vector reused until the composition of the active set changes.
``ScheduleResult.extra["perf"]`` reports what the caches did
(:class:`repro.perf.PerfCounters`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.job import JobSpec, ParallelismMode
from repro.core.metrics import ScheduleResult
from repro.core.rng import RngFactory
from repro.dag.profile import ParallelismProfile
from repro.flowsim.order import CompletionCalendar, OrderIndex, sparse_sum
from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.rates import equal_split
from repro.perf.counters import PerfCounters
from repro.workloads.traces import Trace

__all__ = [
    "FlowSimConfig",
    "FlowStepper",
    "simulate",
    "FlowSimError",
    "default_max_events",
]

_RATE_TOL = 1e-7
#: relative clock tolerance used when admitting arrivals that are "due now"
_ADMIT_TOL = 1e-15


class FlowSimError(RuntimeError):
    """Raised when a policy violates an engine invariant or the run stalls."""


def _make_view(
    t: float,
    m: int,
    job_ids: np.ndarray,
    remaining: np.ndarray,
    work: np.ndarray,
    release: np.ndarray,
    caps: np.ndarray,
    speed: float,
) -> ActiveView:
    """Build an :class:`ActiveView` without the frozen-dataclass
    ``__init__`` (one ``object.__setattr__`` per field, ~3× the cost of a
    plain dict fill); field values are exactly what the constructor would
    store, so views from either path are indistinguishable."""
    view = ActiveView.__new__(ActiveView)
    view.__dict__.update(
        t=t,
        m=m,
        job_ids=job_ids,
        remaining=remaining,
        work=work,
        release=release,
        caps=caps,
        speed=speed,
    )
    return view


def default_max_events(n: int) -> int:
    """Event-budget used when :attr:`FlowSimConfig.max_events` is ``None``.

    ``60 * n + 1000`` for an ``n``-job run: generous against the ~3 events
    a job normally costs (arrival, completion, a few timer/re-rate events)
    yet finite, so Zeno behaviour from a buggy policy timer raises
    :class:`FlowSimError` instead of hanging the run.
    """
    return 60 * n + 1000


@dataclass(frozen=True)
class FlowSimConfig:
    """Engine knobs.

    ``completion_tol`` is the relative remaining-work threshold below which
    a job counts as finished (guards float drift); ``max_events`` bounds the
    event loop (default :func:`default_max_events`, i.e. ``60 * n + 1000``)
    to catch Zeno behaviour from a buggy policy timer.

    ``speed`` implements **resource augmentation** (Sec. II): every
    processor runs ``speed`` times faster than the adversary's unit-speed
    machine.  Theorem 1.1 gives DREP O(1/ε³)-competitiveness at speed
    4+ε; benches use this to compare DREP-at-speed-s against OPT proxies
    at speed 1.  Rate caps and the total-capacity check are unchanged
    (they are in *processors*); only work drains faster.

    ``use_profiles`` turns on **changing-parallelism** simulation for jobs
    carrying a DAG: the per-job rate cap follows the DAG's parallelism
    profile (:class:`repro.dag.ParallelismProfile`) as the job's attained
    work crosses profile breakpoints, instead of the paper's
    equally-parallel assumption.  Breakpoints generate exact event times,
    so the simulation stays event-exact.

    ``record_segments`` stores the piecewise-constant schedule itself:
    the result's ``extra["segments"]`` becomes a list of
    ``(t_start, t_end, {job_id: rate})`` tuples — every constant-rate
    interval with its non-zero allocations.  Costs memory (one entry per
    event); meant for schedule-shape verification and visualization, not
    large sweeps.

    ``check_every_k`` amortizes the rate-invariant checks: the cap /
    total-capacity / negativity passes run on the first rate computation
    and every ``k``-th thereafter (the shape check is always on).  The
    default of 32 keeps buggy policies failing within a few dozen events
    while removing four full array passes from the steady-state hot loop;
    tests that exercise the checks directly set ``check_every_k=1``.

    ``use_rates_array`` selects the vectorized policy path: policies that
    implement :meth:`~repro.flowsim.policies.base.Policy.rates_array` are
    called with the engine's flat active-set buffers instead of a
    materialized :class:`~repro.flowsim.policies.base.ActiveView`.  Both
    paths are bit-for-bit identical by contract (the golden tests and a
    Hypothesis property pin this); ``False`` forces the object path, which
    is mainly useful for equivalence testing.

    ``use_batch_horizon`` enables the completion-horizon batch kernel:
    when the policy opts in via
    :attr:`~repro.flowsim.policies.base.Policy.batch_horizon` (and no
    fault plan, timer, profile or segment recording intervenes),
    :meth:`FlowStepper.drain` and :meth:`FlowStepper.advance_to` fold the
    whole run of events between true decision points into one kernel pass
    instead of one :meth:`FlowStepper.step` call per event.  The kernel
    is bit-for-bit identical to the per-event path (goldens plus the
    batched≡unit Hypothesis suite pin this); ``False`` forces per-event
    stepping, which is mainly useful for equivalence testing.

    ``use_incremental`` enables the O(log n) active-set kernels for
    policies that declare an
    :class:`~repro.flowsim.policies.base.OrderSpec`: the engine maintains
    their priority order incrementally across admissions / completions /
    fault evictions (:class:`repro.flowsim.order.OrderIndex`), allocates
    rates by walking only the O(m) order head (or the O(beta n) LAPS
    share set), and picks the next completion from a lazy-invalidation
    calendar (:class:`repro.flowsim.order.CompletionCalendar`) instead
    of the dense finish-time sweep — per-event work then scales with the
    *change*, not with ``n_active``.  Bit-for-bit identical to the dense
    path by construction (goldens plus the incremental≡dense Hypothesis
    suite pin it); ``False`` forces the dense ``np.lexsort`` path, which
    is mainly useful for equivalence testing and A/B benches.

    ``incremental_min_active`` is the promotion threshold for those
    kernels: the run starts on the dense paths and switches to the
    incremental structures the first time the active set reaches this
    many jobs (one O(n log n) build from the live buffers; promotion is
    one-way).  Below a thousand-odd active jobs one C-speed
    ``np.lexsort`` per event beats Python-level order maintenance, so
    promoting immediately would *slow down* low-concurrency runs — the
    default sits just under the measured crossover (~1.5k for SRPT and
    FIFO alike).  ``0`` promotes at construction (the pure-incremental
    mode the scaling benches and the equivalence suite measure).  The
    switch is unobservable in results: both paths are bit-for-bit
    equal, so a promoted run composes two identical trajectory
    prefixes.
    """

    completion_tol: float = 1e-9
    max_events: int | None = None
    speed: float = 1.0
    use_profiles: bool = False
    record_segments: bool = False
    check_every_k: int = 32
    use_rates_array: bool = True
    use_batch_horizon: bool = True
    use_incremental: bool = True
    incremental_min_active: int = 1024

    def __post_init__(self) -> None:
        if not self.speed > 0:
            raise ValueError("speed must be > 0")
        if self.check_every_k < 1:
            raise ValueError("check_every_k must be >= 1")
        if self.incremental_min_active < 0:
            raise ValueError("incremental_min_active must be >= 0")


class _IncrementalCore:
    """Engine-side state for the O(log n) active-set kernels.

    One instance per run of a policy with an
    :class:`~repro.flowsim.policies.base.OrderSpec`.  Holds the live
    priority order (:class:`~repro.flowsim.order.OrderIndex`, kept in
    sync by the admission / completion / fault-eviction hooks), the
    completion calendar, the cached sparse allocation, and the *dust
    set* — jobs admitted or resumed already within completion tolerance.

    The dust set is what makes completion detection O(served): every
    active non-dust job has ``rem > tol`` at segment start (its ``rem``
    only moves while served, and crossing the tolerance while served is
    caught in that segment), so the dense ``rem <= tol`` sweep can be
    replaced by checking the served set plus the dust set.

    ``alloc`` caches ``(positions, rates, rsum)`` — positions into the
    id-sorted active buffers, ascending; every cached rate is strictly
    positive, so the positions *are* the served set.  It is invalidated
    (set to ``None``) at exactly the points the dense path drops
    ``_rates_cache``: any composition change.  Positions therefore stay
    valid for the cache's whole lifetime.
    """

    __slots__ = ("kind", "neg", "share", "beta", "order", "cal",
                 "cal_jobs", "alloc", "dust")

    def __init__(self, spec, policy: Policy) -> None:
        self.kind = spec.key
        self.neg = spec.descending
        self.share = spec.alloc == "share_topk"
        self.beta = float(getattr(policy, "beta", 1.0))
        self.order = OrderIndex()
        self.cal = CompletionCalendar()
        self.cal_jobs: set[int] = set()  # jobs with a live calendar entry
        self.alloc: tuple[np.ndarray, np.ndarray, float] | None = None
        self.dust: list[int] = []

    def key_tie(self, j: int, rem: float, work: float,
                rel: float) -> tuple[float, int]:
        """The ``(key, tie)`` pair job ``j`` sorts under (Python floats —
        ``(key, tie)`` ascending replicates the policy's lexsort)."""
        if self.kind == "remaining":
            k = rem
        elif self.kind == "work":
            k = work
        else:
            k = rel
        if self.neg:
            return -k, -j
        return k, j


class FlowStepper:
    """Incremental, event-exact core of the flow-level simulator.

    Drives one policy on an ``m``-processor machine one event at a time
    and accepts new jobs *while the clock runs* — the foundation of both
    the batch :func:`simulate` wrapper (register a whole trace, then
    :meth:`drain`) and the online serving layer (:mod:`repro.serve`),
    which submits jobs as they arrive over the wire.

    The stepping semantics are identical to the historical batch loop;
    :meth:`advance_to` additionally lets a caller bound a step by a
    *horizon* so the clock can be parked at an arbitrary time ``t`` before
    mutating the job set.  A horizon stop splits a constant-rate segment
    in two, which changes nothing observable: job progress is linear in
    time, ``Policy.rates`` is a pure function of the view, and randomness
    only happens inside arrival/completion hooks.  When horizons coincide
    with event times (e.g. submitting each job at exactly its release),
    the trajectory — including every RNG draw — is *bit-for-bit* the same
    as the batch run.

    Jobs must be registered with dense ids ``0, 1, 2, ...`` in
    non-decreasing release order, and never released in the stepper's
    past; :class:`repro.serve.online.OnlineScheduler` handles the
    bookkeeping for callers that just want to submit work.
    """

    def __init__(
        self,
        m: int,
        policy: Policy,
        seed: int = 0,
        config: FlowSimConfig = FlowSimConfig(),
        faults=None,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = int(m)
        self.policy = policy
        self.seed = int(seed)
        self.config = config
        # ``faults`` is a repro.faults FaultPlan (compiled here) or an
        # already-compiled FaultTimeline; duck-typed so this module never
        # imports repro.faults (the dependency points the other way)
        if faults is not None and not hasattr(faults, "pop_due"):
            faults = faults.timeline(self.m)
        if faults is not None and faults.m != self.m:
            raise ValueError(
                f"fault timeline compiled for m={faults.m}, engine has m={self.m}"
            )
        self.faults = faults
        self._fault_log: list[dict] = []
        self._lost_work = 0.0
        self._displaced_work = 0.0
        self._requeue_log: list[dict] = []
        self._suspended: set[int] = set()
        rng = RngFactory(seed).stream(f"flowsim/{policy.name}")
        policy.reset(self.m, rng)

        self._specs: list[JobSpec] = []
        self._profiles: list[ParallelismProfile | None] = []
        # master columns hold rows for job ids [_base, _n): row = id - _base.
        # _base is 0 for batch/online runs (every index below degenerates to
        # the absolute id); harvest() advances it, freeing completed-prefix
        # rows so a streamed run is O(active + pending) in memory
        self._base = 0
        cap = 16
        self._release = np.zeros(cap, dtype=float)
        self._work = np.zeros(cap, dtype=float)
        self._caps_all = np.zeros(cap, dtype=float)
        self._weights = np.ones(cap, dtype=float)
        self._rem = np.zeros(cap, dtype=float)
        self._tol = np.zeros(cap, dtype=float)
        self._flow = np.full(cap, np.nan, dtype=float)
        self._n = 0

        self._act_ids: list[int] = []
        self._t = 0.0
        self._next_arrival = 0
        self._completed = 0
        self._busy_time = 0.0
        self._events = 0
        self._segments: list[tuple[float, float, dict[int, float]]] = []
        #: append-only ``(job_id, finish_time)`` log for observers
        self._completions: list[tuple[int, float]] = []
        self._weights_dirty = False
        self._init_runtime_caches()

    def _init_runtime_caches(self) -> None:
        """Hot-loop state derived from the policy/config, never snapshotted.

        The active set is a flat structure-of-arrays: persistent parallel
        buffers ``_a_ids`` / ``_a_rem`` / ``_a_caps`` / ``_a_tol`` /
        ``_a_work`` / ``_a_rel`` whose first ``_na`` entries are valid,
        kept sorted ascending by job id by construction — admissions
        append dense increasing ids, completions compact left, and fault
        resumes insert at the searchsorted position.  The event loop reads
        and updates these slices in place; the master ``_rem`` column is
        refreshed only at completions/aborts and on :meth:`state_dict`.
        ``self._act_ids`` (a plain id list set by ``__init__`` /
        :meth:`from_state_dict`) seeds the buffers here and is then
        retired — the buffers are the only runtime truth.
        """
        cap = self._release.size
        self._a_ids = np.zeros(cap, dtype=np.int64)
        # the five float columns are rows of one (5, cap) block, so a
        # completion compacts all of them with a single 2-D memmove
        # instead of five 1-D ones; the named attributes are row *views*
        self._a_blk = np.zeros((5, cap), dtype=float)
        (
            self._a_rem,
            self._a_caps,
            self._a_tol,
            self._a_work,
            self._a_rel,
        ) = self._a_blk
        # scratch for per-segment finish times (no job state — outside
        # the block, never compacted, contents dead between events)
        self._a_fin = np.zeros(cap, dtype=float)
        # scratch backing the batch kernel's aligned rate vector: shifts
        # and appends mutate it in place instead of reallocating per
        # event (no job state; dead outside one kernel pass)
        self._vec_buf = np.zeros(cap, dtype=float)
        ids = sorted(int(j) for j in self._act_ids)
        base = self._base
        self._na = len(ids)
        for k, j in enumerate(ids):
            self._a_ids[k] = j
            self._a_rem[k] = self._rem[j - base]
            self._a_caps[k] = self._caps_all[j - base]
            self._a_tol[k] = self._tol[j - base]
            self._a_work[k] = self._work[j - base]
            self._a_rel[k] = self._release[j - base]
        self._act_ids = None  # superseded by the SoA buffers

        self._rates_cache: tuple[np.ndarray, float] | None = None
        self._rate_calls = 0
        self._max_events = 0  # 0 = recompute from config/_n on next step
        cfg = self.config
        self._check_k = cfg.check_every_k
        self._speed = float(cfg.speed)
        self._use_profiles = cfg.use_profiles
        self._record_segments = cfg.record_segments
        self._update_next_rel()
        ptype = type(self.policy)
        self._has_arrival_hook = ptype.on_arrival is not Policy.on_arrival
        self._has_completion_hook = (
            ptype.on_completion is not Policy.on_completion
        )
        self._has_timer = ptype.next_timer is not Policy.next_timer
        self._has_fault_hook = ptype.on_fault is not Policy.on_fault
        self._rates_array_fn = (
            self.policy.rates_array
            if cfg.use_rates_array
            and ptype.rates_array is not Policy.rates_array
            else None
        )
        # sparse complement used only by the batch kernel (the per-event
        # path always rebuilds, so the two surfaces stay cross-checkable)
        self._rates_patch_fn = (
            self.policy.rates_array_patch
            if self._rates_array_fn is not None
            and ptype.rates_array_patch is not Policy.rates_array_patch
            else None
        )
        # profile-driven caps move with attained work, which changes
        # between events without any composition change — no reuse then
        self._rates_stable = (
            bool(self.policy.rates_stable) and not self.config.use_profiles
        )
        # completion-horizon batch kernel eligibility: everything that
        # could interleave a non-arrival/non-completion event (timers,
        # fault points, profile breakpoints) or observe segment structure
        # (record_segments) forces the per-event path; the policy opt-in
        # carries the behavioral contract (see Policy.batch_horizon)
        self._batch_ok = (
            cfg.use_batch_horizon
            and self._rates_stable
            and self._rates_array_fn is not None
            and getattr(self.policy, "batch_horizon", False)
            and not self._has_timer
            and not self._use_profiles
            and not self._record_segments
            and self.faults is None
        )
        # incremental order/calendar kernels: policies declaring an
        # OrderSpec get their priority order maintained across events
        # instead of re-lexsorted per rate rebuild.  Profiles move caps
        # between events (the order alone no longer determines rates),
        # timers need views anyway, segment recording wants the dense
        # vector, and weighted policies fold a table the spec can't see
        # — all of those fall back to the dense path, as does
        # use_rates_array=False (the object-path equivalence mode).
        spec = getattr(self.policy, "order_spec", None)
        self._inc: _IncrementalCore | None = None
        self._inc_spec = None
        if (
            cfg.use_incremental
            and spec is not None
            and self._rates_array_fn is not None
            and not self._has_timer
            and not self._use_profiles
            and not self._record_segments
            and not hasattr(self.policy, "set_weights")
        ):
            self._inc_spec = spec
        self._inc_min = int(cfg.incremental_min_active)
        # the incremental batch kernel folds event runs like
        # _batched_steps; faults interleave non-completion events, so
        # they force per-event stepping (still incremental per event
        # once promoted)
        self._inc_kernel_allowed = (
            cfg.use_batch_horizon and self.faults is None
        )
        self._inc_kernel_ok = False
        if self._inc_spec is not None and self._na >= self._inc_min:
            self._inc_promote()
        self.perf = PerfCounters()

    # -- introspection -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._t

    @property
    def n_jobs(self) -> int:
        """Number of jobs registered so far."""
        return self._n

    @property
    def n_completed(self) -> int:
        return self._completed

    @property
    def n_active(self) -> int:
        """Jobs admitted and not yet finished."""
        return self._na

    @property
    def n_pending(self) -> int:
        """Jobs registered but not yet admitted (release in the future)."""
        return self._n - self._next_arrival

    @property
    def drained(self) -> bool:
        """True when every registered job has completed."""
        return self._completed == self._n

    @property
    def events(self) -> int:
        return self._events

    @property
    def lost_work(self) -> float:
        """Work destroyed by fault aborts (redone from scratch)."""
        return self._lost_work

    @property
    def displaced_work(self) -> float:
        """Work redone because scale-downs displaced running jobs."""
        return self._displaced_work

    @property
    def requeue_log(self) -> list[dict]:
        """Append-only displacement records (job_id/t/resume_at/redone_work)."""
        return self._requeue_log

    def refresh_event_budget(self) -> None:
        """Recompute the Zeno event budget on the next step.

        Callers that push dynamic fault actions (the autoscale loop's
        capacity changes and displacements) grow ``faults.n_points`` after
        the budget was first cached; this makes the next :meth:`step`
        re-derive it from the new count.
        """
        self._max_events = 0

    @property
    def completion_log(self) -> list[tuple[int, float]]:
        """Append-only ``(job_id, finish_time)`` pairs in completion order."""
        return self._completions

    @property
    def specs(self) -> list[JobSpec]:
        """Registered job specs, indexed by job id."""
        return self._specs

    def active_ids(self) -> list[int]:
        return self._a_ids[: self._na].tolist()

    def _active_pos(self, job_id: int) -> int:
        """Buffer position of an active job, or ``-1`` (binary search)."""
        na = self._na
        ids = self._a_ids[:na]
        pos = int(ids.searchsorted(job_id))
        if pos < na and ids[pos] == job_id:
            return pos
        return -1

    def remaining_of(self, job_id: int) -> float:
        """Remaining work of an admitted, unfinished job (O(log n_active))."""
        pos = self._active_pos(job_id)
        if pos < 0:
            raise KeyError(f"job {job_id} not active")
        return float(self._a_rem[pos])

    def flow_time_of(self, job_id: int) -> float | None:
        """Flow time of ``job_id`` if it has completed, else ``None``."""
        if not 0 <= job_id < self._n:
            raise KeyError(f"unknown job {job_id}")
        if job_id < self._base:
            raise KeyError(
                f"job {job_id} was harvested (folded into streaming metrics)"
            )
        f = float(self._flow[job_id - self._base])
        return None if np.isnan(f) else f

    def backlog_work(self) -> float:
        """Total remaining work of admitted jobs plus work of pending ones."""
        base = self._base
        active = float(self._a_rem[: self._na].sum()) if self._na else 0.0
        pending = float(
            self._work[self._next_arrival - base : self._n - base].sum()
        )
        return active + pending

    # -- job registration --------------------------------------------------

    def add_job(self, spec: JobSpec) -> int:
        """Register ``spec``; it is admitted when the clock reaches its release.

        Ids must be dense in registration order and releases non-decreasing
        (the same contract :class:`~repro.workloads.traces.Trace` enforces);
        a job must not be released in the stepper's past.
        """
        if spec.job_id != self._n:
            raise ValueError(
                f"job_id must be dense in submit order: expected {self._n}, "
                f"got {spec.job_id}"
            )
        base = self._base
        if self._n > base and spec.release < self._release[self._n - 1 - base]:
            raise ValueError("job releases must be non-decreasing")
        if spec.release < self._t - 1e-9 * max(1.0, self._t):
            raise ValueError(
                f"cannot register a job released in the past "
                f"(release={spec.release:.6g} < now={self._t:.6g})"
            )
        self._ensure_capacity(self._n + 1 - base)
        j = self._n
        r = j - base
        self._release[r] = spec.release
        self._work[r] = spec.work
        self._caps_all[r] = spec.mode.rate_cap(self.m)
        self._weights[r] = spec.weight
        self._tol[r] = self.config.completion_tol * max(1.0, spec.work)
        self._flow[r] = np.nan
        self._specs.append(spec)
        prof: ParallelismProfile | None = None
        if (
            self.config.use_profiles
            and spec.mode is ParallelismMode.DAG
            and spec.dag is not None
        ):
            base = ParallelismProfile.from_dag(spec.dag)
            unit = spec.work / base.total_work
            prof = ParallelismProfile(
                work_breaks=base.work_breaks * unit,
                parallelism=base.parallelism,
            )
        self._profiles.append(prof)
        self._n += 1
        self._max_events = 0  # budget scales with n; recompute lazily
        if self._next_arrival == j:
            self._next_rel = float(spec.release)
        if hasattr(self.policy, "set_weights"):
            self._weights_dirty = True
        return j

    def add_jobs(self, specs: list[JobSpec]) -> None:
        """Bulk :meth:`add_job`: register a whole trace in one pass.

        Semantically identical to calling ``add_job`` per spec (same
        validation, same stored values bit for bit) but the per-job
        column writes become sliced vector stores, which matters when a
        harness registers thousands of jobs before every run.
        """
        n_new = len(specs)
        if not n_new:
            return
        n0 = self._n
        for i, spec in enumerate(specs):
            if spec.job_id != n0 + i:
                raise ValueError(
                    f"job_id must be dense in submit order: expected "
                    f"{n0 + i}, got {spec.job_id}"
                )
        rel = np.fromiter((s.release for s in specs), float, n_new)
        if n_new > 1 and (rel[1:] < rel[:-1]).any():
            raise ValueError("job releases must be non-decreasing")
        base = self._base
        if n0 > base and rel[0] < self._release[n0 - 1 - base]:
            raise ValueError("job releases must be non-decreasing")
        if rel[0] < self._t - 1e-9 * max(1.0, self._t):
            raise ValueError(
                f"cannot register a job released in the past "
                f"(release={rel[0]:.6g} < now={self._t:.6g})"
            )
        self._ensure_capacity(n0 + n_new - base)
        end = n0 + n_new
        r0, r1 = n0 - base, end - base
        work = np.fromiter((s.work for s in specs), float, n_new)
        self._release[r0:r1] = rel
        self._work[r0:r1] = work
        m = self.m
        self._caps_all[r0:r1] = np.fromiter(
            (s.mode.rate_cap(m) for s in specs), float, n_new
        )
        self._weights[r0:r1] = np.fromiter(
            (s.weight for s in specs), float, n_new
        )
        # completion_tol * max(1.0, work) elementwise — the same two
        # IEEE ops per entry as the scalar path
        self._tol[r0:r1] = self.config.completion_tol * np.maximum(1.0, work)
        self._flow[r0:r1] = np.nan
        self._specs.extend(specs)
        use_profiles = self.config.use_profiles
        for spec in specs:
            prof: ParallelismProfile | None = None
            if (
                use_profiles
                and spec.mode is ParallelismMode.DAG
                and spec.dag is not None
            ):
                base = ParallelismProfile.from_dag(spec.dag)
                unit = spec.work / base.total_work
                prof = ParallelismProfile(
                    work_breaks=base.work_breaks * unit,
                    parallelism=base.parallelism,
                )
            self._profiles.append(prof)
        self._n = end
        self._max_events = 0  # budget scales with n; recompute lazily
        if self._next_arrival == n0:
            self._next_rel = float(rel[0])
        if hasattr(self.policy, "set_weights"):
            self._weights_dirty = True

    def _ensure_capacity(self, rows: int) -> None:
        """Grow the master columns to hold ``rows`` stored rows.

        ``rows`` counts *stored* jobs (``_n - _base``), not absolute ids —
        after a harvest the columns only ever hold the unharvested tail.
        """
        cap = self._release.size
        if rows <= cap:
            return
        new = max(rows, 2 * cap)
        stored = self._n - self._base

        def grow(a: np.ndarray, fill: float) -> np.ndarray:
            out = np.full(new, fill, dtype=float)
            out[:stored] = a[:stored]
            return out

        self._release = grow(self._release, 0.0)
        self._work = grow(self._work, 0.0)
        self._caps_all = grow(self._caps_all, 0.0)
        self._weights = grow(self._weights, 1.0)
        self._rem = grow(self._rem, 0.0)
        self._tol = grow(self._tol, 0.0)
        self._flow = grow(self._flow, np.nan)

        def grow_active(a: np.ndarray) -> np.ndarray:
            out = np.zeros(new, dtype=a.dtype)
            out[: self._na] = a[: self._na]
            return out

        self._a_ids = grow_active(self._a_ids)
        blk = np.zeros((5, new), dtype=float)
        blk[:, : self._na] = self._a_blk[:, : self._na]
        self._a_blk = blk
        (
            self._a_rem,
            self._a_caps,
            self._a_tol,
            self._a_work,
            self._a_rel,
        ) = blk
        self._a_fin = np.zeros(new, dtype=float)
        self._vec_buf = np.zeros(new, dtype=float)

    # -- stepping ----------------------------------------------------------

    def _update_next_rel(self) -> None:
        i = self._next_arrival
        self._next_rel = (
            float(self._release[i - self._base]) if i < self._n else np.inf
        )

    def _push_weights(self) -> None:
        if self._weights_dirty:
            if self._base:
                # weight-aware policies index their table by absolute job
                # id; a harvested prefix makes that table unreconstructable
                raise FlowSimError(
                    "weighted policies are not supported after harvest() "
                    "(streaming mode)"
                )
            self.policy.set_weights(self._weights[: self._n].copy())
            self._weights_dirty = False
            self._rates_cache = None

    def _caps_for(self, ids: np.ndarray, remaining: np.ndarray) -> np.ndarray:
        base = self._base
        rows = ids - base if base else ids
        caps = self._caps_all[rows].copy()
        if self.config.use_profiles:
            for k, r in enumerate(rows):
                prof = self._profiles[r]
                if prof is not None:
                    attained = max(0.0, self._work[r] - remaining[k])
                    tol = self.config.completion_tol * max(1.0, self._work[r])
                    caps[k] = min(float(self.m), prof.cap_at(attained, tol=tol))
        return caps

    def _segment_caps(
        self, ids: np.ndarray, rem: np.ndarray
    ) -> tuple[np.ndarray, int, float]:
        """Effective ``(caps, m, speed)`` for the current segment.

        Only called when profiles or faults are in play (the plain path
        serves the static cap buffer directly); returned caps are either
        that buffer slice or a fresh array — never mutated in place.
        """
        if self._use_profiles and ids.size:
            caps = self._caps_for(ids, rem)
        else:
            caps = self._a_caps[: ids.size]
        m_view = self.m
        speed = self._speed
        if self.faults is not None:
            m_view = self.faults.m_eff()
            if m_view < self.m:
                caps = np.minimum(caps, float(m_view))
            speed *= self.faults.speed_factor()
        return caps, m_view, speed

    def _build_view(self) -> ActiveView:
        na = self._na
        ids = self._a_ids[:na]
        rem = self._a_rem[:na]
        if self._use_profiles or self.faults is not None:
            caps, m_view, speed = self._segment_caps(ids, rem)
        else:
            caps = self._a_caps[:na]
            m_view = self.m
            speed = self._speed
        self.perf.view_builds += 1
        return _make_view(
            self._t,
            m_view,
            ids,
            rem,
            self._a_work[:na],
            self._a_rel[:na],
            caps,
            speed,
        )

    def _check_rates(
        self, rates: np.ndarray, caps: np.ndarray, m: int, n: int
    ) -> np.ndarray:
        if rates.shape != (n,):
            raise FlowSimError(
                f"{self.policy.name}: rates shape {rates.shape} != ({n},)"
            )
        if n == 0:
            return rates
        calls = self._rate_calls
        self._rate_calls = calls + 1
        if calls % self._check_k:
            self.perf.checks_skipped += 1
            return rates
        self.perf.checks_run += 1
        if (rates < -_RATE_TOL).any():
            raise FlowSimError(f"{self.policy.name}: negative rate")
        if (rates > caps * (1 + _RATE_TOL) + _RATE_TOL).any():
            raise FlowSimError(f"{self.policy.name}: rate exceeds per-job cap")
        if rates.sum() > m * (1 + _RATE_TOL) + _RATE_TOL:
            raise FlowSimError(
                f"{self.policy.name}: total rate {rates.sum():.6g} "
                f"exceeds m={m}"
            )
        return np.clip(rates, 0.0, None)

    def _admit_due(self) -> None:
        """Admit every pending job whose release is at or before the clock."""
        thresh = self._t * (1.0 + _ADMIT_TOL)
        base = self._base
        inc = self._inc
        while self._next_arrival < self._n and self._next_rel <= thresh:
            j = self._next_arrival
            r = j - base
            k = self._na
            w = self._work[r]
            self._a_ids[k] = j
            self._a_rem[k] = w
            self._a_caps[k] = self._caps_all[r]
            self._a_tol[k] = self._tol[r]
            self._a_work[k] = w
            self._a_rel[k] = self._release[r]
            self._na = k + 1
            self._rem[r] = w
            self._next_arrival += 1
            self._update_next_rel()
            self._rates_cache = None
            if inc is not None:
                inc.alloc = None
                wf = float(w)
                inc.order.insert(
                    *inc.key_tie(j, wf, wf, float(self._release[r]))
                )
                if w <= self._tol[r]:
                    inc.dust.append(j)
            if self._has_arrival_hook:
                self.policy.on_arrival(j, self._build_view())

    def _remove_active(self, pos: int) -> None:
        """Drop the job at buffer position ``pos``, compacting left."""
        inc = self._inc
        if inc is not None:
            # the order holds the job's *current* key (the incremental
            # tail re-keys served jobs before processing completions)
            j = int(self._a_ids[pos])
            inc.order.remove(
                *inc.key_tie(
                    j,
                    float(self._a_rem[pos]),
                    float(self._a_work[pos]),
                    float(self._a_rel[pos]),
                )
            )
            inc.cal.discard(j)
            inc.cal_jobs.discard(j)
            inc.alloc = None
        na = self._na
        self._a_ids[pos : na - 1] = self._a_ids[pos + 1 : na]
        self._a_blk[:, pos : na - 1] = self._a_blk[:, pos + 1 : na]
        self._na = na - 1

    def _insert_active(self, j: int, rem_val: float) -> None:
        """Insert job ``j`` at its sorted position (fault resume path)."""
        na = self._na
        r = j - self._base
        pos = int(self._a_ids[:na].searchsorted(j))
        self._a_ids[pos + 1 : na + 1] = self._a_ids[pos:na]
        self._a_blk[:, pos + 1 : na + 1] = self._a_blk[:, pos:na]
        self._a_ids[pos] = j
        self._a_rem[pos] = rem_val
        self._a_caps[pos] = self._caps_all[r]
        self._a_tol[pos] = self._tol[r]
        self._a_work[pos] = self._work[r]
        self._a_rel[pos] = self._release[r]
        self._na = na + 1
        inc = self._inc
        if inc is not None:
            inc.alloc = None
            inc.order.insert(
                *inc.key_tie(
                    j, float(rem_val), float(self._work[r]),
                    float(self._release[r]),
                )
            )
            if rem_val <= self._tol[r]:
                inc.dust.append(j)

    def _apply_due_faults(self) -> None:
        """Apply every fault action scheduled at or before the clock.

        Machine-state actions (crash/recover/slowdowns) were already folded
        into the timeline by ``pop_due``; here we drop stale caches and give
        the policy its :meth:`Policy.on_fault` look.  Job aborts are
        replayed through the policy's completion/arrival hooks — an abort
        *is* a completion from the policy's point of view (its processors
        free up and re-draw) and the resubmission is an arrival, which
        preserves DREP's "preempt only on arrival" accounting.  Every
        action lands in the fault log with an ``applied`` flag.
        """
        for action in self.faults.pop_due(self._t):
            kind = action["kind"]
            entry = dict(action)
            entry["applied"] = True
            if kind in ("abort", "displace"):
                j = int(action["job_id"])
                pos = self._active_pos(j)
                if pos >= 0:
                    r = j - self._base
                    redone = float(self._work[r] - self._a_rem[pos])
                    resume_at = float(action["t"]) + float(
                        action.get("resubmit_after", 0.0)
                    )
                    if kind == "displace":
                        # capacity management, not a failure: same preempt
                        # + full-work requeue mechanics, separate books —
                        # every displaced unit must land in the requeue log
                        self._displaced_work += redone
                        self._requeue_log.append(
                            {
                                "job_id": j,
                                "t": float(action["t"]),
                                "resume_at": resume_at,
                                "redone_work": redone,
                            }
                        )
                    else:
                        self._lost_work += redone
                    self._remove_active(pos)
                    self._rem[r] = self._work[r]
                    self._suspended.add(j)
                    self._rates_cache = None
                    if self._has_completion_hook:
                        self.policy.on_completion(j, self._build_view())
                    self.faults.push_resume(resume_at, j)
                else:
                    # pending, finished, or already suspended: nothing to kill
                    entry["applied"] = False
            elif kind == "resume":
                j = int(action["job_id"])
                if j in self._suspended:
                    r = j - self._base
                    self._suspended.discard(j)
                    self._insert_active(j, float(self._work[r]))
                    self._rem[r] = self._work[r]
                    self._rates_cache = None
                    if self._has_arrival_hook:
                        self.policy.on_arrival(j, self._build_view())
                else:
                    entry["applied"] = False
            else:
                # machine-state change: composition is intact but the
                # effective capacity moved, so both caches are stale
                self._rates_cache = None
                if self._inc is not None:
                    self._inc.alloc = None
                if self._has_fault_hook:
                    self.policy.on_fault(action, self._build_view())
            self._fault_log.append(entry)

    def step(self, horizon: float | None = None) -> bool:
        """Execute one event iteration, optionally bounded by ``horizon``.

        Returns ``True`` if the step made (or can still make) progress,
        ``False`` when nothing can happen before ``horizon`` — the machine
        is idle with no arrival due (the clock is parked at the horizon
        when one is given).  Raises :class:`FlowSimError` on policy
        invariant violations, a stall, or an exhausted event budget.
        """
        cfg = self.config
        if self._weights_dirty:
            self._push_weights()
        self._events += 1
        max_events = self._max_events
        if not max_events:
            max_events = cfg.max_events or default_max_events(self._n)
            if self.faults is not None:
                # each fault point costs O(1) extra events (segment split,
                # re-rate, possible resume); 8x is far above the worst case
                max_events += 8 * self.faults.n_points + 64
            self._max_events = max_events
        if self._events > max_events:
            raise FlowSimError(
                f"{self.policy.name}: exceeded {max_events} events "
                f"({self._completed}/{self._n} jobs done at t={self._t:.6g})"
                " — Zeno loop?"
            )

        # ---- apply faults due now (before arrivals: a processor that
        # crashed at t is already gone when a job arriving at t draws) ----
        if self.faults is not None:
            self._apply_due_faults()

        # ---- admit arrivals due now -----------------------------------
        if self._next_rel <= self._t * (1.0 + _ADMIT_TOL):
            self._admit_due()

        na = self._na
        if not na:
            nxt = None
            if self._next_arrival < self._n:
                nxt = self._next_rel
            if self.faults is not None:
                # a pending fault point (recover, job resume) can be the
                # only future event — without this, drain() would deadlock
                # on a suspended job
                ft = self.faults.next_time()
                if ft is not None and (nxt is None or ft < nxt):
                    nxt = float(ft)
            if nxt is not None:
                if horizon is not None and nxt > horizon * (1 + _ADMIT_TOL):
                    # the next event is beyond the horizon: park there
                    self._t = max(self._t, float(horizon))
                    return False
                self._t = max(self._t, nxt)
                return True
            if horizon is not None:
                self._t = max(self._t, float(horizon))
            return False  # nothing active, nothing to come

        if self._inc_spec is not None and self._inc is None:
            if na >= self._inc_min:
                self._inc_promote()
        if self._inc is not None:
            return self._inc_step_tail(horizon, na)

        # ---- constant-rate segment until the next event -----------------
        ids = self._a_ids[:na]
        rem = self._a_rem[:na]
        view: ActiveView | None = None
        if self.faults is None and not self._use_profiles:
            caps = None  # the static cap buffer, fetched only if needed
            m_view = self.m
            speed = self._speed
        else:
            caps, m_view, speed = self._segment_caps(ids, rem)
        if self.faults is not None and m_view <= 0:
            # every processor is down: nothing runs until a recovery,
            # which is guaranteed to be on the fault agenda
            rates = np.zeros(na, dtype=float)
            rsum = 0.0
            self._rates_cache = None
        else:
            cached = self._rates_cache
            if cached is None:
                self.perf.rate_misses += 1
                fn = self._rates_array_fn
                if fn is not None:
                    if caps is None:
                        caps = self._a_caps[:na]
                    rates = fn(
                        self._t,
                        m_view,
                        ids,
                        rem,
                        self._a_work[:na],
                        self._a_rel[:na],
                        caps,
                    )
                else:
                    view = self._build_view()
                    caps = view.caps
                    rates = self.policy.rates(view)
                rates = self._check_rates(
                    np.asarray(rates, dtype=float), caps, m_view, na
                )
                rsum = float(rates.sum())
                if self._rates_stable:
                    self._rates_cache = (rates, rsum)
            else:
                self.perf.rate_hits += 1
                rates, rsum = cached
        if view is None:
            # the whole segment was computed on the flat buffers — no
            # ActiveView materialized (the SoA fast path)
            self.perf.view_reuses += 1
        # ``speed`` folds resource augmentation (Sec. II) together with
        # the current fault speed factor (degradation/stragglers), both
        # piecewise-constant between events
        if speed != 1.0:
            eff = rates * speed
        else:
            eff = rates

        # per-job finish time of the segment: rem/eff where served, +inf
        # where idle (idle jobs never bound dt; an all-idle set leaves
        # dt at inf exactly as the old masked-min did).  One masked
        # divide into a persistent scratch row replaces the old
        # all()/any() probes and boolean gathers — same quotients, same
        # min, bit for bit.
        served = eff > 0
        finish = self._a_fin[:na]
        finish[:] = np.inf
        np.divide(rem, eff, out=finish, where=served)
        dt = float(finish.min())
        if self._next_arrival < self._n:
            dt_arr = self._next_rel - self._t
            if dt_arr < dt:
                dt = dt_arr
        if self._has_timer:
            if view is None:
                view = self._build_view()
            timer = self.policy.next_timer(view)
            if timer is not None and timer > self._t:
                dt_timer = float(timer) - self._t
                if dt_timer < dt:
                    dt = dt_timer
        if self._use_profiles:
            # stop exactly at the next parallelism-profile breakpoint of
            # any served job so its cap change takes effect on time
            for k in np.flatnonzero(served):
                r = int(ids[k]) - self._base
                prof = self._profiles[r]
                if prof is None:
                    continue
                tol = cfg.completion_tol * max(1.0, self._work[r])
                attained = max(0.0, self._work[r] - rem[k])
                brk = prof.next_break_after(attained, tol=tol)
                if brk is not None:
                    dt_brk = float((brk - attained) / eff[k])
                    if dt_brk < dt:
                        dt = dt_brk
        if self.faults is not None:
            # stop exactly at the next fault point so m(t) and the speed
            # factor change on time (keeps the run event-exact)
            ft = self.faults.next_time()
            if ft is not None and ft > self._t:
                dt_f = float(ft) - self._t
                if dt_f < dt:
                    dt = dt_f
        if horizon is not None and horizon > self._t:
            dt_hor = float(horizon) - self._t
            if dt_hor < dt:
                dt = dt_hor

        if dt == np.inf:
            if horizon is not None:
                return False  # parked at the horizon with idle-rate jobs
            raise FlowSimError(
                f"{self.policy.name}: stalled at t={self._t:.6g} with "
                f"{na} active jobs, zero rates and no "
                "future events"
            )
        if dt < 0:
            raise FlowSimError(f"{self.policy.name}: negative time step {dt}")

        if dt > 0:
            # ``rem`` is the live buffer slice: the segment's progress is
            # applied in place, no gather/scatter against the job table
            rem -= eff * dt
            # processor-time, not work
            self._busy_time += rsum * dt
            if self._record_segments:
                alloc = {
                    int(j): float(r)
                    for j, r in zip(ids, rates)
                    if r > 0
                }
                self._segments.append((self._t, self._t + dt, alloc))
            self._t += dt

        # ---- completions -------------------------------------------------
        # Jobs whose remaining work dropped (within tolerance) to zero
        # finish now.  They are removed lowest job id first, and the policy
        # hook sees the active set *after* each removal — matching the
        # paper's semantics where a freed DREP processor re-draws from the
        # jobs still alive.  Nothing below mutates remaining work, so the
        # done set is computed once; ``ids`` is sorted ascending, so
        # iterating ``done`` in order is exactly lowest-id-first.
        done_mask = rem <= self._a_tol[:na]
        if done_mask.any():
            base = self._base
            done = ids[done_mask]
            # park the final (dust) remaining values in the master column
            # so checkpoints and observers see what the buffers saw
            self._rem[done - base if base else done] = rem[done_mask]
            t = self._t
            if self._has_completion_hook:
                for j in done.tolist():
                    self._remove_active(self._active_pos(j))
                    self._flow[j - base] = t - self._release[j - base]
                    self._completed += 1
                    self._completions.append((j, t))
                    self._rates_cache = None
                    self.policy.on_completion(j, self._build_view())
            else:
                keep = ~done_mask
                nk = na - int(done.size)
                self._a_ids[:nk] = self._a_ids[:na][keep]
                self._a_blk[:, :nk] = self._a_blk[:, :na][:, keep]
                self._na = nk
                for j in done.tolist():
                    self._flow[j - base] = t - self._release[j - base]
                    self._completed += 1
                    self._completions.append((j, t))
                self._rates_cache = None
        return True

    # -- incremental (O(log n)) kernels ------------------------------------

    def _inc_promote(self) -> None:
        """Build the order/calendar structures from the live buffers and
        switch the stepper onto the incremental kernels.

        Runs once per stepper, the first time the active set reaches
        ``incremental_min_active`` (at construction when the threshold
        is 0 — or when restoring a snapshot already past it).  One
        O(n log n) pass seeds the :class:`OrderIndex` with every active
        job's current ``(key, tie)`` and captures already-within-
        tolerance jobs into the dust set, exactly the state the
        structures would hold had they been maintained from the start;
        the calendar starts empty and fills as segments are served.
        Promotion is one-way — the dense paths win below the threshold
        only on constant factors, and demotion would just thrash.
        """
        inc = _IncrementalCore(self._inc_spec, self.policy)
        for k in range(self._na):
            j = int(self._a_ids[k])
            inc.order.insert(
                *inc.key_tie(
                    j,
                    float(self._a_rem[k]),
                    float(self._a_work[k]),
                    float(self._a_rel[k]),
                )
            )
            if self._a_rem[k] <= self._a_tol[k]:
                inc.dust.append(j)
        self._inc = inc
        self._inc_kernel_ok = self._inc_kernel_allowed

    def _inc_build_alloc(
        self, na: int, m_view: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Sparse rate allocation from the live order: ``(positions,
        rates, rsum)`` with positions ascending into the id-sorted
        buffers and every rate strictly positive.

        Bit-for-bit equal to the dense policy compute restricted to its
        non-zero entries: the prefix walk replicates
        :func:`~repro.flowsim.rates.priority_waterfill` (same Python
        floats, same break), the share walk replicates the masked
        :func:`~repro.flowsim.rates.equal_split` (the gathered call is
        bitwise equal on members), and ``rsum`` replicates
        ``float(np.add.reduce(dense))`` via :func:`sparse_sum`.
        """
        inc = self._inc
        if m_view <= 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=float), 0.0)
        ids = self._a_ids[:na]
        caps = self._a_caps
        neg = inc.neg
        limit = m_view < self.m
        mv = float(m_view)
        if inc.share:
            k = max(1, math.ceil(inc.beta * na))
            head = inc.order.head(k)
            jl = [(-tie if neg else tie) for _, tie in head]
            pos = ids.searchsorted(np.asarray(jl, dtype=np.int64))
            pos.sort()
            c = self._a_caps[:na][pos]
            if limit:
                c = np.minimum(c, mv)
            rates = equal_split(c, m_view)
            rsum = sparse_sum(pos.tolist(), rates.tolist(), na)
            return (pos, rates, rsum)
        left = mv
        pl: list[int] = []
        rl: list[float] = []
        for _, tie in inc.order:
            p = int(ids.searchsorted(-tie if neg else tie))
            c = float(caps[p])
            if limit and mv < c:
                c = mv
            give = c if c < left else left
            pl.append(p)
            rl.append(give)
            left -= give
            if left <= 0:
                break
        pairs = sorted(zip(pl, rl))
        pl = [p for p, _ in pairs]
        rl = [g for _, g in pairs]
        return (
            np.asarray(pl, dtype=np.int64),
            np.asarray(rl, dtype=float),
            sparse_sum(pl, rl, na),
        )

    def _inc_check_alloc(
        self, alloc: tuple[np.ndarray, np.ndarray, float],
        na: int, m_view: int,
    ) -> None:
        """Amortized invariant checks on a sparse allocation — the same
        cap / negativity / total-capacity verification the dense path
        runs, restricted to the non-zero entries (the zeros it skips
        satisfy all three trivially)."""
        pos, rates, rsum = alloc
        if not pos.size:
            return
        if (rates < -_RATE_TOL).any():
            raise FlowSimError(f"{self.policy.name}: negative rate")
        caps = self._a_caps[:na][pos]
        if m_view < self.m:
            caps = np.minimum(caps, float(m_view))
        if (rates > caps * (1 + _RATE_TOL) + _RATE_TOL).any():
            raise FlowSimError(f"{self.policy.name}: rate exceeds per-job cap")
        if rsum > m_view * (1 + _RATE_TOL) + _RATE_TOL:
            raise FlowSimError(
                f"{self.policy.name}: total rate {rsum:.6g} "
                f"exceeds m={m_view}"
            )

    def _inc_sync_perf(self) -> None:
        """Mirror the order/calendar counters into :class:`PerfCounters`
        (one structure per run, so plain assignment is cumulative)."""
        inc = self._inc
        perf = self.perf
        perf.order_ops = inc.order.ops
        perf.calendar_pops = inc.cal.pops
        perf.calendar_invalidations = inc.cal.invalidations

    def _inc_step_tail(self, horizon: float | None, na: int) -> bool:
        """Incremental completion of one :meth:`step` event.

        Entered after the shared fault / admission / empty-set preamble;
        replicates the dense constant-rate-segment tail bit for bit —
        same ``dt`` bound sequence, same progress and busy-time updates,
        same lowest-id-first completion order with identical hook views
        — but touches only the served set, the dust set, and O(log n)
        structure updates instead of sweeping all ``n_active`` entries.
        Supports fault plans (machine-state changes invalidate the
        allocation; evictions/resumes flow through the buffer hooks).
        """
        inc = self._inc
        perf = self.perf
        rem = self._a_rem[:na]
        if self.faults is not None:
            m_view = self.faults.m_eff()
            speed = self._speed * self.faults.speed_factor()
        else:
            m_view = self.m
            speed = self._speed
        if self.faults is not None and m_view <= 0:
            # every processor is down: zero rates, no compute, no check
            # cadence tick — exactly the dense all-down branch
            self._rates_cache = None
            inc.alloc = None
            alloc = (np.empty(0, dtype=np.int64), np.empty(0, dtype=float), 0.0)
        else:
            alloc = inc.alloc
            if alloc is None:
                perf.rate_misses += 1
                alloc = self._inc_build_alloc(na, m_view)
                calls = self._rate_calls
                self._rate_calls = calls + 1
                if calls % self._check_k:
                    perf.checks_skipped += 1
                else:
                    perf.checks_run += 1
                    self._inc_check_alloc(alloc, na, m_view)
                if self._rates_stable:
                    inc.alloc = alloc
            else:
                perf.rate_hits += 1
        perf.view_reuses += 1
        pos, rates, rsum = alloc
        ns = pos.size
        cal = inc.cal
        if ns:
            rem_s = rem[pos]
            eff_s = rates * speed if speed != 1.0 else rates
            served_ids = self._a_ids[:na][pos].tolist()
            newset = set(served_ids)
            for j in inc.cal_jobs - newset:
                cal.discard(j)
            inc.cal_jobs = newset
            qs = (rem_s / eff_s).tolist()
            for i in range(ns):
                cal.update(served_ids[i], qs[i])
            dt = cal.min_quotient()
        else:
            if inc.cal_jobs:
                for j in inc.cal_jobs:
                    cal.discard(j)
                inc.cal_jobs = set()
            dt = float("inf")
        if self._next_arrival < self._n:
            dt_arr = self._next_rel - self._t
            if dt_arr < dt:
                dt = dt_arr
        if self.faults is not None:
            ft = self.faults.next_time()
            if ft is not None and ft > self._t:
                dt_f = float(ft) - self._t
                if dt_f < dt:
                    dt = dt_f
        if horizon is not None and horizon > self._t:
            dt_hor = float(horizon) - self._t
            if dt_hor < dt:
                dt = dt_hor

        if dt == np.inf:
            if horizon is not None:
                return False  # parked at the horizon with idle-rate jobs
            raise FlowSimError(
                f"{self.policy.name}: stalled at t={self._t:.6g} with "
                f"{na} active jobs, zero rates and no "
                "future events"
            )
        if dt < 0:
            raise FlowSimError(f"{self.policy.name}: negative time step {dt}")

        if dt > 0:
            if ns:
                rem[pos] -= eff_s * dt
            self._busy_time += rsum * dt
            self._t += dt
            if inc.kind == "remaining" and ns:
                # the decremented delta: re-key every served job so the
                # order tracks live remaining work (SRPT); pre-update
                # keys come from the gather taken before the scatter
                order = inc.order
                neg = inc.neg
                olds = rem_s.tolist()
                news = rem[pos].tolist()
                for i in range(ns):
                    ov = olds[i]
                    nv = news[i]
                    if nv == ov:
                        continue
                    j = served_ids[i]
                    if neg:
                        order.remove(-ov, -j)
                        order.insert(-nv, -j)
                    else:
                        order.remove(ov, j)
                        order.insert(nv, j)

        # ---- completions: served ∪ dust covers every candidate ----------
        done: list[int] = []
        if ns:
            nr = rem[pos]
            dm = nr <= self._a_tol[:na][pos]
            if dm.any():
                done = [served_ids[i] for i in np.flatnonzero(dm)]
        if inc.dust:
            ds = set(done)
            for j in inc.dust:
                # a fault eviction may have removed a dust job before any
                # segment ran; stale entries are simply dropped
                if j not in ds and self._active_pos(j) >= 0:
                    done.append(j)
            inc.dust.clear()
            done.sort()
        if done:
            base = self._base
            t = self._t
            has_hook = self._has_completion_hook
            for j in done:
                p = self._active_pos(j)
                r = j - base
                # park the final (dust) remaining value in the master
                # column, as the dense scan does
                self._rem[r] = self._a_rem[p]
                self._remove_active(p)  # also syncs order/calendar/alloc
                self._flow[r] = t - self._release[r]
                self._completed += 1
                self._completions.append((j, t))
                self._rates_cache = None
                if has_hook:
                    self.policy.on_completion(j, self._build_view())
        self._inc_sync_perf()
        return True

    def _batched_steps(self, horizon: float | None) -> bool:
        """Fold a whole run of events into one kernel pass.

        The completion-horizon batch kernel: semantically this is
        :meth:`step` called in a loop, specialized to the configurations
        ``_batch_ok`` admits — stable vectorized rates, no faults, no
        timers, no profiles, no segment recording — with the per-call
        dispatch overhead hoisted out of the loop.  Every iteration
        replicates one ``step()`` invocation *exactly*: the same
        admission threshold, the same per-element divisions and minimum,
        the same sequential ``dt`` bounds, the same lowest-id-first
        completion order with identical hook views (hence identical RNG
        draw sequences), and the same event accounting against
        ``max_events``.  The golden tests and the batched≡unit
        Hypothesis suite (``tests/flowsim/test_batch_equivalence.py``)
        pin the equivalence bit for bit.

        Where the active set is much larger than the served set (DREP
        gives out at most ``m`` processors), the segment solve gathers
        the few served entries instead of sweeping all ``n_active`` —
        valid bitwise because an ``eff == 0`` entry is exactly unchanged
        by ``rem -= eff * dt`` and can only complete in a segment where
        it was already within tolerance (the dense scan is kept for the
        first segment after any admission, the one place such an entry
        can appear).

        Returns like ``step()``: ``True`` while progress was made,
        ``False`` when nothing can happen before ``horizon`` (the clock
        is parked there when one is given).
        """
        if self._weights_dirty:
            self._push_weights()
        max_events = self._max_events
        if not max_events:
            max_events = self.config.max_events or default_max_events(self._n)
            self._max_events = max_events
        perf = self.perf
        policy = self.policy
        fn = self._rates_array_fn
        patch_fn = self._rates_patch_fn
        speed = self._speed
        m = self.m
        n = self._n
        has_completion = self._has_completion_hook
        has_arrival = self._has_arrival_hook
        check_k = self._check_k
        admit_mul = 1.0 + _ADMIT_TOL
        a_ids = self._a_ids
        a_rem = self._a_rem
        a_caps = self._a_caps
        a_tol = self._a_tol
        a_work = self._a_work
        a_rel = self._a_rel
        a_fin = self._a_fin
        a_blk = self._a_blk
        vbuf = self._vec_buf
        flow = self._flow
        release = self._release
        work_all = self._work
        caps_all = self._caps_all
        tol_all = self._tol
        rem_all = self._rem
        completions = self._completions
        # master rows are stored base-relative; stable for the whole pass
        # (harvest() only runs between kernel passes)
        base = self._base
        radd = np.add.reduce
        rmin = np.minimum.reduce
        folded = 0
        # per-iteration state lives in locals (the finally block flushes
        # it back): attribute traffic is a measurable share of a
        # multi-thousand-event drain when each iteration is only a
        # handful of small numpy calls
        ev = self._events
        t = self._t
        na = self._na
        ja = self._next_arrival
        next_rel = self._next_rel
        cache = self._rates_cache
        busy = self._busy_time
        completed = self._completed
        rate_calls = self._rate_calls
        c_miss = c_hit = c_run = c_skip = c_reuse = c_views = c_patch = 0
        # entry state is unknown (a horizon-parked step may have admitted
        # jobs without running a completion scan), so the first segment
        # always uses the dense scan
        fresh = True
        # the previous segment's rate vector, kept *structurally aligned*
        # with the active buffers across admissions/completions so the
        # policy's rates_array_patch can update it sparsely; None until
        # the first full compute (or always, without a patch hook)
        vec = None
        # promotion watch: an order-spec policy still below its
        # incremental_min_active threshold runs this dense kernel; once
        # admissions push the active set over the line, exit the pass at
        # an iteration boundary (state consistent, event not yet
        # counted) so the caller can promote and re-dispatch
        inc_pending = self._inc_spec is not None and self._inc is None
        inc_min = self._inc_min
        ret = True
        try:
            while True:
                if inc_pending and na >= inc_min:
                    break
                ev += 1
                folded += 1
                if ev > max_events:
                    raise FlowSimError(
                        f"{policy.name}: exceeded {max_events} events "
                        f"({completed}/{n} jobs done at "
                        f"t={t:.6g})"
                        " — Zeno loop?"
                    )

                # ---- admit arrivals due now -------------------------
                # (inline _admit_due: same threshold, same per-admission
                # bookkeeping and hook views, minus the call overhead)
                thresh = t * admit_mul
                if next_rel <= thresh:
                    na0 = na
                    while ja < n and next_rel <= thresh:
                        r = ja - base
                        w = work_all[r]
                        a_ids[na] = ja
                        a_rem[na] = w
                        a_caps[na] = caps_all[r]
                        a_tol[na] = tol_all[r]
                        a_work[na] = w
                        a_rel[na] = release[r]
                        na += 1
                        rem_all[r] = w
                        ja += 1
                        next_rel = (
                            float(release[ja - base]) if ja < n else np.inf
                        )
                        cache = None
                        if has_arrival:
                            c_views += 1
                            policy.on_arrival(
                                ja - 1,
                                _make_view(
                                    t,
                                    m,
                                    a_ids[:na],
                                    a_rem[:na],
                                    a_work[:na],
                                    a_rel[:na],
                                    a_caps[:na],
                                    speed,
                                ),
                            )
                    if vec is not None:
                        # align the kept rate vector: admissions append
                        # at the end (ids are handed out in sorted order)
                        # with rate 0 until the patch says otherwise
                        # (vec is a prefix view of vbuf, so this is one
                        # in-place fill, not a reallocation)
                        vbuf[na0:na] = 0.0
                        vec = vbuf[:na]
                    fresh = True
                if not na:
                    if ja < n:
                        if horizon is not None and (
                            next_rel > horizon * admit_mul
                        ):
                            # next event beyond the horizon: park there
                            t = max(t, float(horizon))
                            ret = False
                            break
                        t = max(t, next_rel)
                        # one idle-jump event; the next iteration admits
                        # (advance_to would stop here if the jump landed
                        # at/over the horizon)
                        if horizon is not None and not (
                            t * admit_mul < horizon
                        ):
                            break
                        continue
                    if horizon is not None:
                        t = max(t, float(horizon))
                    ret = False  # nothing active, nothing to come
                    break

                # ---- constant-rate segment until the next event -----
                ids = a_ids[:na]
                rem = a_rem[:na]
                if cache is None:
                    c_miss += 1
                    caps = a_caps[:na]
                    rates = None
                    if vec is not None:
                        # sparse path: vec is the previous vector aligned
                        # to the current composition; the policy reports
                        # only the entries that moved (bit-equal to a
                        # full rebuild by the rates_array_patch contract)
                        pairs = patch_fn(ids, caps)
                        if pairs is not None:
                            for pos, val in pairs:
                                vec[pos] = val
                            rates = vec
                            c_patch += 1
                    if rates is None:
                        rates = np.asarray(
                            fn(
                                t, m, ids, rem,
                                a_work[:na], a_rel[:na], caps,
                            ),
                            dtype=float,
                        )
                    # inline _check_rates: same shape gate, same
                    # amortized-verification cadence as per-event — one
                    # counted call per decision point, patched or not
                    if rates.shape != (na,):
                        raise FlowSimError(
                            f"{policy.name}: rates shape {rates.shape} "
                            f"!= ({na},)"
                        )
                    calls = rate_calls
                    rate_calls = calls + 1
                    if calls % check_k:
                        c_skip += 1
                    else:
                        c_run += 1
                        if (rates < -_RATE_TOL).any():
                            raise FlowSimError(
                                f"{policy.name}: negative rate"
                            )
                        if (rates > caps * (1 + _RATE_TOL) + _RATE_TOL).any():
                            raise FlowSimError(
                                f"{policy.name}: rate exceeds per-job cap"
                            )
                        if rates.sum() > m * (1 + _RATE_TOL) + _RATE_TOL:
                            raise FlowSimError(
                                f"{policy.name}: total rate "
                                f"{rates.sum():.6g} exceeds m={m}"
                            )
                        rates = np.clip(rates, 0.0, None)
                    rsum = float(radd(rates))
                    cache = (rates, rsum)
                else:
                    c_hit += 1
                    rates, rsum = cache
                if patch_fn is not None and rates is not vec:
                    # a fresh array reached us (full rebuild, check-pass
                    # clip, or a cache carried over from the per-event
                    # path): copy it into the scratch so the completion /
                    # admission shifts below can mutate in place
                    vbuf[:na] = rates
                    vec = vbuf[:na]
                c_reuse += 1
                eff = rates * speed if speed != 1.0 else rates

                served = eff > 0
                if na >= 32:
                    sp = served.nonzero()[0]
                    ns = sp.size
                    sparse = 4 * ns <= na
                else:
                    # tiny active sets: the dense sweep is cheaper than
                    # the nonzero() gather (both are bit-equal)
                    sparse = False
                if sparse:
                    eff_s = eff[sp]
                    dt = float(rmin(rem[sp] / eff_s)) if ns else np.inf
                else:
                    finish = a_fin[:na]
                    finish[:] = np.inf
                    np.divide(rem, eff, out=finish, where=served)
                    dt = float(rmin(finish))
                if ja < n:
                    dt_arr = next_rel - t
                    if dt_arr < dt:
                        dt = dt_arr
                if horizon is not None and horizon > t:
                    dt_hor = float(horizon) - t
                    if dt_hor < dt:
                        dt = dt_hor

                if dt == np.inf:
                    if horizon is not None:
                        ret = False  # parked with idle-rate jobs
                        break
                    raise FlowSimError(
                        f"{policy.name}: stalled at t={t:.6g} with "
                        f"{na} active jobs, zero rates and no "
                        "future events"
                    )
                if dt < 0:
                    raise FlowSimError(
                        f"{policy.name}: negative time step {dt}"
                    )

                if dt > 0:
                    if sparse:
                        rem[sp] -= eff_s * dt
                    else:
                        rem -= eff * dt
                    busy += rsum * dt
                    t += dt

                # ---- completions ------------------------------------
                sparse_done = sparse and not fresh
                if sparse_done:
                    dpos = sp[rem[sp] <= a_tol[:na][sp]] if ns else sp
                    n_done = int(dpos.size)
                else:
                    # nonzero() both counts and locates the finished
                    # entries in one pass (count_nonzero + argmax would
                    # be two)
                    done_mask = rem <= a_tol[:na]
                    dpos = done_mask.nonzero()[0]
                    n_done = dpos.size
                    fresh = False
                if n_done == 1:
                    # the overwhelmingly common case: one job finishes —
                    # scalar bookkeeping, no fancy-index round trips
                    p = int(dpos[0])
                    j = int(ids[p])
                    r = j - base
                    rem_all[r] = rem[p]
                    a_ids[p : na - 1] = a_ids[p + 1 : na]
                    a_blk[:, p : na - 1] = a_blk[:, p + 1 : na]
                    na -= 1
                    if vec is not None:
                        vbuf[p:na] = vbuf[p + 1 : na + 1]
                        vec = vbuf[:na]
                    flow[r] = t - release[r]
                    completed += 1
                    completions.append((j, t))
                    cache = None
                    if has_completion:
                        c_views += 1
                        policy.on_completion(
                            j,
                            _make_view(
                                t,
                                m,
                                a_ids[:na],
                                a_rem[:na],
                                a_work[:na],
                                a_rel[:na],
                                a_caps[:na],
                                speed,
                            ),
                        )
                elif n_done:
                    done = ids[dpos]
                    rem_all[done - base if base else done] = rem[dpos]
                    if has_completion:
                        for j in done.tolist():
                            p = int(a_ids[:na].searchsorted(j))
                            a_ids[p : na - 1] = a_ids[p + 1 : na]
                            a_blk[:, p : na - 1] = a_blk[:, p + 1 : na]
                            na -= 1
                            if vec is not None:
                                vbuf[p:na] = vbuf[p + 1 : na + 1]
                                vec = vbuf[:na]
                            flow[j - base] = t - release[j - base]
                            completed += 1
                            completions.append((j, t))
                            cache = None
                            c_views += 1
                            policy.on_completion(
                                j,
                                _make_view(
                                    t,
                                    m,
                                    a_ids[:na],
                                    a_rem[:na],
                                    a_work[:na],
                                    a_rel[:na],
                                    a_caps[:na],
                                    speed,
                                ),
                            )
                    else:
                        if sparse_done:
                            keep = np.ones(na, dtype=bool)
                            keep[dpos] = False
                        else:
                            keep = ~done_mask
                        nk = na - n_done
                        a_ids[:nk] = ids[keep]
                        a_blk[:, :nk] = a_blk[:, :na][:, keep]
                        na = nk
                        if vec is not None:
                            # fancy indexing copies first, so writing the
                            # result back into the scratch is safe
                            vbuf[:nk] = vec[keep]
                            vec = vbuf[:nk]
                        for j in done.tolist():
                            flow[j - base] = t - release[j - base]
                            completed += 1
                            completions.append((j, t))
                        cache = None

                # ---- batch-window exit ------------------------------
                if horizon is not None:
                    if not (t * admit_mul < horizon):
                        break
                elif completed == n:
                    break
        finally:
            self._events = ev
            self._t = t
            self._na = na
            self._next_arrival = ja
            self._next_rel = next_rel
            self._rates_cache = cache
            self._busy_time = busy
            self._completed = completed
            self._rate_calls = rate_calls
            perf.rate_misses += c_miss
            perf.rate_hits += c_hit
            perf.checks_run += c_run
            perf.checks_skipped += c_skip
            perf.view_reuses += c_reuse
            perf.view_builds += c_views
            perf.batch_rate_patches += c_patch
            if folded:
                perf.batch_jumps += 1
                perf.batch_events_folded += folded
        return ret

    def _inc_steps(self, horizon: float | None) -> bool:
        """Incremental completion-horizon kernel: :meth:`_inc_step_tail`
        fused into a :meth:`_batched_steps`-style event loop.

        Eligibility (``_inc_kernel_ok``) is the per-event incremental
        gate plus no faults and ``use_batch_horizon`` — the same "nothing
        interleaves a non-arrival/non-completion event" condition the
        dense batch kernel needs.  Every iteration replicates one
        ``step()`` invocation exactly (admission threshold, dt bound
        sequence, lowest-id-first completions, hook views, event
        accounting), so goldens and the incremental≡dense suite hold
        against either dense path.  Per-event cost is O((m + changes)
        log n): the order walk touches the served head, completions pop
        from the calendar, and nothing sweeps the active set.
        """
        if self._weights_dirty:
            self._push_weights()
        max_events = self._max_events
        if not max_events:
            max_events = self.config.max_events or default_max_events(self._n)
            self._max_events = max_events
        perf = self.perf
        policy = self.policy
        inc = self._inc
        order = inc.order
        cal = inc.cal
        dust = inc.dust
        rekey = inc.kind == "remaining"
        neg = inc.neg
        speed = self._speed
        m = self.m
        n = self._n
        has_completion = self._has_completion_hook
        has_arrival = self._has_arrival_hook
        check_k = self._check_k
        admit_mul = 1.0 + _ADMIT_TOL
        a_ids = self._a_ids
        a_rem = self._a_rem
        a_caps = self._a_caps
        a_tol = self._a_tol
        a_work = self._a_work
        a_rel = self._a_rel
        a_blk = self._a_blk
        flow = self._flow
        release = self._release
        work_all = self._work
        caps_all = self._caps_all
        tol_all = self._tol
        rem_all = self._rem
        completions = self._completions
        base = self._base
        key_tie = inc.key_tie
        rates_stable = self._rates_stable
        INF = float("inf")
        folded = 0
        ev = self._events
        t = self._t
        na = self._na
        ja = self._next_arrival
        next_rel = self._next_rel
        busy = self._busy_time
        completed = self._completed
        rate_calls = self._rate_calls
        c_miss = c_hit = c_run = c_skip = c_reuse = c_views = 0
        ret = True
        try:
            while True:
                ev += 1
                folded += 1
                if ev > max_events:
                    raise FlowSimError(
                        f"{policy.name}: exceeded {max_events} events "
                        f"({completed}/{n} jobs done at "
                        f"t={t:.6g})"
                        " — Zeno loop?"
                    )

                # ---- admit arrivals due now -------------------------
                thresh = t * admit_mul
                if next_rel <= thresh:
                    while ja < n and next_rel <= thresh:
                        r = ja - base
                        w = work_all[r]
                        a_ids[na] = ja
                        a_rem[na] = w
                        a_caps[na] = caps_all[r]
                        a_tol[na] = tol_all[r]
                        a_work[na] = w
                        a_rel[na] = release[r]
                        na += 1
                        rem_all[r] = w
                        wf = float(w)
                        order.insert(*key_tie(ja, wf, wf, float(release[r])))
                        if w <= tol_all[r]:
                            dust.append(ja)
                        inc.alloc = None
                        ja += 1
                        next_rel = (
                            float(release[ja - base]) if ja < n else np.inf
                        )
                        if has_arrival:
                            c_views += 1
                            policy.on_arrival(
                                ja - 1,
                                _make_view(
                                    t,
                                    m,
                                    a_ids[:na],
                                    a_rem[:na],
                                    a_work[:na],
                                    a_rel[:na],
                                    a_caps[:na],
                                    speed,
                                ),
                            )
                if not na:
                    if ja < n:
                        if horizon is not None and (
                            next_rel > horizon * admit_mul
                        ):
                            t = max(t, float(horizon))
                            ret = False
                            break
                        t = max(t, next_rel)
                        if horizon is not None and not (
                            t * admit_mul < horizon
                        ):
                            break
                        continue
                    if horizon is not None:
                        t = max(t, float(horizon))
                    ret = False
                    break

                # ---- constant-rate segment until the next event -----
                rem = a_rem[:na]
                alloc = inc.alloc
                if alloc is None:
                    c_miss += 1
                    alloc = self._inc_build_alloc(na, m)
                    calls = rate_calls
                    rate_calls = calls + 1
                    if calls % check_k:
                        c_skip += 1
                    else:
                        c_run += 1
                        self._inc_check_alloc(alloc, na, m)
                    if rates_stable:
                        inc.alloc = alloc
                else:
                    c_hit += 1
                c_reuse += 1
                pos, rates, rsum = alloc
                ns = pos.size
                if ns:
                    rem_s = rem[pos]
                    eff_s = rates * speed if speed != 1.0 else rates
                    served_ids = a_ids[:na][pos].tolist()
                    newset = set(served_ids)
                    for j in inc.cal_jobs - newset:
                        cal.discard(j)
                    inc.cal_jobs = newset
                    qs = (rem_s / eff_s).tolist()
                    for i in range(ns):
                        cal.update(served_ids[i], qs[i])
                    dt = cal.min_quotient()
                else:
                    if inc.cal_jobs:
                        for j in inc.cal_jobs:
                            cal.discard(j)
                        inc.cal_jobs = set()
                    dt = INF
                if ja < n:
                    dt_arr = next_rel - t
                    if dt_arr < dt:
                        dt = dt_arr
                if horizon is not None and horizon > t:
                    dt_hor = float(horizon) - t
                    if dt_hor < dt:
                        dt = dt_hor

                if dt == INF:
                    if horizon is not None:
                        ret = False
                        break
                    raise FlowSimError(
                        f"{policy.name}: stalled at t={t:.6g} with "
                        f"{na} active jobs, zero rates and no "
                        "future events"
                    )
                if dt < 0:
                    raise FlowSimError(
                        f"{policy.name}: negative time step {dt}"
                    )

                if dt > 0:
                    if ns:
                        rem[pos] -= eff_s * dt
                    busy += rsum * dt
                    t += dt
                    if rekey and ns:
                        olds = rem_s.tolist()
                        news = rem[pos].tolist()
                        for i in range(ns):
                            ov = olds[i]
                            nv = news[i]
                            if nv == ov:
                                continue
                            j = served_ids[i]
                            if neg:
                                order.remove(-ov, -j)
                                order.insert(-nv, -j)
                            else:
                                order.remove(ov, j)
                                order.insert(nv, j)

                # ---- completions ------------------------------------
                done: list[int] = []
                if ns:
                    dm = rem[pos] <= a_tol[:na][pos]
                    if dm.any():
                        done = [served_ids[i] for i in np.flatnonzero(dm)]
                if dust:
                    # no faults here: every dust entry is still active
                    ds = set(done)
                    for j in dust:
                        if j not in ds:
                            done.append(j)
                    del dust[:]
                    done.sort()
                for j in done:
                    p = int(a_ids[:na].searchsorted(j))
                    r = j - base
                    rem_all[r] = a_rem[p]
                    order.remove(
                        *key_tie(
                            j, float(a_rem[p]), float(a_work[p]),
                            float(a_rel[p]),
                        )
                    )
                    cal.discard(j)
                    inc.cal_jobs.discard(j)
                    a_ids[p : na - 1] = a_ids[p + 1 : na]
                    a_blk[:, p : na - 1] = a_blk[:, p + 1 : na]
                    na -= 1
                    flow[r] = t - release[r]
                    completed += 1
                    completions.append((j, t))
                    inc.alloc = None
                    if has_completion:
                        c_views += 1
                        policy.on_completion(
                            j,
                            _make_view(
                                t,
                                m,
                                a_ids[:na],
                                a_rem[:na],
                                a_work[:na],
                                a_rel[:na],
                                a_caps[:na],
                                speed,
                            ),
                        )

                # ---- batch-window exit ------------------------------
                if horizon is not None:
                    if not (t * admit_mul < horizon):
                        break
                elif completed == n:
                    break
        finally:
            self._events = ev
            self._t = t
            self._na = na
            self._next_arrival = ja
            self._next_rel = next_rel
            self._busy_time = busy
            self._completed = completed
            self._rate_calls = rate_calls
            perf.rate_misses += c_miss
            perf.rate_hits += c_hit
            perf.checks_run += c_run
            perf.checks_skipped += c_skip
            perf.view_reuses += c_reuse
            perf.view_builds += c_views
            if folded:
                perf.batch_jumps += 1
                perf.batch_events_folded += folded
            self._inc_sync_perf()
        return ret

    def advance_to(self, t: float) -> None:
        """Process every event with time ≤ ``t`` and park the clock there.

        A no-op when ``t`` is not ahead of the clock (rewinding is
        impossible; the clock never moves backwards).
        """
        t = float(t)
        while self._t * (1 + _ADMIT_TOL) < t:
            if self._inc_spec is not None and self._inc is None:
                if self._na >= self._inc_min:
                    self._inc_promote()
            if self._inc_kernel_ok:
                ok = self._inc_steps(t)
            elif self._batch_ok:
                ok = self._batched_steps(t)
            else:
                ok = self.step(horizon=t)
            if not ok:
                break

    def drain(self) -> None:
        """Step until every registered job has completed."""
        while self._completed < self._n:
            if self._inc_spec is not None and self._inc is None:
                if self._na >= self._inc_min:
                    self._inc_promote()
            if self._inc_kernel_ok:
                ok = self._inc_steps(None)
            elif self._batch_ok:
                ok = self._batched_steps(None)
            else:
                ok = self.step()
            if not ok:
                break  # unreachable while jobs remain; defensive

    # -- streaming harvest -------------------------------------------------

    def _harvest_bound(self) -> int:
        """First job id that may still need its master row: every id below
        it is completed (admitted, not active, not suspended)."""
        b = self._next_arrival
        if self._na:
            a0 = int(self._a_ids[0])
            if a0 < b:
                b = a0
        if self._suspended:
            s0 = min(self._suspended)
            if s0 < b:
                b = s0
        return b

    @property
    def n_harvestable(self) -> int:
        """Completed-prefix jobs :meth:`harvest` would fold right now."""
        return self._harvest_bound() - self._base

    def harvest(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fold the completed prefix out of the job table and free its rows.

        Returns ``(ids, flows, weights, min_flows)`` for every job whose
        id precedes all active / suspended / pending jobs (in id order,
        ``min_flows`` already speed-normalized exactly as
        :meth:`result` reports them), then compacts the master columns
        left and advances the internal base offset.  Calling it
        periodically is what makes a streamed run O(active + pending) in
        memory; the cost is one shift of the stored rows per call.

        After the first non-empty harvest :meth:`result` /
        :meth:`state_dict` are unavailable (their per-job arrays are
        gone) — the streaming driver
        (:func:`repro.flowsim.simulate_stream`) accumulates
        :class:`~repro.core.metrics.StreamingMetrics` instead.  Weighted
        policies (``set_weights``) are refused: their weight tables are
        indexed by absolute job id over the full run.
        """
        if hasattr(self.policy, "set_weights"):
            raise FlowSimError(
                f"{self.policy.name}: weighted policies are not supported "
                "in streaming mode (their weight table spans all jobs)"
            )
        base = self._base
        b = self._harvest_bound()
        k = b - base
        if k <= 0:
            empty = np.empty(0, dtype=float)
            return np.empty(0, dtype=np.int64), empty, empty.copy(), empty.copy()
        ids = np.arange(base, b, dtype=np.int64)
        flows = self._flow[:k].copy()
        if np.isnan(flows).any():  # pragma: no cover - internal invariant
            raise FlowSimError("harvest bound covers an unfinished job")
        weights = self._weights[:k].copy()
        m = self.m
        min_flows = (
            np.fromiter(
                (spec.lower_bound(m) for spec in self._specs[:k]), float, k
            )
            / self.config.speed
        )
        stored = self._n - base
        keep = stored - k
        for a in (
            self._release,
            self._work,
            self._caps_all,
            self._weights,
            self._rem,
            self._tol,
            self._flow,
        ):
            a[:keep] = a[k:stored]
        del self._specs[:k]
        del self._profiles[:k]
        self._base = b
        if self._completions:
            # keep the observer log bounded too: harvested ids are gone
            self._completions = [e for e in self._completions if e[0] >= b]
        return ids, flows, weights, min_flows

    # -- results -----------------------------------------------------------

    def result(self, partial: bool = False) -> ScheduleResult:
        """Assemble a :class:`~repro.core.metrics.ScheduleResult`.

        With ``partial=False`` (default) every registered job must have
        completed; ``partial=True`` restricts the arrays to completed jobs
        (in job-id order), for progress reporting mid-run.
        """
        if self._base:
            raise FlowSimError(
                "result() is unavailable after harvest(): per-job arrays "
                "were folded into streaming metrics "
                "(use repro.flowsim.simulate_stream)"
            )
        n = self._n
        flows = self._flow[:n].copy()
        weights = self._weights[:n].copy()
        min_flows = np.array(
            [spec.lower_bound(self.m) for spec in self._specs], dtype=float
        )
        if partial:
            mask = ~np.isnan(flows)
            flows = flows[mask]
            weights = weights[mask]
            min_flows = min_flows[mask]
        elif np.isnan(flows).any():
            raise FlowSimError(
                f"{self.policy.name}: run ended with unfinished jobs"
            )
        makespan = self._t
        utilization = (
            self._busy_time / (makespan * self.m) if makespan > 0 else 0.0
        )
        self.perf.events = self._events
        if self._inc is not None:
            self._inc_sync_perf()
        fault_extra = {}
        if self.faults is not None:
            fault_extra["faults"] = {
                "plan": self.faults.plan.name,
                "points": self.faults.n_points,
                "applied": self.faults.applied,
                "lost_work": self._lost_work,
                "displaced_work": self._displaced_work,
                "requeues": [dict(e) for e in self._requeue_log],
                "down_now": sorted(self.faults.down_procs()),
                "log": [dict(e) for e in self._fault_log],
            }
        return ScheduleResult(
            scheduler=self.policy.name,
            m=self.m,
            flow_times=flows,
            preemptions=self.policy.preemptions,
            migrations=self.policy.migrations,
            makespan=makespan,
            min_flows=(min_flows / self.config.speed) if min_flows.size else None,
            weights=weights if weights.size else None,
            extra={
                "utilization": utilization,
                "events": self._events,
                "switches": self.policy.switches,
                "perf": self.perf.as_dict(),
                **(
                    {"segments": self._segments}
                    if self.config.record_segments
                    else {}
                ),
                **fault_extra,
            },
        )

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Engine-level state as JSON-compatible plain data.

        Covers the clock, job table and progress arrays — everything the
        stepper owns.  Policy state is *not* included (policies are opaque
        to the engine); :mod:`repro.serve.snapshot` captures it alongside.
        Jobs carrying explicit DAGs are not snapshottable.
        """
        if self._base:
            raise FlowSimError(
                "cannot snapshot a harvested (streaming) run: the "
                "completed prefix was folded away"
            )
        for spec in self._specs:
            if spec.dag is not None:
                raise FlowSimError(
                    "cannot snapshot a run with explicit DAG jobs"
                )
        na = self._na
        if na:
            # the buffers hold the live remaining-work values; flush them
            # to the master column the snapshot serializes
            self._rem[self._a_ids[:na]] = self._a_rem[:na]
        fault_state = {}
        if self.faults is not None:
            fault_state = {
                "faults": self.faults.state_dict(),
                "fault_log": [dict(e) for e in self._fault_log],
                "lost_work": self._lost_work,
                "displaced_work": self._displaced_work,
                "requeue_log": [dict(e) for e in self._requeue_log],
                "suspended": sorted(self._suspended),
            }
        return {
            **fault_state,
            "m": self.m,
            "seed": self.seed,
            "config": {
                "completion_tol": self.config.completion_tol,
                "max_events": self.config.max_events,
                "speed": self.config.speed,
                "use_profiles": self.config.use_profiles,
                "record_segments": self.config.record_segments,
                "check_every_k": self.config.check_every_k,
                "use_rates_array": self.config.use_rates_array,
                "use_batch_horizon": self.config.use_batch_horizon,
                "use_incremental": self.config.use_incremental,
                "incremental_min_active": self.config.incremental_min_active,
            },
            "t": self._t,
            "next_arrival": self._next_arrival,
            "completed": self._completed,
            "busy_time": self._busy_time,
            "events": self._events,
            "act_ids": self._a_ids[:na].tolist(),
            "rem": [float(x) for x in self._rem[: self._n]],
            "flow": [
                None if np.isnan(x) else float(x) for x in self._flow[: self._n]
            ],
            "completions": [[int(j), float(t)] for j, t in self._completions],
            "segments": [
                [a, b, {str(k): v for k, v in alloc.items()}]
                for a, b, alloc in self._segments
            ],
            "jobs": [
                {
                    "job_id": s.job_id,
                    "release": s.release,
                    "work": s.work,
                    "span": s.span,
                    "mode": s.mode.value,
                    "weight": s.weight,
                }
                for s in self._specs
            ],
        }

    @classmethod
    def from_state_dict(cls, state: dict, policy: Policy) -> "FlowStepper":
        """Rebuild a stepper from :meth:`state_dict` output.

        ``policy`` must already carry its restored internal state (the
        constructor's ``policy.reset`` call is *skipped* — the caller is
        handing us a mid-run policy, and resetting it would wipe exactly
        what a checkpoint is meant to preserve).
        """
        cfg = FlowSimConfig(**state["config"])
        stepper = cls.__new__(cls)
        stepper.m = int(state["m"])
        stepper.policy = policy
        stepper.seed = int(state["seed"])
        stepper.config = cfg
        stepper._specs = []
        stepper._profiles = []
        n = len(state["jobs"])
        cap = max(16, n)
        stepper._release = np.zeros(cap, dtype=float)
        stepper._work = np.zeros(cap, dtype=float)
        stepper._caps_all = np.zeros(cap, dtype=float)
        stepper._weights = np.ones(cap, dtype=float)
        stepper._rem = np.zeros(cap, dtype=float)
        stepper._tol = np.zeros(cap, dtype=float)
        stepper._flow = np.full(cap, np.nan, dtype=float)
        stepper._n = 0
        for raw in state["jobs"]:
            spec = JobSpec(
                job_id=raw["job_id"],
                release=raw["release"],
                work=raw["work"],
                span=raw["span"],
                mode=ParallelismMode(raw["mode"]),
                weight=raw.get("weight", 1.0),
            )
            j = spec.job_id
            stepper._release[j] = spec.release
            stepper._work[j] = spec.work
            stepper._caps_all[j] = spec.mode.rate_cap(stepper.m)
            stepper._weights[j] = spec.weight
            stepper._tol[j] = cfg.completion_tol * max(1.0, spec.work)
            stepper._specs.append(spec)
            stepper._profiles.append(None)
            stepper._n += 1
        for j, r in enumerate(state["rem"]):
            stepper._rem[j] = r
        for j, f in enumerate(state["flow"]):
            stepper._flow[j] = np.nan if f is None else f
        stepper._base = 0
        stepper._act_ids = [int(j) for j in state["act_ids"]]
        stepper._t = float(state["t"])
        stepper._next_arrival = int(state["next_arrival"])
        stepper._completed = int(state["completed"])
        stepper._busy_time = float(state["busy_time"])
        stepper._events = int(state["events"])
        stepper._completions = [
            (int(j), float(t)) for j, t in state["completions"]
        ]
        stepper._segments = [
            (a, b, {int(k): v for k, v in alloc.items()})
            for a, b, alloc in state["segments"]
        ]
        if state.get("faults") is not None:
            from repro.faults.timeline import FaultTimeline

            stepper.faults = FaultTimeline.from_state_dict(state["faults"])
            stepper._fault_log = [dict(e) for e in state.get("fault_log", [])]
            stepper._lost_work = float(state.get("lost_work", 0.0))
            stepper._displaced_work = float(state.get("displaced_work", 0.0))
            stepper._requeue_log = [dict(e) for e in state.get("requeue_log", [])]
            stepper._suspended = {int(j) for j in state.get("suspended", ())}
        else:
            stepper.faults = None
            stepper._fault_log = []
            stepper._lost_work = 0.0
            stepper._displaced_work = 0.0
            stepper._requeue_log = []
            stepper._suspended = set()
        # a weight-aware policy already carries its restored table, but a
        # fresh push is harmless and covers policies restored without one
        stepper._weights_dirty = hasattr(policy, "set_weights")
        stepper._init_runtime_caches()
        return stepper


def simulate(
    trace: Trace,
    m: int,
    policy: Policy,
    seed: int = 0,
    config: FlowSimConfig = FlowSimConfig(),
    faults=None,
) -> ScheduleResult:
    """Run ``policy`` over ``trace`` on ``m`` processors; return the result.

    The policy is reset at the start with a dedicated random stream derived
    from ``seed``, so repeated calls are reproducible and two policies in
    the same sweep never share randomness.

    ``faults`` optionally injects a :class:`repro.faults.FaultPlan` (or an
    already-compiled single-use timeline): processors crash and recover,
    capacity degrades, jobs get aborted and resubmitted, all at the plan's
    scheduled times.  The result's ``extra["faults"]`` carries the applied
    fault log and the work lost to aborts.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if len(trace) == 0:
        return ScheduleResult(scheduler=policy.name, m=m, flow_times=np.empty(0))
    stepper = FlowStepper(m, policy, seed=seed, config=config, faults=faults)
    stepper.add_jobs(list(trace.jobs))
    stepper.perf.start()
    stepper.drain()
    stepper.perf.stop()
    return stepper.result()
