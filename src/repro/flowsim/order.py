"""Incremental order maintenance for the flow-level engine.

The dense engine pays O(n_active) — or O(n_active log n_active) — *per
event*: order-driven policies re-``lexsort`` the whole active set on
every rate rebuild and the next-event scan divides every remaining-work
entry.  This module provides the two structures that make per-event work
scale with the *change* instead (PR 10's tentpole):

* :class:`OrderIndex` — a Fenwick-indexed sorted list of ``(key, tie)``
  pairs, the engine-maintained replacement for the policies'
  ``np.lexsort``.  Insert/remove cost O(load + log n) (a bounded-block
  memmove plus the block bisect), ``select``/``rank`` are O(log n) via a
  Fenwick tree over block sizes that is rebuilt lazily after structural
  changes, and iterating the head reproduces the lexsort order exactly:
  ``(key, tie)`` ascending is precisely ``np.lexsort((tie, key))``.
* :class:`CompletionCalendar` — a lazy-invalidation binary heap of
  predicted completion quotients keyed by ``(job, epoch)``.  Rate
  patches invalidate only the touched entries (the served set, O(m));
  entries for jobs whose rate *and* remaining work did not move stay
  valid across segments, and stale entries are discarded lazily on pop.
  The heap minimum is the exact ``min(remaining/eff)`` of the dense
  scan — same IEEE quotients, same minimum, bit for bit.

:func:`sparse_sum` closes the last bit-for-bit gap: the engine's
``busy_time`` accounting adds ``rates.sum() * dt`` per segment, and
numpy's ``add.reduce`` uses *pairwise* summation whose association
depends on the zero entries' positions.  ``sparse_sum`` replicates that
pairwise tree over a virtual dense vector from just the non-zero
entries in O(m log n) — exact because adding ``0.0`` to any finite
non-negative partial is exact, so pruning all-zero subtrees never
changes a bit (verified against ``np.add.reduce`` by a property test).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from heapq import heapify, heappop, heappush

__all__ = ["OrderIndex", "CompletionCalendar", "sparse_sum"]

#: target block size: big enough that the Fenwick layer is tiny, small
#: enough that an in-block insert memmove stays a few cache lines
_LOAD = 256

#: numpy's pairwise-summation block size (PW_BLOCKSIZE)
_PW_BLOCK = 128


class OrderIndex:
    """Sorted multiset-like index of ``(key, tie)`` pairs.

    ``key`` is the policy's priority (remaining work for SRPT, total
    work for SJF/SWF, release for FIFO, negated release for LAPS) and
    ``tie`` the deterministic tie-break (job id, negated for
    descending-id ties).  Pairs must be unique — ``tie`` embeds the job
    id, so they are.

    Storage is a list of sorted blocks (capped at ``2 * load``) with a
    parallel list of block maxima for O(log B) block location; blocks
    split eagerly when overfull and are merged *lazily* — an emptied
    block is dropped, but shrinking blocks are never rebalanced, which
    keeps removal cheap and is why ``load`` bounds amortized, not
    worst-case, block size.  ``ops`` counts structural mutations so the
    engine can surface ``order_ops`` in its perf counters.
    """

    __slots__ = ("_blocks", "_maxes", "_len", "_load", "_fen", "ops")

    def __init__(self, load: int = _LOAD) -> None:
        self._blocks: list[list[tuple[float, int]]] = []
        self._maxes: list[tuple[float, int]] = []
        self._len = 0
        self._load = load
        self._fen: list[int] | None = None  # lazy Fenwick over block sizes
        self.ops = 0

    def __len__(self) -> int:
        return self._len

    def __iter__(self):
        for block in self._blocks:
            yield from block

    def insert(self, key: float, tie: int) -> None:
        """Insert ``(key, tie)`` at its sorted position."""
        self.ops += 1
        self._fen = None
        item = (key, tie)
        blocks = self._blocks
        if not blocks:
            blocks.append([item])
            self._maxes.append(item)
            self._len = 1
            return
        maxes = self._maxes
        i = bisect_left(maxes, item)
        if i == len(blocks):
            i -= 1
            blocks[i].append(item)
            maxes[i] = item
        else:
            insort(blocks[i], item)
        self._len += 1
        block = blocks[i]
        if len(block) > 2 * self._load:
            half = len(block) // 2
            blocks[i : i + 1] = [block[:half], block[half:]]
            maxes[i : i + 1] = [block[half - 1], block[-1]]

    def remove(self, key: float, tie: int) -> None:
        """Remove ``(key, tie)``; raises :class:`KeyError` if absent."""
        self.ops += 1
        self._fen = None
        item = (key, tie)
        maxes = self._maxes
        i = bisect_left(maxes, item)
        if i == len(maxes):
            raise KeyError(item)
        block = self._blocks[i]
        j = bisect_left(block, item)
        if j == len(block) or block[j] != item:
            raise KeyError(item)
        del block[j]
        self._len -= 1
        if block:
            maxes[i] = block[-1]
        else:
            del self._blocks[i]
            del maxes[i]

    def __contains__(self, item: tuple[float, int]) -> bool:
        maxes = self._maxes
        i = bisect_left(maxes, item)
        if i == len(maxes):
            return False
        block = self._blocks[i]
        j = bisect_left(block, item)
        return j < len(block) and block[j] == item

    # -- Fenwick-indexed order statistics ----------------------------------

    def _build_fen(self) -> list[int]:
        """(Re)build the Fenwick tree over block sizes (lazy after any
        mutation; O(B) to build, O(log B) to query)."""
        sizes = [len(b) for b in self._blocks]
        fen = [0] * (len(sizes) + 1)
        for i, s in enumerate(sizes, start=1):
            fen[i] += s
            parent = i + (i & -i)
            if parent < len(fen):
                fen[parent] += fen[i]
        self._fen = fen
        return fen

    def select(self, i: int) -> tuple[float, int]:
        """The ``i``-th smallest pair (0-based) in O(log n)."""
        if not 0 <= i < self._len:
            raise IndexError(i)
        fen = self._fen or self._build_fen()
        # descend the Fenwick tree to the block holding global index i
        pos = 0
        rem = i
        bit = 1 << (len(fen).bit_length() - 1)
        while bit:
            nxt = pos + bit
            if nxt < len(fen) and fen[nxt] <= rem:
                rem -= fen[nxt]
                pos = nxt
            bit >>= 1
        return self._blocks[pos][rem]

    def rank(self, key: float, tie: int) -> int:
        """Number of stored pairs strictly smaller than ``(key, tie)``."""
        item = (key, tie)
        i = bisect_left(self._maxes, item)
        if i == len(self._maxes):
            return self._len
        r = bisect_left(self._blocks[i], item)
        for b in range(i):
            r += len(self._blocks[b])
        return r

    def head(self, k: int) -> list[tuple[float, int]]:
        """The ``k`` smallest pairs in ascending order (O(k) walk)."""
        out: list[tuple[float, int]] = []
        for block in self._blocks:
            need = k - len(out)
            if need <= 0:
                break
            out.extend(block[:need] if len(block) > need else block)
        return out


class CompletionCalendar:
    """Lazy-invalidation heap of predicted completion quotients.

    One live entry per *served* job: the exact IEEE quotient
    ``remaining / eff`` the dense next-event scan would compute for it
    this segment.  :meth:`update` supersedes a job's entry only when the
    quotient actually moved (rate patches therefore invalidate only the
    touched entries); :meth:`discard` drops a job that left the served
    set; :meth:`min_quotient` pops stale heap entries lazily and returns
    the minimum live quotient — bit-identical to
    ``float(np.divide(rem, eff, where=served).min())``.

    ``pops`` counts heap pops (stale discards plus resolved minima);
    ``invalidations`` counts superseded/dropped entries.  Both surface
    as engine perf counters (``calendar_pops`` /
    ``calendar_invalidations``); the heavy-churn streaming test bounds
    ``pops`` far below ``events * n_active``, the dense scan's cost.
    """

    __slots__ = ("_heap", "_live", "_seq", "pops", "invalidations")

    def __init__(self) -> None:
        # heap entries: (quotient, job, epoch); _live: job -> (epoch, q).
        # Epochs are drawn from one monotone sequence so an entry from a
        # job's earlier served lifetime can never alias a later one.
        self._heap: list[tuple[float, int, int]] = []
        self._live: dict[int, tuple[int, float]] = {}
        self._seq = 0
        self.pops = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._live)

    def update(self, job: int, q: float) -> None:
        """Set ``job``'s predicted quotient to ``q`` (no-op if unchanged)."""
        cur = self._live.get(job)
        if cur is not None:
            if cur[1] == q:
                return  # prediction still valid — entry survives as-is
            self.invalidations += 1
        epoch = self._seq
        self._seq = epoch + 1
        self._live[job] = (epoch, q)
        heap = self._heap
        heappush(heap, (q, job, epoch))
        if len(heap) > 64 + 4 * len(self._live):
            # amortized compaction: stale entries below the heap top are
            # never popped lazily, so without this the heap grows with
            # *events*, not with the served set (streamed runs must stay
            # flat in memory).  Rebuilding from the live map returns the
            # same minimum — ``min_quotient`` yields the quotient value,
            # so ties between entries are unobservable.
            self._heap = [(lq, j, ep) for j, (ep, lq) in self._live.items()]
            heapify(self._heap)

    def discard(self, job: int) -> None:
        """Drop ``job``'s entry (left the served set / completed)."""
        if self._live.pop(job, None) is not None:
            self.invalidations += 1

    def min_quotient(self) -> float:
        """Minimum live quotient, or ``inf`` when nothing is scheduled."""
        heap = self._heap
        live = self._live
        while heap:
            q, job, epoch = heap[0]
            cur = live.get(job)
            if cur is not None and cur[0] == epoch:
                self.pops += 1
                return q
            heappop(heap)
            self.pops += 1
        return float("inf")

    def clear(self) -> None:
        if self._live:
            self.invalidations += len(self._live)
        self._heap.clear()
        self._live.clear()


def sparse_sum(pos: list[int], val: list[float], n: int) -> float:
    """``float(np.add.reduce(v))`` of the virtual dense vector ``v`` of
    length ``n`` with ``v[pos[i]] = val[i]`` (``pos`` strictly ascending)
    and ``0.0`` elsewhere — without materializing it.

    Replicates numpy's pairwise summation tree (8-way unrolled blocks of
    128, halves rounded to multiples of 8) exactly; all-zero subtrees
    contribute an exact ``0.0`` and are pruned, so the cost is
    O(m log n) for ``m`` non-zeros.  Values must be non-negative finite
    (rate vectors are), which keeps every pruned partial exact.
    """
    m = len(pos)

    def rec(lo: int, cnt: int, plo: int, phi: int) -> float:
        if plo == phi:
            return 0.0
        if cnt < 8:
            res = 0.0
            for k in range(plo, phi):
                res += val[k]
            return res
        if cnt <= _PW_BLOCK:
            lim = cnt - (cnt % 8)
            r = [0.0] * 8
            k = plo
            while k < phi:
                off = pos[k] - lo
                if off >= lim:
                    break
                r[off & 7] += val[k]
                k += 1
            res = ((r[0] + r[1]) + (r[2] + r[3])) + ((r[4] + r[5]) + (r[6] + r[7]))
            # numpy folds the non-multiple-of-8 tail into res one element
            # at a time *after* the tree combine — order matters bitwise
            while k < phi:
                res += val[k]
                k += 1
            return res
        half = cnt // 2
        half -= half % 8
        mid = lo + half
        pm = bisect_left(pos, mid, plo, phi)
        return rec(lo, half, plo, pm) + rec(mid, cnt - half, pm, phi)

    return rec(0, n, 0, m)
