"""Flow-level scheduling policies.

The paper's simulation series (Figures 1-2): :class:`SRPT`, :class:`SJF`
(= :class:`SWF` for parallel jobs), :class:`RoundRobin`, and the paper's
contribution :class:`DrepSequential` / :class:`DrepParallel`.  Extensions:
:class:`FIFO`, :class:`LAPS`, :class:`SETF`.
"""

from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.policies.drep import DrepParallel, DrepSequential
from repro.flowsim.policies.fifo import FIFO
from repro.flowsim.policies.laps import LAPS
from repro.flowsim.policies.mlf import MLF
from repro.flowsim.policies.random_np import RandomNonPreemptive
from repro.flowsim.policies.rr import RoundRobin
from repro.flowsim.policies.setf import SETF
from repro.flowsim.policies.sjf import SJF, SWF
from repro.flowsim.policies.srpt import SRPT
from repro.flowsim.policies.weighted import HDF, WDrep, WSRPT

__all__ = [
    "ActiveView",
    "Policy",
    "SRPT",
    "SJF",
    "SWF",
    "RoundRobin",
    "FIFO",
    "LAPS",
    "MLF",
    "RandomNonPreemptive",
    "SETF",
    "DrepSequential",
    "DrepParallel",
    "HDF",
    "WSRPT",
    "WDrep",
]


def policy_by_name(name: str, **kwargs) -> Policy:
    """Instantiate a policy by its table name (case-insensitive)."""
    registry = {
        "srpt": SRPT,
        "sjf": SJF,
        "swf": SWF,
        "rr": RoundRobin,
        "fifo": FIFO,
        "laps": LAPS,
        "mlf": MLF,
        "random-np": RandomNonPreemptive,
        "setf": SETF,
        "drep": DrepSequential,
        "drep-seq": DrepSequential,
        "drep-par": DrepParallel,
        "hdf": HDF,
        "wsrpt": WSRPT,
        "wdrep": WDrep,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(registry)}") from None
    return cls(**kwargs)
