"""Policy interface for the flow-level simulator.

A policy sees the active jobs through an :class:`ActiveView` — aligned
numpy arrays of ids, remaining work, total work, release times, attained
service and rate caps — and returns a rate vector.  Stateful policies
(DREP's integral processor assignment) additionally receive arrival and
completion callbacks; the engine guarantees the callback order documented
on each hook.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["ActiveView", "OrderSpec", "Policy"]


@dataclass(frozen=True)
class OrderSpec:
    """Declarative priority order for the engine's incremental kernels.

    A policy whose allocation is a pure function of a *sorted order* over
    the active set can declare that order here instead of re-sorting on
    every rate rebuild: the engine then maintains a persistent
    key-ordered structure (:class:`repro.flowsim.order.OrderIndex`) in
    O(log n) per admission / completion / fault eviction and feeds the
    policy's allocation from ``(inserted, removed, decremented)`` deltas
    — the sparse, incremental complement of the dense
    ``np.lexsort``-based :meth:`Policy.rates_array` the policy keeps as
    its ``use_incremental=False`` fallback.

    ``key`` names the per-job sort key: ``"remaining"`` (SRPT — the
    engine re-keys served jobs after every segment, the *decremented*
    delta), ``"work"`` (SJF/SWF) or ``"release"`` (FIFO, LAPS).
    ``descending`` flips both the key and the job-id tie-break (LAPS
    serves latest arrivals first, ties to the higher id), matching
    ``np.lexsort((-job_ids, -key))`` exactly as the ascending form
    matches ``np.lexsort((job_ids, key))``.

    ``alloc`` selects the engine-side sparse allocator, each bit-for-bit
    equal to the dense twin by construction:

    * ``"prefix"`` — :func:`repro.flowsim.rates.priority_waterfill`
      over the order: walk the head, grant each job its cap until the
      machine is full; touches O(m) jobs.
    * ``"share_topk"`` — :func:`repro.flowsim.rates.equal_split` over
      the first ``ceil(beta * n)`` jobs of the order (``beta`` read
      from the policy instance); touches O(beta n) jobs.
    """

    key: str
    descending: bool = False
    alloc: str = "prefix"

    def __post_init__(self) -> None:
        if self.key not in ("remaining", "work", "release"):
            raise ValueError(f"unknown order key {self.key!r}")
        if self.alloc not in ("prefix", "share_topk"):
            raise ValueError(f"unknown alloc {self.alloc!r}")


@dataclass(frozen=True)
class ActiveView:
    """Snapshot of the active jobs at one instant.

    All arrays are aligned: entry ``k`` describes the job ``job_ids[k]``
    (``job_ids`` is sorted ascending — an engine invariant).
    ``attained == work - remaining`` is the elapsed service (for SETF).
    Views are cheap, read-only conveniences; policies must not mutate
    them.  The arrays may *alias the engine's live buffers* and are only
    valid for the duration of the call that received them — a policy that
    needs data across calls must copy it.
    """

    t: float
    #: processors currently *up* — shrinks below the machine size while a
    #: fault plan has crashed processors (``repro.faults``)
    m: int
    job_ids: np.ndarray
    remaining: np.ndarray
    work: np.ndarray
    release: np.ndarray
    caps: np.ndarray
    #: resource-augmentation factor: work drains at ``rate * speed``
    #: (relevant only to policies that schedule timers in absolute time)
    speed: float = 1.0

    @property
    def n(self) -> int:
        return int(self.job_ids.size)

    @property
    def attained(self) -> np.ndarray:
        return self.work - self.remaining

    def index_of(self, job_id: int) -> int:
        """Position of ``job_id`` in the view arrays (raises if absent)."""
        pos = np.flatnonzero(self.job_ids == job_id)
        if pos.size != 1:
            raise KeyError(f"job {job_id} not active")
        return int(pos[0])


class Policy(abc.ABC):
    """Base class for flow-level scheduling policies.

    Lifecycle: the engine calls :meth:`reset` once per run, then
    :meth:`on_arrival` / :meth:`on_completion` as events fire, and
    :meth:`rates` after every event.  ``on_arrival`` is called *after* the
    new job joins the active set; ``on_completion`` *after* the finished job
    leaves it.  :meth:`next_timer` lets a policy request an extra event
    (e.g. SETF's service-level crossings); return ``None`` for never.

    :meth:`rates` must return a *fresh* array on every call (never a view
    of internal state that a later hook mutates): the engine may hold on
    to the vector across events when :attr:`rates_stable` permits.
    """

    #: Human-readable name used in results and plots.
    name: str = "policy"

    #: Whether the policy is clairvoyant (needs job sizes up front).  The
    #: paper stresses DREP and RR are non-clairvoyant while SRPT/SJF/SWF
    #: are not; exposed so harnesses can annotate tables.
    clairvoyant: bool = False

    #: **Rate-stability contract.**  ``True`` declares that the rate
    #: vector is a pure function of the active-set *composition* — job
    #: ids, caps, and static per-job attributes (total work, release,
    #: weight) plus any internal state mutated only inside the
    #: arrival/completion hooks.  It must NOT depend on ``remaining`` /
    #: ``attained`` service or the clock ``t``, which drift between
    #: events.  The engine then reuses the last rate vector until the
    #: active set changes (RR/equi-partition-style policies are constant
    #: between events), which makes horizon stops and segment splits in
    #: the serving layer free.  Policies whose priorities move with
    #: attained or remaining work (SRPT, SETF, MLF) must leave this
    #: ``False``.
    rates_stable: bool = False

    #: **Batched-horizon opt-in** (the flowsim completion-horizon
    #: kernel).  ``True`` lets the engine fold whole runs of events
    #: between true decision points — every completion before the next
    #: arrival, and the arrivals themselves — into one vectorized kernel
    #: pass over its flat buffers instead of one ``step()`` per event
    #: (``FlowStepper.drain`` / ``advance_to``).  The kernel preserves
    #: the exact hook order, view contents and RNG draw sequence, so the
    #: opt-in adds only two requirements on top of :attr:`rates_stable`
    #: (which it presumes, together with a :meth:`rates_array`
    #: override): the policy must not treat the *number* of engine
    #: iterations as information (e.g. counting ``rates`` calls as a
    #: clock), and :meth:`rates_array` must return nonnegative rates on
    #: every call — not merely on the amortized ``check_every_k``
    #: verification grid, since the kernel's sparse updates skip
    #: zero-rate entries that a negative rate would silently turn into
    #: (erroneous) progress.  Every bundled ``rates_stable`` policy
    #: satisfies all of this and opts in.
    batch_horizon: bool = False

    #: **Incremental-order opt-in** (the flowsim order/calendar
    #: kernels).  A :class:`OrderSpec` declares that the policy's rate
    #: vector is fully determined by one sorted order over the active
    #: set plus an allocation shape, letting the engine maintain that
    #: order incrementally (``repro.flowsim.order.OrderIndex``) and
    #: predict completions through a lazy calendar instead of
    #: re-sorting/rescanning per event.  The spec must describe
    #: :meth:`rates_array` *exactly* — same keys, same tie-breaks, same
    #: allocation — since the engine stops calling the hook on the
    #: incremental path and the equivalence suite pins bit-for-bit
    #: equality against it.  ``None`` (the default) keeps the policy on
    #: the dense paths.
    order_spec: "OrderSpec | None" = None

    def reset(self, m: int, rng: np.random.Generator) -> None:
        """Prepare for a fresh run on an ``m``-processor machine."""

    def on_arrival(self, job_id: int, view: ActiveView) -> None:
        """Notify that ``job_id`` just arrived (already in ``view``)."""

    def on_completion(self, job_id: int, view: ActiveView) -> None:
        """Notify that ``job_id`` just finished (absent from ``view``)."""

    def on_fault(self, event: dict, view: ActiveView) -> None:
        """Notify of a machine-state fault (``repro.faults``).

        ``event`` is a point action dict with at least ``kind`` (one of
        ``crash`` / ``recover`` / ``degrade_on`` / ``degrade_off`` /
        ``straggle_on`` / ``straggle_off``) and ``t``; crash/recover carry
        ``proc``.  ``view.m`` already reflects the post-event processor
        count.  Stateless policies can ignore faults entirely — the engine
        clips ``view.caps`` to the up-processor count and verifies rates
        against it.  Job aborts are *not* delivered here; the engine
        replays them through :meth:`on_completion` / :meth:`on_arrival` so
        assignment-tracking policies free and re-draw processors with the
        machinery they already have.
        """

    @abc.abstractmethod
    def rates(self, view: ActiveView) -> np.ndarray:
        """Rate vector aligned with ``view.job_ids``.

        Must satisfy ``0 <= rates <= caps`` elementwise and
        ``rates.sum() <= m`` (the engine verifies both).
        """

    def rates_array(
        self,
        t: float,
        m: int,
        job_ids: np.ndarray,
        remaining: np.ndarray,
        work: np.ndarray,
        release: np.ndarray,
        caps: np.ndarray,
    ) -> np.ndarray:
        """Optional vectorized twin of :meth:`rates` (SoA fast path).

        Policies that override this are fed the engine's flat active-set
        buffers directly — no :class:`ActiveView` is materialized on the
        hot path.  The arguments mirror the view fields (``job_ids``
        sorted ascending); the contract is strict:

        * the returned vector must be **bit-for-bit identical** to what
          :meth:`rates` returns on the equivalent view (the golden tests
          and a Hypothesis property enforce this);
        * the input arrays alias live engine state — never mutate or
          retain them; always return a fresh array.

        The engine only uses the hook when
        :attr:`repro.flowsim.engine.FlowSimConfig.use_rates_array` is on
        (default) and the policy actually overrides it; everything else
        falls back to the object path.  Timer policies still receive
        their :meth:`next_timer` view.
        """
        raise NotImplementedError(f"{self.name} has no vectorized rate hook")

    def rates_array_patch(
        self, job_ids: np.ndarray, caps: np.ndarray
    ) -> list[tuple[int, float]] | None:
        """Optional sparse complement of :meth:`rates_array` (batch kernel).

        At a decision point inside the completion-horizon kernel the
        engine already holds the previous segment's rate vector and has
        *structurally aligned* it to the new composition — completed
        entries dropped, admitted jobs appended with rate ``0.0``, order
        still matching ``job_ids``.  A policy whose rate changes are
        local (DREP touches at most a couple of processors per event)
        can then report just the entries that moved instead of paying a
        full :meth:`rates_array` rebuild: return ``(position, rate)``
        pairs covering **every** entry whose rate may differ from that
        aligned vector, with each rate bit-for-bit equal to what
        :meth:`rates_array` would put there.  Positions index the
        ``job_ids`` passed in; ids that already left the active set must
        simply be omitted.  Over-reporting entries whose value did not
        change is harmless; under-reporting silently corrupts the run.

        Return ``None`` (the default) to force a full recompute.  The
        engine still runs the amortized ``check_every_k`` invariant
        verification on the patched vector at the exact same cadence as
        the per-event path, so a patch is never exempt from checking.
        """
        return None

    def next_timer(self, view: ActiveView) -> float | None:
        """Absolute time of the next policy-requested event, if any."""
        return None

    # -- practicality accounting ------------------------------------------

    @property
    def preemptions(self) -> int:
        """Processor switches away from unfinished jobs so far (Thm 1.2)."""
        return 0

    @property
    def migrations(self) -> int:
        """Job resumptions on a different processor so far."""
        return 0

    @property
    def switches(self) -> int:
        """All processor re-assignments so far (the Theorem 1.2 O(mn)
        quantity); includes post-completion re-draws."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
