"""DREP — Distributed Random Equi-Partition (the paper's contribution).

Flow-level form of the algorithm.  Two variants:

* :class:`DrepSequential` — Sec. III, jobs use at most one processor.  On
  an arrival, a free processor (if any) takes the new job outright;
  otherwise every processor flips a coin with probability ``1/|A(t)|``
  (``|A(t)|`` counting the new job) and ties are broken so the new job
  gets **at most one** processor.  On a completion, the freed processor
  draws a job uniformly at random from the queue of *unassigned* jobs.
  Preemptions happen only on arrivals; the expected total is O(n)
  (Theorem 1.2).

* :class:`DrepParallel` — the processor-assignment rule of Sec. IV without
  the work-stealing internals (those live in :mod:`repro.wsim`): on an
  arrival every processor independently switches to the new job with
  probability ``1/|A(t)|`` (several may switch); on a completion each
  processor of the finished job re-draws uniformly from all remaining
  active jobs.  A job's processing rate is ``min(cap, p_i(t))`` — exact
  for the fully parallel jobs of Figure 2.

Both variants expose preemption/migration counters so the Theorem 1.2
budget can be checked empirically (``benchmarks/test_preemptions.py``).
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, Policy

__all__ = ["DrepSequential", "DrepParallel"]

_FREE = -1
#: sentinel for a crashed processor (repro.faults); excluded from coin
#: flips and re-draws until its ``recover`` event restores it to _FREE
_DOWN = -2


def _served_positions(job_ids: np.ndarray, assigned: np.ndarray) -> np.ndarray:
    """View positions of the ``assigned`` job ids present in ``job_ids``.

    ``job_ids`` is sorted ascending and unique (engine invariant), so a
    binary search over the at-most-``m`` assigned ids replaces the O(n·m)
    ``np.isin`` scan the hot loop used to pay per event.
    """
    pos = job_ids.searchsorted(assigned)
    np.minimum(pos, job_ids.size - 1, out=pos)
    return pos[job_ids[pos] == assigned]


def _unassigned_ids(job_ids: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """Active job ids with no processor — ``setdiff1d`` without the sort.

    Returns exactly what ``np.setdiff1d(job_ids, assignment)`` returns
    (``job_ids`` is already sorted unique, so masking preserves order),
    keeping the completion re-draw bit-for-bit identical.
    """
    if job_ids.size == 0:
        return job_ids
    assigned = assignment[assignment >= 0]
    if assigned.size == 0:
        return job_ids
    keep = np.ones(job_ids.size, dtype=bool)
    keep[_served_positions(job_ids, assigned)] = False
    return job_ids[keep]


def _one_proc_rates_arr(
    job_ids: np.ndarray, caps: np.ndarray, assignment: np.ndarray
) -> np.ndarray:
    """Rate vector when every assigned job holds exactly one processor."""
    n = job_ids.size
    rates = np.zeros(n, dtype=float)
    assigned = assignment[assignment >= 0]
    if assigned.size and n:
        pos = _served_positions(job_ids, assigned)
        rates[pos] = np.minimum(1.0, caps[pos])
    return rates


def _one_proc_rates(view: ActiveView, assignment: np.ndarray) -> np.ndarray:
    """View-based wrapper over :func:`_one_proc_rates_arr`."""
    return _one_proc_rates_arr(view.job_ids, view.caps, assignment)


class _DrepBase(Policy):
    """Shared machinery: per-processor assignment table and counters.

    ``arrival_switch_prob`` overrides the coin-flip probability used on a
    job arrival: ``None`` (default) is the paper's ``1/|A(t)|``; a float
    in (0, 1] fixes the probability (ablation X3 in DESIGN.md — a fixed
    probability loses the equi-partition property and, when large, the
    O(n) expected preemption budget).
    """

    clairvoyant = False
    # the assignment table only changes inside the arrival/completion
    # hooks, so the rate vector is stable between composition changes
    rates_stable = True
    batch_horizon = True

    def __init__(self, arrival_switch_prob: float | None = None) -> None:
        if arrival_switch_prob is not None and not 0 < arrival_switch_prob <= 1:
            raise ValueError("arrival_switch_prob must be in (0, 1]")
        self.arrival_switch_prob = arrival_switch_prob
        if arrival_switch_prob is not None:
            self.name = f"DREP(p={arrival_switch_prob:g})"
        self._assignment: np.ndarray | None = None
        self._rng: np.random.Generator | None = None
        self._preemptions = 0
        self._switches = 0
        self._migrations = 0
        self._last_proc: dict[int, set[int]] = {}
        self._n_down = 0
        self._fault_evictions = 0
        # job ids whose processor count changed since the last full or
        # patched rate vector — the rates_array_patch working set
        self._rate_dirty: set[int] = set()
        # inverse of the assignment table (job id -> held processors,
        # absent when none) plus the total held count; lets the hot
        # hooks and patches answer "who holds what" without scanning
        # the processor array
        self._procs_of: dict[int, list[int]] = {}
        self._n_assigned = 0

    def _switch_prob(self, n_active: int) -> float:
        if self.arrival_switch_prob is not None:
            return self.arrival_switch_prob
        return 1.0 / n_active

    def reset(self, m: int, rng: np.random.Generator) -> None:
        self._assignment = np.full(m, _FREE, dtype=np.int64)
        self._rng = rng
        self._preemptions = 0
        self._switches = 0
        self._migrations = 0
        self._last_proc = {}
        self._n_down = 0
        self._fault_evictions = 0
        self._rate_dirty = set()
        self._procs_of = {}
        self._n_assigned = 0

    # -- counters ----------------------------------------------------------

    @property
    def preemptions(self) -> int:
        return self._preemptions

    @property
    def switches(self) -> int:
        """All processor re-assignments, including after completions."""
        return self._switches

    @property
    def migrations(self) -> int:
        return self._migrations

    @property
    def fault_evictions(self) -> int:
        """Jobs knocked off a processor by a crash (repro.faults).

        Tracked separately from :attr:`preemptions` so the Theorem 1.2
        budget keeps counting only the algorithm's own switch decisions.
        """
        return self._fault_evictions

    def processors_of(self, job_id: int) -> np.ndarray:
        """Indices of processors currently assigned to ``job_id``."""
        assert self._assignment is not None
        return (self._assignment == job_id).nonzero()[0]

    def _assign(self, proc: int, job_id: int, preempt: bool) -> None:
        """Move processor ``proc`` onto ``job_id``, updating counters."""
        assert self._assignment is not None
        assignment = self._assignment
        old = int(assignment[proc])
        if old == job_id:
            return
        if preempt and old != _FREE:
            self._preemptions += 1
        self._switches += 1
        assignment[proc] = job_id
        procs_of = self._procs_of
        if old >= 0:
            self._rate_dirty.add(old)
            held = procs_of[old]
            held.remove(proc)
            if not held:
                del procs_of[old]
        else:
            self._n_assigned += 1
        self._rate_dirty.add(job_id)
        if job_id in procs_of:
            procs_of[job_id].append(proc)
        else:
            procs_of[job_id] = [proc]
        seen = self._last_proc.get(job_id)
        if seen is None:
            self._last_proc[job_id] = {proc}
        else:
            if proc not in seen:
                self._migrations += 1
            seen.add(proc)

    def _release_procs_of(self, job_id: int) -> list[int]:
        """Free every processor of ``job_id``; ascending processor order."""
        assert self._assignment is not None
        self._last_proc.pop(job_id, None)
        procs = self._procs_of.pop(job_id, None)
        if procs is None:
            return []
        procs.sort()
        assignment = self._assignment
        for p in procs:
            assignment[p] = _FREE
        self._n_assigned -= len(procs)
        return procs

    # -- faults (repro.faults) --------------------------------------------

    def on_fault(self, event: dict, view: ActiveView) -> None:
        """Crash evicts whatever the processor ran; recovery re-draws.

        An evicted job normally rejoins the unassigned pool — it gets a
        processor again at the next completion/recovery re-draw or arrival
        reshuffle, exactly like a job whose arrival coin flips all failed.
        One exception: if the eviction left the job with no processors
        while a FREE up processor exists (possible under elastic
        scale-downs, where no recovery is ever coming), the job reseats on
        the lowest free processor immediately.  Otherwise a lone survivor
        could stall at rate zero forever with idle capacity beside it.
        The reseat draws no randomness, so trajectories without such an
        eviction — all fault-free runs included — are bit-for-bit stable.
        Slowdown events carry no assignment consequence and are ignored.
        """
        assert self._assignment is not None
        kind = event["kind"]
        if kind == "crash":
            proc = int(event["proc"])
            evicted = int(self._assignment[proc])
            if evicted >= 0:
                self._fault_evictions += 1
                self._rate_dirty.add(evicted)
                held = self._procs_of[evicted]
                held.remove(proc)
                if not held:
                    del self._procs_of[evicted]
                self._n_assigned -= 1
            self._assignment[proc] = _DOWN
            self._n_down += 1
            if evicted >= 0 and evicted not in self._procs_of:
                free = (self._assignment == _FREE).nonzero()[0]
                if free.size:
                    self._assign(int(free[0]), evicted, preempt=False)
        elif kind == "recover":
            proc = int(event["proc"])
            self._assignment[proc] = _FREE
            self._n_down -= 1
            self._redraw_recovered(proc, view)

    def _redraw_recovered(self, proc: int, view: ActiveView) -> None:
        """Put a freshly recovered processor back to work (per variant)."""
        raise NotImplementedError

    def rates_array_patch(self, job_ids, caps):
        """Sparse rate update under the one-processor rule.

        Re-derives ``min(1, cap)`` / ``0`` from the *current* assignment
        table for every dirty job still active, so stale dirty entries
        (recorded before an unconsumed full rebuild) are harmless.
        ``DrepParallel`` overrides this with the processor-count rule.
        """
        assignment = self._assignment
        if assignment is None:
            return None
        dirty = self._rate_dirty
        if not dirty:
            return ()
        out = []
        size = job_ids.size
        procs_of = self._procs_of
        for j in dirty:
            pos = int(job_ids.searchsorted(j))
            if pos < size and job_ids[pos] == j:
                if j in procs_of:
                    c = caps[pos]
                    out.append((pos, c if c < 1.0 else 1.0))
                else:
                    out.append((pos, 0.0))
        dirty.clear()
        return out


class DrepSequential(_DrepBase):
    """DREP for sequential jobs (paper Sec. III)."""

    name = "DREP"

    def on_arrival(self, job_id: int, view: ActiveView) -> None:
        assert self._assignment is not None and self._rng is not None
        if self._n_assigned + self._n_down < self._assignment.size:
            # a free processor takes the new job; no preemption
            free = (self._assignment == _FREE).nonzero()[0]
            self._assign(int(free[0]), job_id, preempt=False)
            return
        prob = self.arrival_switch_prob
        if prob is None:
            prob = 1.0 / view.n  # |A(t)| includes the new job
        if self._n_down:
            # crashed processors flip no coins; the no-fault branch below
            # is kept verbatim so fault-free runs stay bit-for-bit stable
            up = (self._assignment != _DOWN).nonzero()[0]
            flips = self._rng.random(up.size) < prob
            winners = up[flips.nonzero()[0]]
        else:
            flips = self._rng.random(self._assignment.size) < prob
            winners = flips.nonzero()[0]
        if winners.size == 0:
            return  # job waits in the unassigned queue
        # tie-break: exactly one of the coin winners switches (Sec. III,
        # "breaking ties arbitrarily to give the job at most one processor")
        proc = int(winners[self._rng.integers(winners.size)])
        self._assign(proc, job_id, preempt=True)

    def on_completion(self, job_id: int, view: ActiveView) -> None:
        assert self._assignment is not None and self._rng is not None
        freed = self._release_procs_of(job_id)
        if not freed:
            return
        job_ids = view.job_ids
        n = int(job_ids.size)
        rng = self._rng
        procs_of = self._procs_of
        for proc in freed:
            # uniform draw from the unassigned queue by order statistics:
            # the k-th active id skipping the (at most m) assigned
            # positions — same draw as materializing the unassigned array
            # and indexing it, without the O(n) mask/gather per event.
            # ``_procs_of`` keys are exactly the assigned jobs (each
            # sequential job holds one processor, and a held job is
            # always active), so one binary-search pass finds their
            # positions without scanning the processor table.
            n_held = len(procs_of)
            if n_held:
                plist = sorted(
                    job_ids.searchsorted(
                        np.fromiter(procs_of, np.int64, n_held)
                    ).tolist()
                )
            else:
                plist = []
            k = n - n_held
            if k == 0:
                continue  # processor stays free
            idx = int(rng.integers(k))
            for p in plist:
                if p <= idx:
                    idx += 1
                else:
                    break
            self._assign(proc, int(job_ids[idx]), preempt=False)

    def _redraw_recovered(self, proc: int, view: ActiveView) -> None:
        # same rule as a processor freed by a completion: draw uniformly
        # from the unassigned queue, stay free when there is none
        assert self._assignment is not None and self._rng is not None
        unassigned = _unassigned_ids(view.job_ids, self._assignment)
        if unassigned.size:
            pick = int(unassigned[self._rng.integers(unassigned.size)])
            self._assign(int(proc), pick, preempt=False)

    def rates(self, view: ActiveView) -> np.ndarray:
        assert self._assignment is not None
        # sequential DREP gives each job at most one processor
        return _one_proc_rates(view, self._assignment)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        assert self._assignment is not None
        self._rate_dirty.clear()
        return _one_proc_rates_arr(job_ids, caps, self._assignment)


class DrepParallel(_DrepBase):
    """DREP's processor-assignment rule for parallel jobs (paper Sec. IV)."""

    name = "DREP"

    def on_arrival(self, job_id: int, view: ActiveView) -> None:
        assert self._assignment is not None and self._rng is not None
        if self._n_assigned + self._n_down < self._assignment.size:
            free = (self._assignment == _FREE).nonzero()[0]
            for proc in free:
                # idle processors exist only when the machine was empty;
                # they all join the newcomer (work stealing spreads them
                # internally)
                self._assign(int(proc), job_id, preempt=False)
        busy = (self._assignment >= 0).nonzero()[0]
        busy = busy[self._assignment[busy] != job_id]
        if busy.size == 0:
            return
        n_active = view.n  # includes the new job
        flips = self._rng.random(busy.size) < self._switch_prob(n_active)
        for proc in busy[flips]:
            self._assign(int(proc), job_id, preempt=True)

    def on_completion(self, job_id: int, view: ActiveView) -> None:
        assert self._assignment is not None and self._rng is not None
        freed = self._release_procs_of(job_id)
        if view.n == 0:
            return  # machine drained; processors stay free
        for proc in freed:
            pick = int(view.job_ids[self._rng.integers(view.n)])
            self._assign(proc, pick, preempt=False)

    def _redraw_recovered(self, proc: int, view: ActiveView) -> None:
        # same rule as a processor freed by a completion: uniform over all
        # active jobs, stay free on an empty machine
        assert self._assignment is not None and self._rng is not None
        if view.n:
            pick = int(view.job_ids[self._rng.integers(view.n)])
            self._assign(int(proc), pick, preempt=False)

    def rates(self, view: ActiveView) -> np.ndarray:
        return self.rates_array(
            view.t, view.m, view.job_ids, view.remaining,
            view.work, view.release, view.caps,
        )

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        assert self._assignment is not None
        self._rate_dirty.clear()
        n = job_ids.size
        rates = np.zeros(n, dtype=float)
        assigned = self._assignment[self._assignment >= 0]
        if assigned.size == 0 or n == 0:
            return rates
        # per-job processor counts in one bincount pass; ids outside the
        # active set simply never get read back (assignment ⊆ active ids)
        counts = np.bincount(assigned, minlength=int(job_ids[-1]) + 1)
        np.minimum(caps, counts[job_ids], out=rates)
        return rates

    def rates_array_patch(self, job_ids, caps):
        """Sparse rate update under the processor-count rule."""
        assignment = self._assignment
        if assignment is None:
            return None
        dirty = self._rate_dirty
        if not dirty:
            return ()
        out = []
        size = job_ids.size
        procs_of = self._procs_of
        for j in dirty:
            pos = int(job_ids.searchsorted(j))
            if pos < size and job_ids[pos] == j:
                c = float(len(procs_of.get(j, ())))
                cap = caps[pos]
                out.append((pos, cap if cap < c else c))
        dirty.clear()
        return out
