"""First-In-First-Out (FIFO / First-Come-First-Served).

Not part of the paper's simulation series, but the canonical
no-preemption straw man its motivating example attacks (Sec. I,
"Challenges"): a large job that arrives first occupies the whole machine
and a burst of small jobs behind it suffers.  Included so tests and
ablations can reproduce that pathology quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, OrderSpec, Policy
from repro.flowsim.rates import priority_waterfill

__all__ = ["FIFO"]


class FIFO(Policy):
    """Serve jobs in arrival order, each up to its cap."""

    name = "FIFO"
    clairvoyant = False
    rates_stable = True  # priority is the static release time
    batch_horizon = True
    order_spec = OrderSpec(key="release")  # static keys: inserts/removes only

    def rates(self, view: ActiveView) -> np.ndarray:
        order = np.lexsort((view.job_ids, view.release))
        return priority_waterfill(view.caps, order, view.m)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        order = np.lexsort((job_ids, release))
        return priority_waterfill(caps, order, m)
