"""Latest-Arrival-Processor-Sharing (LAPS).

LAPS(beta) splits the machine equally among the ceil(beta * |A(t)|) most
recently arrived jobs.  Agrawal et al. [24] showed it is (1+eps)-speed
O(1/eps^3)-competitive for parallel DAG jobs — the best-known guarantee —
but the paper explains why it is impractical and even "difficult to
implement in the simulation": it needs the speedup parameter eps and
preempts at infinitesimal time steps (Sec. V-A).

The flow-level simulator's fractional rates make the idealized LAPS exact
between events, so we provide it as an **extension** beyond the paper's
Figure 1-2 series (experiment X1 in DESIGN.md).
"""

from __future__ import annotations

import math

import numpy as np

from repro.flowsim.policies.base import ActiveView, OrderSpec, Policy
from repro.flowsim.rates import equal_split

__all__ = ["LAPS"]


class LAPS(Policy):
    """Equal sharing among the latest-arriving ``beta`` fraction of jobs."""

    clairvoyant = False
    rates_stable = True  # the beta-fraction depends only on releases/ids
    batch_horizon = True
    # latest-first order, equal split over its first ceil(beta*n) jobs
    order_spec = OrderSpec(key="release", descending=True, alloc="share_topk")

    def __init__(self, beta: float = 0.5) -> None:
        if not 0 < beta <= 1:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.beta = beta
        self.name = f"LAPS({beta:g})"

    def rates(self, view: ActiveView) -> np.ndarray:
        return self.rates_array(
            view.t, view.m, view.job_ids, view.remaining,
            view.work, view.release, view.caps,
        )

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        n = job_ids.size
        k = max(1, math.ceil(self.beta * n))
        # latest arrivals first; job_id breaks release ties deterministically
        order = np.lexsort((-job_ids, -release))
        mask = np.zeros(n, dtype=bool)
        mask[order[:k]] = True
        return equal_split(caps, m, mask)
