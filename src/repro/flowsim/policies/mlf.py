"""Multi-Level Feedback (MLF) — the practical approximation of SETF.

SETF (shortest elapsed time first) needs infinitesimal timesharing among
tied jobs; real systems approximate it with multi-level feedback: jobs
enter the highest-priority level and are demoted each time their attained
service crosses an exponentially growing threshold
(``base * growth**level``).  The machine serves the lowest-numbered
non-empty level, sharing equally within it.

Included as a practicality counterpart: MLF is to SETF what DREP is to
RR — a bounded-preemption approximation of an infinitesimally-preempting
ideal.  Its preemptions happen only at level demotions and arrivals,
O(log(max work / base)) per job.
"""

from __future__ import annotations

import math

import numpy as np

from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.rates import equal_split

__all__ = ["MLF"]


class MLF(Policy):
    """Serve the lowest non-empty attained-service level; demote on
    threshold crossings."""

    clairvoyant = False

    def __init__(self, base: float = 1.0, growth: float = 2.0) -> None:
        if base <= 0:
            raise ValueError("base must be > 0")
        if growth <= 1:
            raise ValueError("growth must be > 1")
        self.base = base
        self.growth = growth
        self.name = f"MLF(b={base:g},g={growth:g})"

    def _levels(self, view: ActiveView) -> np.ndarray:
        """Level index per job: number of thresholds its attained service
        has crossed (threshold k sits at ``base * growth**k``)."""
        att = np.maximum(view.attained, 0.0)
        with np.errstate(divide="ignore"):
            lv = np.floor(np.log(np.maximum(att / self.base, 1e-300)) / math.log(self.growth)) + 1
        lv = np.where(att < self.base, 0, lv)
        return np.maximum(lv, 0).astype(int)

    def rates(self, view: ActiveView) -> np.ndarray:
        if view.n == 0:
            return np.zeros(0)
        levels = self._levels(view)
        rates = np.zeros(view.n)
        left = float(view.m)
        # serve levels from highest priority (0) down, water-filling
        for lv in np.unique(levels):
            if left <= 0:
                break
            mask = levels == lv
            caps = view.caps[mask]
            total = float(caps.sum())
            if total <= left:
                rates[mask] = caps
                left -= total
            else:
                full_mask = np.zeros(view.n, dtype=bool)
                full_mask[np.flatnonzero(mask)] = True
                rates += equal_split(view.caps, left, full_mask)
                left = 0.0
        return rates

    def next_timer(self, view: ActiveView) -> float | None:
        """Fire when any served job crosses its next demotion threshold."""
        if view.n == 0:
            return None
        rates = self.rates(view)
        att = view.attained
        levels = self._levels(view)
        best: float | None = None
        for k in np.flatnonzero(rates > 0):
            threshold = self.base * self.growth ** int(levels[k])
            gap = threshold - att[k]
            if gap <= 0:
                continue
            dt = gap / (rates[k] * view.speed)
            if dt > 0 and (best is None or dt < best):
                best = dt
        return view.t + best if best is not None else None

    def preemption_estimate(self, max_work: float) -> int:
        """Demotions a job of ``max_work`` suffers: O(log(work/base))."""
        if max_work <= self.base:
            return 0
        return int(math.ceil(math.log(max_work / self.base, self.growth)))
