"""Random non-preemptive order — the null control for DREP's randomness.

DREP is random too, but its randomness is *disciplined*: the coin fires
exactly at arrivals with load-adaptive probability, and completions
re-draw uniformly.  This policy strips the discipline: it serves jobs to
completion in a uniformly random order (no preemption at all).

Comparing the two isolates what DREP's arrival-time preemption buys:
on the paper's giant-job-plus-burst pathology this policy is as bad as
FIFO in expectation, while DREP tracks RR.
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.rates import priority_waterfill

__all__ = ["RandomNonPreemptive"]


class RandomNonPreemptive(Policy):
    """Serve jobs to completion in a random (arrival-time drawn) order."""

    name = "RandomNP"
    clairvoyant = False

    def __init__(self) -> None:
        self._priority: dict[int, float] = {}
        self._rng: np.random.Generator | None = None

    def reset(self, m: int, rng: np.random.Generator) -> None:
        self._priority = {}
        self._rng = rng

    def on_arrival(self, job_id: int, view: ActiveView) -> None:
        assert self._rng is not None
        # a uniform random ticket drawn once at arrival = uniformly random
        # service order among waiting jobs
        self._priority[job_id] = float(self._rng.random())

    def on_completion(self, job_id: int, view: ActiveView) -> None:
        self._priority.pop(job_id, None)

    def rates(self, view: ActiveView) -> np.ndarray:
        # non-preemption: a job that has received any service outranks
        # every waiting job (priority -1 < all random tickets in [0, 1)),
        # so it keeps its processor until completion
        pri = np.array(
            [
                -1.0 if view.attained[k] > 0 else self._priority[int(j)]
                for k, j in enumerate(view.job_ids)
            ]
        )
        order = np.lexsort((view.job_ids, pri))
        return priority_waterfill(view.caps, order, view.m)
