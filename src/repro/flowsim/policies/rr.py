"""Round-Robin / Equi-partition (RR).

The paper compares against RR because "intuitively DREP simulates RR by
uniformly and randomly partitioning cores across all active jobs"
(Sec. V-A).  RR is non-clairvoyant and (2+eps)-speed O(1/eps^2)-competitive
[Edmonds, STOC 1999], but needs continuous fractional sharing — an
unbounded number of preemptions in a real system, which is exactly the
practicality gap DREP closes.

In the flow-level simulator RR is the idealized processor-sharing limit:
capacity is split equally among all active jobs with per-job caps and
water-filled redistribution of the excess.
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.rates import equal_split

__all__ = ["RoundRobin"]


class RoundRobin(Policy):
    """Equal processor sharing over all active jobs (EQUI)."""

    name = "RR"
    clairvoyant = False
    rates_stable = True  # equal split over static caps
    batch_horizon = True

    def rates(self, view: ActiveView) -> np.ndarray:
        return equal_split(view.caps, view.m)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        return equal_split(caps, m)
