"""Shortest-Elapsed-Time-First (SETF), a.k.a. foreground-background.

SETF serves jobs in order of least attained service.  The paper cites it
as the closest prior art to DREP's guarantee for sequential jobs:
non-clairvoyant, (1+eps)-speed O(1)-competitive on identical processors
[23, 28] — but with an unbounded number of preemptions, since tied jobs
must be timeshared at infinitesimal granularity (Sec. I).

Idealized multiprocessor SETF: processors are water-filled over jobs in
increasing attained-service order (each up to its cap); the group of jobs
tied at the marginal level shares the leftover capacity equally, which
keeps the tie exact.  Jobs growing at different service rates can reach a
tie later, so the policy requests a timer at the earliest level-crossing
and the engine regroups there.  Extension experiment X1 in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.rates import equal_split

__all__ = ["SETF"]


class SETF(Policy):
    """Water-fill by attained service; equal sharing within tied levels."""

    name = "SETF"
    clairvoyant = False

    def __init__(self, tie_tol: float = 1e-7) -> None:
        if tie_tol <= 0:
            raise ValueError("tie_tol must be > 0")
        self.tie_tol = tie_tol

    def _levels(self, view: ActiveView) -> list[np.ndarray]:
        """Positions grouped by attained service, lowest level first."""
        att = view.attained
        order = np.argsort(att, kind="stable")
        groups: list[list[int]] = []
        level = None
        for k in order:
            a = att[k]
            if level is None or a > level + self.tie_tol * max(1.0, level):
                groups.append([int(k)])
                level = a
            else:
                groups[-1].append(int(k))
        return [np.array(g, dtype=np.intp) for g in groups]

    def rates(self, view: ActiveView) -> np.ndarray:
        rates = np.zeros(view.n, dtype=float)
        left = float(view.m)
        for group in self._levels(view):
            if left <= 0:
                break
            caps = view.caps[group]
            total = float(caps.sum())
            if total <= left:
                rates[group] = caps  # whole level saturates
                left -= total
            else:
                mask = np.zeros(view.n, dtype=bool)
                mask[group] = True
                rates += equal_split(view.caps, left, mask)
                left = 0.0
        return rates

    def next_timer(self, view: ActiveView) -> float | None:
        """Earliest time a faster-served level catches the one above it."""
        if view.n < 2:
            return None
        groups = self._levels(view)
        if len(groups) < 2:
            return None
        rates = self.rates(view)
        att = view.attained
        best: float | None = None
        for g_lo, g_hi in zip(groups, groups[1:]):
            # conservative earliest crossing: fastest job below vs slowest
            # job above (firing early is harmless — the engine just regroups)
            r_lo = float(rates[g_lo].max())
            r_hi = float(rates[g_hi].min())
            if r_lo <= r_hi:
                continue  # gap is not closing
            gap = float(att[g_hi].min() - att[g_lo].max())
            dt = gap / ((r_lo - r_hi) * view.speed)
            if dt > 0 and (best is None or dt < best):
                best = dt
        return view.t + best if best is not None else None
