"""Shortest-Job-First (SJF) and its parallel generalization SWF.

SJF serves the jobs with smallest *total* work first (clairvoyant, but —
unlike SRPT — its priorities are static).  For parallel jobs the paper
calls the same rule Smallest-Work-First (SWF) [24]: the job with the
smallest work receives as many processors as it can use.  Both are the
same water-fill with priority = total work, so one class covers the SJF
series in Figure 1 and the SWF series in Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, OrderSpec, Policy
from repro.flowsim.rates import priority_waterfill

__all__ = ["SJF", "SWF"]


class SJF(Policy):
    """Serve jobs in increasing order of total work."""

    name = "SJF"
    clairvoyant = True
    rates_stable = True  # priority is the static total work
    batch_horizon = True
    order_spec = OrderSpec(key="work")  # static keys: inserts/removes only

    def rates(self, view: ActiveView) -> np.ndarray:
        order = np.lexsort((view.job_ids, view.work))
        return priority_waterfill(view.caps, order, view.m)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        order = np.lexsort((job_ids, work))
        return priority_waterfill(caps, order, m)


class SWF(SJF):
    """Smallest-Work-First — SJF under its parallel-jobs name (Sec. V)."""

    name = "SWF"
