"""Shortest-Remaining-Processing-Time (SRPT).

The paper's strongest simulation baseline (Sec. V-A): clairvoyant and
preemptive, scalable — (1+eps)-speed O(1/eps)-competitive — for sequential
jobs on identical machines [Fox & Moseley, SODA 2011], and *optimal* for
fully parallel jobs (where it reduces to single-machine SRPT).  Serves the
jobs with least remaining work first, each up to its rate cap.
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, OrderSpec, Policy
from repro.flowsim.rates import priority_waterfill

__all__ = ["SRPT"]


class SRPT(Policy):
    """Serve jobs in increasing order of remaining work."""

    name = "SRPT"
    clairvoyant = True
    # incremental twin of the lexsort below: the engine keeps the
    # (remaining, id) order live across events and waterfills its head
    order_spec = OrderSpec(key="remaining")

    def rates(self, view: ActiveView) -> np.ndarray:
        # stable tie-break on job id for reproducibility
        order = np.lexsort((view.job_ids, view.remaining))
        return priority_waterfill(view.caps, order, view.m)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        order = np.lexsort((job_ids, remaining))
        return priority_waterfill(caps, order, m)
