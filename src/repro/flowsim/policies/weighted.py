"""Weighted flow time policies (extension beyond the paper).

The paper's objective is unweighted average flow; the natural
generalization weights each job's waiting by an importance ``w_i`` and
minimizes ``Σ w_i (f_i - r_i)``.  Standard preemptive heuristics:

* :class:`HDF` — Highest Density First: static priority ``w_i / W_i``
  (the preemptive analogue of weighted-shortest-processing-time);
* :class:`WSRPT` — Weighted SRPT: dynamic priority ``w_i / remaining_i``;
* :class:`WDrep` — weighted DREP: on an arrival each processor switches
  with probability ``w_new / W_active`` (the newcomer's share of the
  total active weight) and completion re-draws pick a job with
  probability proportional to its weight.  With unit weights this is
  exactly the paper's DREP; the expected processor share of job ``j``
  becomes ``m · w_j / W_active``, a weighted equi-partition.

``WDrep`` keeps DREP's practicality: preemptions happen only on arrivals
and the expected number per arrival is ``m · w_new / W_active ≤ m``
(still one when weights are balanced).
"""

from __future__ import annotations

import numpy as np

from repro.flowsim.policies.base import ActiveView, Policy
from repro.flowsim.policies.drep import (
    _FREE,
    _DrepBase,
    _one_proc_rates,
    _one_proc_rates_arr,
    _unassigned_ids,
)
from repro.flowsim.rates import priority_waterfill

__all__ = ["HDF", "WSRPT", "WDrep"]


class _WeightAware(Policy):
    """Mixin: policies that need per-job weights from the trace.

    The engine exposes weights via ``set_weights`` before the run; views
    carry only ids, so weighted policies index this table.
    """

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None

    def set_weights(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=float)

    def weights_of(self, view: ActiveView) -> np.ndarray:
        return self._weights_for(view.job_ids)

    def _weights_for(self, job_ids: np.ndarray) -> np.ndarray:
        if self._weights is None:
            return np.ones(job_ids.size)
        return self._weights[job_ids]


class HDF(_WeightAware):
    """Serve jobs in decreasing static density ``weight / work``."""

    name = "HDF"
    clairvoyant = True
    rates_stable = True  # density uses static weight / total work
    batch_horizon = True

    def rates(self, view: ActiveView) -> np.ndarray:
        density = self.weights_of(view) / view.work
        order = np.lexsort((view.job_ids, -density))
        return priority_waterfill(view.caps, order, view.m)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        density = self._weights_for(job_ids) / work
        order = np.lexsort((job_ids, -density))
        return priority_waterfill(caps, order, m)


class WSRPT(_WeightAware):
    """Serve jobs in decreasing dynamic density ``weight / remaining``."""

    name = "WSRPT"
    clairvoyant = True

    def rates(self, view: ActiveView) -> np.ndarray:
        remaining = np.maximum(view.remaining, 1e-300)
        density = self.weights_of(view) / remaining
        order = np.lexsort((view.job_ids, -density))
        return priority_waterfill(view.caps, order, view.m)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        rem = np.maximum(remaining, 1e-300)
        density = self._weights_for(job_ids) / rem
        order = np.lexsort((job_ids, -density))
        return priority_waterfill(caps, order, m)


class WDrep(_DrepBase):
    """Weight-proportional DREP (sequential-job form).

    Reduces to :class:`~repro.flowsim.policies.drep.DrepSequential` when
    every weight is 1.
    """

    name = "WDREP"

    def __init__(self) -> None:
        super().__init__()
        self._weights: np.ndarray | None = None

    def set_weights(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=float)

    def _weight(self, job_id: int) -> float:
        if self._weights is None:
            return 1.0
        return float(self._weights[job_id])

    def on_arrival(self, job_id: int, view: ActiveView) -> None:
        assert self._assignment is not None and self._rng is not None
        free = np.flatnonzero(self._assignment == _FREE)
        if free.size:
            self._assign(int(free[0]), job_id, preempt=False)
            return
        if self._weights is None:
            total = float(view.n)
            share = 1.0 / total
        else:
            total = float(self._weights[view.job_ids].sum())
            share = self._weight(job_id) / total
        flips = self._rng.random(self._assignment.size) < share
        winners = np.flatnonzero(flips)
        if winners.size == 0:
            return
        proc = int(winners[self._rng.integers(winners.size)])
        self._assign(proc, job_id, preempt=True)

    def on_completion(self, job_id: int, view: ActiveView) -> None:
        assert self._assignment is not None and self._rng is not None
        freed = self._release_procs_of(job_id)
        for proc in freed:
            unassigned = _unassigned_ids(view.job_ids, self._assignment)
            if unassigned.size == 0:
                continue
            if self._weights is None:
                pick = int(unassigned[self._rng.integers(unassigned.size)])
            else:
                w = self._weights[unassigned]
                p = w / w.sum()
                pick = int(self._rng.choice(unassigned, p=p))
            self._assign(int(proc), pick, preempt=False)

    def rates(self, view: ActiveView) -> np.ndarray:
        assert self._assignment is not None
        return _one_proc_rates(view, self._assignment)

    def rates_array(self, t, m, job_ids, remaining, work, release, caps):
        assert self._assignment is not None
        self._rate_dirty.clear()
        return _one_proc_rates_arr(job_ids, caps, self._assignment)
