"""Rate-allocation helpers shared by flow-level policies.

A flow-level policy turns the active-job state into a vector of processing
rates (processors, possibly fractional) subject to two constraints:

* per-job cap — 1 for sequential jobs, ``m`` for fully parallel ones
  (:meth:`repro.core.ParallelismMode.rate_cap`);
* machine capacity — rates sum to at most ``m``.

Two allocation shapes cover every policy in the paper's evaluation:
**priority water-fill** (SRPT, SJF/SWF, FIFO: serve jobs in priority order,
each up to its cap, until the machine is full) and **equal split** (RR /
EQUI, LAPS, SETF: split capacity evenly with per-job caps, redistributing
the excess — classic water-filling).
"""

from __future__ import annotations

import numpy as np

__all__ = ["priority_waterfill", "equal_split"]


def priority_waterfill(caps: np.ndarray, order: np.ndarray, m: float) -> np.ndarray:
    """Allocate ``m`` processors to jobs in ``order``, each up to its cap.

    Parameters
    ----------
    caps:
        ``float[n]`` per-job rate caps (> 0).
    order:
        Permutation of ``range(n)``; earlier entries are served first.
    m:
        Machine capacity.

    Returns the rate vector (aligned with ``caps``).  This is the greedy
    schedule SRPT/SJF induce: the highest-priority jobs each get their full
    cap, one job may get a partial remainder, the rest get zero.
    """
    caps = np.asarray(caps, dtype=float)
    order = np.asarray(order)
    n = caps.size
    if order.shape != (n,):
        raise ValueError("order must be a permutation of range(len(caps))")
    rates = np.zeros(n, dtype=float)
    left = float(m)
    # the loop touches at most m+1 jobs; running it on Python floats
    # (``tolist`` — Python floats ARE IEEE doubles, so ``c if c < left``
    # is the same arithmetic as the former ``min(float(caps[idx]), left)``)
    # drops the per-element numpy scalar boxing the hot loop used to pay
    caps_l = caps.tolist()
    for idx in order.tolist():
        c = caps_l[idx]
        give = c if c < left else left
        rates[idx] = give
        left -= give
        if left <= 0:
            break
    return rates


def equal_split(caps: np.ndarray, m: float, mask: np.ndarray | None = None) -> np.ndarray:
    """Water-fill ``m`` processors equally among (masked) jobs with caps.

    Every selected job receives ``min(cap, level)`` where the common level
    is chosen so allocations sum to ``min(m, sum caps)``.  Exact O(n log n)
    water-filling via a sort on caps.
    """
    caps = np.asarray(caps, dtype=float)
    n = caps.size
    if mask is None and n and m > 0:
        # no-mask fast path (RR/SETF splitting over the whole active set):
        # with ``idx == arange(n)`` the general code's gather/scatter is
        # the identity, so these early returns are bit-identical to it
        # while skipping the selection scaffolding.  Any irregularity
        # (non-positive or non-uniform caps) falls through.
        if (caps > 0).all():
            total = caps.sum()
            if total <= m:
                return caps.copy()  # everyone saturates
            c0 = float(caps[0])
            if np.all(caps == c0):
                level = (m - 0.0) / n
                if level <= c0 + 1e-15:
                    return np.minimum(caps, level)
    sel = np.ones(n, dtype=bool) if mask is None else np.asarray(mask, dtype=bool)
    if sel.shape != (n,):
        raise ValueError("mask must align with caps")
    rates = np.zeros(n, dtype=float)
    idx = np.flatnonzero(sel)
    if idx.size == 0 or m <= 0:
        return rates
    c = caps[idx]
    if (c <= 0).any():
        raise ValueError("caps must be positive")
    total = c.sum()
    if total <= m:
        rates[idx] = c  # everyone saturates
        return rates
    # uniform caps (all-sequential or all-fully-parallel views — the
    # common case): the level is m/k outright, exactly what the general
    # loop below computes at i=0, so this skips its sort without changing
    # a single bit of output.  Falls through on any rounding surprise.
    c0 = float(c[0])
    if np.all(c == c0):
        level = (m - 0.0) / c.size
        if level <= c0 + 1e-15:
            rates[idx] = np.minimum(c, level)
            return rates
    # find level L with sum(min(c, L)) == m
    order = np.argsort(c)
    c_sorted = c[order]
    k = c_sorted.size
    # prefix[i] = sum of the i smallest caps
    prefix = np.concatenate([[0.0], np.cumsum(c_sorted)])
    # with the i smallest saturated at their caps, the rest at level L:
    #   prefix[i] + (k - i) * L = m, need c_sorted[i-1] <= L <= c_sorted[i]
    for i in range(k):
        level = (m - prefix[i]) / (k - i)
        if level <= c_sorted[i] + 1e-15:
            alloc = np.minimum(c_sorted, level)
            out = np.empty(k, dtype=float)
            out[order] = alloc
            rates[idx] = out
            return rates
    # numerically everyone saturates (shouldn't happen given total > m)
    rates[idx] = c * (m / total)
    return rates
