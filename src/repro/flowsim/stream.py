"""Streaming driver for the flow-level engine: bounded-RAM simulation.

:func:`simulate_stream` runs a policy over a lazy job stream — an
iterator of :class:`~repro.core.JobSpec` obeying the trace contract
(dense ids, non-decreasing releases), e.g. anything produced by
:mod:`repro.workloads.stream` — without ever materializing the trace or
the per-job result arrays.  Memory is O(active + ingest chunk) no matter
how many jobs flow through.

The trajectory is **bit-for-bit identical** to the materialized
:func:`repro.flowsim.simulate` run of the same jobs.  Two properties of
:class:`~repro.flowsim.engine.FlowStepper` make that true, and both are
already pinned by goldens:

* registering a job *before* the clock reaches its release is invisible
  to the schedule (admission happens at the release either way), so
  pulling the stream an ingest-chunk ahead changes nothing;
* :meth:`~repro.flowsim.engine.FlowStepper.advance_to` horizons that
  coincide with event times reproduce the batch trajectory exactly,
  including RNG draws (the online ≡ offline contract the serving layer
  is built on).

Completed jobs are folded into a
:class:`~repro.core.metrics.StreamingMetrics` accumulator via
:meth:`~repro.flowsim.engine.FlowStepper.harvest` and their rows freed;
``keep_flow_times=True`` opts back into dense retention so
:meth:`~repro.core.metrics.StreamResult.to_schedule_result` can rebuild
the exact :class:`~repro.core.metrics.ScheduleResult` (the equivalence
tests do this on every golden).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.job import JobSpec
from repro.core.metrics import StreamingMetrics, StreamResult
from repro.core.rng import derive_seed
from repro.flowsim.engine import FlowSimConfig, FlowStepper
from repro.flowsim.policies.base import Policy

__all__ = ["simulate_stream", "DEFAULT_INGEST_CHUNK", "DEFAULT_HARVEST_EVERY"]

#: jobs registered ahead of the clock per stream pull: large enough to
#: amortize per-call engine overhead, small enough to stay O(1) memory
DEFAULT_INGEST_CHUNK = 1024
#: completed rows accumulated before a fold-and-free compaction pass
DEFAULT_HARVEST_EVERY = 8192


def simulate_stream(
    jobs: Iterable[JobSpec],
    m: int,
    policy: Policy,
    seed: int = 0,
    config: FlowSimConfig = FlowSimConfig(),
    *,
    keep_flow_times: bool = False,
    metrics: StreamingMetrics | None = None,
    slo_threshold: float | None = None,
    ingest_chunk: int = DEFAULT_INGEST_CHUNK,
    harvest_every: int = DEFAULT_HARVEST_EVERY,
    faults=None,
) -> StreamResult:
    """Run ``policy`` over a lazy job stream in bounded memory.

    Parameters mirror :func:`repro.flowsim.simulate` where they overlap;
    the extras control the streaming machinery:

    ``keep_flow_times``
        Opt out of bounded metrics memory and retain every per-job flow
        (see :class:`~repro.core.metrics.StreamingMetrics`).
    ``metrics``
        Bring your own accumulator (e.g. shared across shards); by
        default one is created with a seed derived from ``seed`` so the
        reservoir quantile sample is reproducible.
    ``slo_threshold``
        Count jobs with ``flow <= slo_threshold`` as SLO-attained; the
        attained fraction lands in the summary as ``slo_attainment``
        (mutually exclusive with a caller-supplied ``metrics``, which
        already fixed its own threshold).
    ``ingest_chunk``
        How many jobs to register ahead of the clock per stream pull.
        Purely a throughput knob — results are identical for any value.
    ``harvest_every``
        Completed rows to accumulate before a compaction pass.  Purely a
        memory/throughput knob — results are identical for any value.

    Weighted *metrics* work (job weights travel through the harvest);
    weighted *policies* do not (their weight tables span all jobs) —
    the engine refuses them at the first harvest.
    """
    if ingest_chunk < 1:
        raise ValueError("ingest_chunk must be >= 1")
    if harvest_every < 1:
        raise ValueError("harvest_every must be >= 1")
    if metrics is None:
        metrics = StreamingMetrics(
            keep_flow_times=keep_flow_times,
            seed=derive_seed(seed, "stream/metrics"),
            slo_threshold=slo_threshold,
        )
    elif slo_threshold is not None:
        raise ValueError(
            "pass slo_threshold on the StreamingMetrics you supply, "
            "not alongside it"
        )
    stepper = FlowStepper(m, policy, seed=seed, config=config, faults=faults)
    stepper.perf.start()
    it = iter(jobs)
    batch: list[JobSpec] = []
    exhausted = False
    while not exhausted:
        batch.clear()
        try:
            while len(batch) < ingest_chunk:
                batch.append(next(it))
        except StopIteration:
            exhausted = True
        if batch:
            stepper.add_jobs(batch)
            # park the clock at the last registered release: every event
            # up to it is processed exactly as the batch loop would
            stepper.advance_to(batch[-1].release)
        if stepper.n_harvestable >= harvest_every:
            _fold(stepper, metrics)
    batch.clear()
    stepper.drain()
    _fold(stepper, metrics)
    stepper.perf.stop()
    stepper.perf.events = stepper.events
    stepper.perf.capture_memory()

    utilization = (
        stepper._busy_time / (stepper.now * m) if stepper.now > 0 else 0.0
    )
    fault_extra = {}
    if stepper.faults is not None:
        # mirror the dense result's fault block exactly (see
        # FlowStepper.result) so fault-injection goldens can compare the
        # two paths key for key
        fault_extra["faults"] = {
            "plan": stepper.faults.plan.name,
            "points": stepper.faults.n_points,
            "applied": stepper.faults.applied,
            "lost_work": stepper._lost_work,
            "displaced_work": stepper._displaced_work,
            "requeues": [dict(e) for e in stepper._requeue_log],
            "down_now": sorted(stepper.faults.down_procs()),
            "log": [dict(e) for e in stepper._fault_log],
        }
    return StreamResult(
        scheduler=policy.name,
        m=m,
        metrics=metrics,
        preemptions=policy.preemptions,
        migrations=policy.migrations,
        makespan=stepper.now,
        extra={
            "utilization": utilization,
            "events": stepper.events,
            "switches": policy.switches,
            "streaming": True,
            "perf": stepper.perf.as_dict(),
            **fault_extra,
        },
    )


def _fold(stepper: FlowStepper, metrics: StreamingMetrics) -> None:
    ids, flows, weights, min_flows = stepper.harvest()
    if flows.size:
        metrics.add_batch(flows, weights, min_flows)
