"""Related-machines testbed — the paper's stated open problem
(Conclusion: scheduling parallel jobs on processors of different speeds).
"""

from repro.hetero.engine import (
    FREE,
    HeteroPolicy,
    HeteroSimError,
    HeteroState,
    simulate_hetero,
)
from repro.hetero.machine import (
    Machine,
    geometric_machine,
    two_class_machine,
    uniform_machine,
)
from repro.hetero.policies import DrepRelated, FifoRelated, SrptRelated

__all__ = [
    "FREE",
    "HeteroPolicy",
    "HeteroSimError",
    "HeteroState",
    "simulate_hetero",
    "Machine",
    "uniform_machine",
    "two_class_machine",
    "geometric_machine",
    "SrptRelated",
    "FifoRelated",
    "DrepRelated",
]
