"""Event-driven simulator for sequential jobs on related machines.

Model: ``m`` processors with speeds ``s_1..s_m``; each sequential job
holds at most one processor at a time and is processed at that
processor's speed.  Policies assign processors to jobs integrally and
are notified at arrivals and completions (plus an optional global
rebalance hook after every event, for clairvoyant policies that re-match
like SRPT).  Between events rates are constant, so the engine jumps to
the next arrival/completion exactly.

This is the testbed for the paper's stated open problem (Conclusion):
online flow-time scheduling on processors of different speeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import ScheduleResult
from repro.core.rng import RngFactory
from repro.hetero.machine import Machine
from repro.workloads.traces import Trace

__all__ = ["HeteroState", "HeteroPolicy", "simulate_hetero", "HeteroSimError"]

FREE = -1


class HeteroSimError(RuntimeError):
    """Invariant violation or stall in the related-machines simulator."""


@dataclass
class HeteroState:
    """Mutable simulation state handed to policies.

    ``assignment[p]`` is the job id processor ``p`` currently runs, or
    ``FREE``.  Policies mutate assignments only through
    :meth:`assign` / :meth:`release_job` so counters stay honest.
    """

    machine: Machine
    assignment: np.ndarray
    remaining: dict[int, float]
    release: np.ndarray
    work: np.ndarray
    t: float = 0.0
    preemptions: int = 0
    switches: int = 0

    @property
    def active_ids(self) -> list[int]:
        return sorted(self.remaining)

    def procs_of(self, job_id: int) -> np.ndarray:
        return np.flatnonzero(self.assignment == job_id)

    def free_procs(self) -> np.ndarray:
        return np.flatnonzero(self.assignment == FREE)

    def rate_of(self, job_id: int) -> float:
        procs = self.procs_of(job_id)
        if procs.size == 0:
            return 0.0
        # sequential job: only its (single) processor's speed counts;
        # enforce the one-processor invariant loudly
        if procs.size > 1:
            raise HeteroSimError(f"sequential job {job_id} holds {procs.size} processors")
        return float(self.machine.speeds[procs[0]])

    def assign(self, proc: int, job_id: int) -> None:
        """Put ``proc`` on ``job_id`` (or FREE), with preemption counting."""
        old = int(self.assignment[proc])
        if old == job_id:
            return
        if old != FREE and old in self.remaining:
            self.preemptions += 1  # switched away from an unfinished job
        if job_id != FREE and (self.assignment == job_id).any():
            raise HeteroSimError(f"job {job_id} already has a processor")
        self.assignment[proc] = job_id
        self.switches += 1

    def release_job(self, job_id: int) -> np.ndarray:
        """Free all processors of a (finished) job; returns their ids."""
        procs = self.procs_of(job_id)
        self.assignment[procs] = FREE
        return procs


class HeteroPolicy:
    """Base class: assignment policies for related machines."""

    name = "hetero-policy"
    clairvoyant = False

    def reset(self, state: HeteroState, rng: np.random.Generator) -> None:
        self.rng = rng

    def on_arrival(self, state: HeteroState, job_id: int) -> None:
        """``job_id`` just became active (already in ``state.remaining``)."""

    def on_completion(self, state: HeteroState, job_id: int) -> None:
        """``job_id`` just finished (already removed; its procs freed)."""

    def rebalance(self, state: HeteroState) -> None:
        """Optional global re-match after every event (clairvoyant)."""


def simulate_hetero(
    trace: Trace,
    machine: Machine,
    policy: HeteroPolicy,
    seed: int = 0,
    completion_tol: float = 1e-9,
) -> ScheduleResult:
    """Run ``policy`` over ``trace`` on ``machine``; sequential jobs only."""
    n = len(trace)
    for spec in trace.jobs:
        if spec.mode.value != "sequential":
            raise ValueError("the related-machines engine handles sequential jobs")
    if n == 0:
        return ScheduleResult(
            scheduler=policy.name, m=machine.m, flow_times=np.empty(0)
        )
    release = np.array([j.release for j in trace.jobs], dtype=float)
    work = np.array([j.work for j in trace.jobs], dtype=float)
    flow_times = np.full(n, np.nan)

    state = HeteroState(
        machine=machine,
        assignment=np.full(machine.m, FREE, dtype=np.int64),
        remaining={},
        release=release,
        work=work,
    )
    rng = RngFactory(seed).stream(f"hetero/{policy.name}")
    policy.reset(state, rng)

    next_arrival = 0
    completed = 0
    busy_speed_time = 0.0
    max_events = 60 * n + 1000
    events = 0

    while completed < n:
        events += 1
        if events > max_events:
            raise HeteroSimError(
                f"{policy.name}: exceeded {max_events} events "
                f"({completed}/{n} done at t={state.t:.6g})"
            )
        # admit due arrivals
        while next_arrival < n and release[next_arrival] <= state.t * (1 + 1e-15):
            j = next_arrival
            next_arrival += 1
            state.remaining[j] = float(work[j])
            policy.on_arrival(state, j)
        if not state.remaining:
            if next_arrival >= n:
                break
            state.t = float(release[next_arrival])
            continue
        policy.rebalance(state)

        # constant-rate segment
        rates = {j: state.rate_of(j) for j in state.remaining}
        dt_candidates = []
        for j, r in rates.items():
            if r > 0:
                dt_candidates.append(state.remaining[j] / r)
        if next_arrival < n:
            dt_candidates.append(release[next_arrival] - state.t)
        if not dt_candidates:
            raise HeteroSimError(
                f"{policy.name}: stalled with {len(state.remaining)} active jobs"
            )
        dt = min(dt_candidates)
        if dt < 0:
            raise HeteroSimError("negative time step")
        if dt > 0:
            for j, r in rates.items():
                if r > 0:
                    state.remaining[j] -= r * dt
                    busy_speed_time += r * dt
            state.t += dt

        # completions (one at a time; policy sees the updated state)
        while True:
            done = [
                j
                for j, rem in state.remaining.items()
                if rem <= completion_tol * max(1.0, work[j])
            ]
            if not done:
                break
            j = min(done)
            del state.remaining[j]
            state.release_job(j)
            flow_times[j] = state.t - release[j]
            completed += 1
            policy.on_completion(state, j)

    if np.isnan(flow_times).any():
        raise HeteroSimError(f"{policy.name}: unfinished jobs at end")
    makespan = state.t
    util = (
        busy_speed_time / (makespan * machine.total_speed) if makespan > 0 else 0.0
    )
    return ScheduleResult(
        scheduler=policy.name,
        m=machine.m,
        flow_times=flow_times,
        preemptions=state.preemptions,
        makespan=makespan,
        min_flows=np.maximum(work / machine.max_speed, 1e-300),
        weights=np.array([j.weight for j in trace.jobs]),
        extra={
            "switches": state.switches,
            "utilization": util,
            "machine": machine.describe(),
        },
    )
