"""Related-machines model: processors with different speeds.

The paper's conclusion poses this as open: "design schedulers for
parallel jobs on processors of different speeds ... As far as the
authors are aware, no prior work has addressed this problem theoretically
in the online model."  This subpackage provides the experimental testbed
for that question: an event-driven simulator where each processor has its
own speed and schedulers assign processors to (sequential) jobs
integrally, so a job's processing rate is the speed of the processor it
holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Machine", "uniform_machine", "two_class_machine", "geometric_machine"]


@dataclass(frozen=True)
class Machine:
    """An ordered set of processors with positive speeds."""

    speeds: np.ndarray

    def __post_init__(self) -> None:
        s = np.ascontiguousarray(self.speeds, dtype=float)
        object.__setattr__(self, "speeds", s)
        if s.ndim != 1 or s.size == 0:
            raise ValueError("speeds must be a non-empty 1-D array")
        if (s <= 0).any():
            raise ValueError("speeds must be positive")

    @property
    def m(self) -> int:
        return int(self.speeds.size)

    @property
    def total_speed(self) -> float:
        return float(self.speeds.sum())

    @property
    def max_speed(self) -> float:
        return float(self.speeds.max())

    def by_speed_desc(self) -> np.ndarray:
        """Processor indices sorted fastest first (stable)."""
        return np.lexsort((np.arange(self.m), -self.speeds))

    def describe(self) -> str:
        uniq, counts = np.unique(self.speeds, return_counts=True)
        parts = [f"{int(c)}x{s:g}" for s, c in zip(uniq[::-1], counts[::-1])]
        return "+".join(parts)


def uniform_machine(m: int, speed: float = 1.0) -> Machine:
    """Identical processors — the paper's setting, as the control case."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return Machine(np.full(m, float(speed)))


def two_class_machine(n_fast: int, n_slow: int, fast: float = 4.0, slow: float = 1.0) -> Machine:
    """big.LITTLE-style machine: a few fast cores, many slow ones."""
    if n_fast < 0 or n_slow < 0 or n_fast + n_slow < 1:
        raise ValueError("need at least one processor")
    return Machine(np.concatenate([np.full(n_fast, fast), np.full(n_slow, slow)]))


def geometric_machine(m: int, ratio: float = 2.0, base: float = 1.0) -> Machine:
    """Speeds ``base * ratio**k`` — a maximally heterogeneous stress case."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if ratio <= 0:
        raise ValueError("ratio must be > 0")
    return Machine(base * ratio ** np.arange(m, dtype=float))
