"""Assignment policies for the related-machines testbed.

Three natural contenders for the paper's open problem:

* :class:`SrptRelated` — clairvoyant greedy: after every event, match the
  fastest processors to the jobs with least remaining work (the classic
  "level algorithm" matching; optimal-ish intuition carried over from
  identical machines);
* :class:`FifoRelated` — non-preemptive-ish control: earliest arrivals
  hold the fastest processors;
* :class:`DrepRelated` — DREP transplanted verbatim: a free processor
  takes an arriving job (fastest free first); otherwise each processor
  flips a coin with probability 1/|A(t)| and one winner switches; a
  completing job's processor re-draws uniformly from the unassigned
  queue.  Non-clairvoyant, decentralized, preemptions only on arrivals —
  the open question is what guarantee this loses to speed heterogeneity.

The known hazard for oblivious policies on related machines: a long job
can get stuck on a slow processor forever.  ``DrepRelated`` optionally
adds the minimal fix (``reseat=True``): when a *faster* processor would
go idle, it mugs the job from the slowest busy processor instead —
a work-stealing-flavored upgrade that never increases total preemptions
beyond completions.
"""

from __future__ import annotations

import numpy as np

from repro.hetero.engine import FREE, HeteroPolicy, HeteroState

__all__ = ["SrptRelated", "FifoRelated", "DrepRelated"]


def _match(state: HeteroState, job_order: list[int]) -> None:
    """Assign fastest processors to jobs in ``job_order`` (one each)."""
    procs = state.machine.by_speed_desc()
    k = min(len(job_order), procs.size)
    target = {int(procs[i]): job_order[i] for i in range(k)}
    # clear processors whose target changed (or who should be free)
    for p in range(state.machine.m):
        want = target.get(p, FREE)
        if state.assignment[p] != want:
            state.assign(p, FREE)
    for p, j in target.items():
        if state.assignment[p] != j:
            # the job may still be held by another processor that is
            # about to be cleared; release it first
            holder = np.flatnonzero(state.assignment == j)
            for h in holder:
                state.assign(int(h), FREE)
            state.assign(p, j)


class SrptRelated(HeteroPolicy):
    """Fastest processors to smallest remaining work, re-matched on events."""

    name = "SRPT-rel"
    clairvoyant = True

    def rebalance(self, state: HeteroState) -> None:
        order = sorted(state.remaining, key=lambda j: (state.remaining[j], j))
        _match(state, order)


class FifoRelated(HeteroPolicy):
    """Fastest processors to earliest arrivals, re-matched on events."""

    name = "FIFO-rel"
    clairvoyant = False

    def rebalance(self, state: HeteroState) -> None:
        order = sorted(state.remaining, key=lambda j: (state.release[j], j))
        _match(state, order)


class DrepRelated(HeteroPolicy):
    """DREP's protocol on heterogeneous processors."""

    clairvoyant = False

    def __init__(self, reseat: bool = False) -> None:
        self.reseat = reseat
        self.name = "DREP-rel+reseat" if reseat else "DREP-rel"

    def on_arrival(self, state: HeteroState, job_id: int) -> None:
        free = state.free_procs()
        if free.size:
            # fastest free processor takes the newcomer
            speeds = state.machine.speeds[free]
            state.assign(int(free[np.argmax(speeds)]), job_id)
            return
        n_active = len(state.remaining)
        flips = self.rng.random(state.machine.m) < 1.0 / n_active
        winners = np.flatnonzero(flips)
        if winners.size == 0:
            return
        proc = int(winners[self.rng.integers(winners.size)])
        state.assign(proc, FREE)
        state.assign(proc, job_id)

    def on_completion(self, state: HeteroState, job_id: int) -> None:
        # the freed processor draws a random unassigned job
        free = state.free_procs()
        for proc in free:
            assigned = set(int(a) for a in state.assignment if a != FREE)
            unassigned = [j for j in state.remaining if j not in assigned]
            if not unassigned:
                if self.reseat:
                    self._reseat(state, int(proc))
                continue
            pick = unassigned[int(self.rng.integers(len(unassigned)))]
            state.assign(int(proc), pick)

    def _reseat(self, state: HeteroState, proc: int) -> None:
        """A faster idle processor mugs the slowest busy processor's job."""
        busy = np.flatnonzero(state.assignment != FREE)
        if busy.size == 0:
            return
        slowest = int(busy[np.argmin(state.machine.speeds[busy])])
        if state.machine.speeds[proc] <= state.machine.speeds[slowest]:
            return
        job = int(state.assignment[slowest])
        state.assign(slowest, FREE)
        state.assign(proc, job)