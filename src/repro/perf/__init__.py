"""Performance instrumentation and the perf-trajectory harness.

Three pieces:

* :class:`~repro.perf.counters.PerfCounters` — near-zero-overhead hot-loop
  counters (rate-recompute hits/misses, amortized-check accounting, macro
  steps) that both engines attach to ``ScheduleResult.extra["perf"]``;
* :mod:`repro.perf.bench` — the standing throughput suite (the same
  workloads as ``benchmarks/test_engine_throughput.py``) runnable from
  Python or via ``drep-sim bench``;
* :mod:`repro.perf.trajectory` — the ``BENCH_<pr>.json`` trajectory
  format: one file per PR recording that PR's measured throughput, so the
  repo carries its own perf history and a regression is a diff away;
* :mod:`repro.perf.scaling` — active-set scaling ladders and the fitted
  per-event exponent behind the ``make scaling-smoke`` asymptotics gate.
"""

from repro.perf.counters import PerfCounters
from repro.perf.bench import (
    BENCH_CASES,
    CALIBRATION_CASE,
    BenchCase,
    drift_factor,
    run_bench_suite,
)
from repro.perf.scaling import (
    SCALING_POLICIES,
    fit_exponent,
    measure_scaling,
    staircase_jobs,
)
from repro.perf.trajectory import (
    discover_root,
    load_trajectory,
    trajectory_entry,
    write_trajectory,
)

__all__ = [
    "PerfCounters",
    "BenchCase",
    "BENCH_CASES",
    "CALIBRATION_CASE",
    "drift_factor",
    "run_bench_suite",
    "SCALING_POLICIES",
    "measure_scaling",
    "fit_exponent",
    "staircase_jobs",
    "trajectory_entry",
    "write_trajectory",
    "load_trajectory",
    "discover_root",
]
