"""The standing throughput suite behind ``drep-sim bench``.

Runs the same five workloads as ``benchmarks/test_engine_throughput.py``
(the pytest-benchmark regression guards) but as a plain library call, so
the numbers can be captured into the ``BENCH_<pr>.json`` perf trajectory
from the CLI, CI, or a notebook without pytest in the loop.

Each case reports the best-of-``repeats`` wall time (the standard
microbenchmark convention: the minimum is the least noisy estimator of
the true cost), the engine's event/step count, derived throughput, and
the engine's own :class:`~repro.perf.counters.PerfCounters` snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.metrics import ScheduleResult

__all__ = [
    "BenchCase",
    "BENCH_CASES",
    "CALIBRATION_CASE",
    "drift_factor",
    "run_bench_suite",
]

#: name of the fixed-work calibration case (see :func:`drift_factor`)
CALIBRATION_CASE = "calibration"


@dataclass(frozen=True)
class BenchCase:
    """One named throughput workload.

    ``build`` constructs the (trace, runner) pair once per case — trace
    generation is *excluded* from the timed region; ``runner()`` executes
    one full simulation and returns its :class:`ScheduleResult`, or — for
    grid cases whose unit of work is many simulations — a plain summary
    dict with ``events``, ``n_jobs``, ``mean_flow`` and ``perf`` keys.
    """

    name: str
    engine: str  # "flowsim" | "wsim" | "grid"
    build: Callable[[float], Callable[[], ScheduleResult]]
    #: cap on timed repeats for expensive cases (``None`` = suite default);
    #: ``run_bench_suite`` uses ``min(repeats, max_repeats)``.
    max_repeats: "int | None" = None


def _flowsim_case(n_jobs: int, distribution: str, policy_key: str, seed: int):
    def build(scale: float) -> Callable[[], ScheduleResult]:
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import policy_by_name
        from repro.workloads.traces import generate_trace

        n = max(10, int(n_jobs * scale))
        trace = generate_trace(n, distribution, 0.7, 8, seed=seed)
        return lambda: simulate(trace, 8, policy_by_name(policy_key), seed=seed)

    return build


def _flowsim_profiled_case(seed: int):
    def build(scale: float) -> Callable[[], ScheduleResult]:
        from repro.analysis.experiments import scale_trace
        from repro.core.job import ParallelismMode
        from repro.flowsim.engine import FlowSimConfig, simulate
        from repro.flowsim.policies import SRPT
        from repro.workloads.traces import attach_dags, generate_trace

        n = max(10, int(300 * scale))
        base = generate_trace(
            n,
            "finance",
            0.6,
            4,
            mode=ParallelismMode.FULLY_PARALLEL,
            seed=seed,
            scale_work_with_m=False,
        )
        trace = attach_dags(scale_trace(base, 200.0), parallelism=8, seed=seed)
        config = FlowSimConfig(use_profiles=True)
        return lambda: simulate(trace, 4, SRPT(), seed=seed, config=config)

    return build


def _calibration_case(seed: int):
    """Fixed-work measurement yardstick — deliberately ignores ``scale``.

    Every other case scales its workload with ``--scale``, so two BENCH
    files taken on different machines (or a machine under different
    load) mix real code speedups with hardware drift.  This case always
    runs the *same* frozen workload; the ratio of its wall times between
    two trajectory entries estimates pure machine drift, which
    :func:`drift_factor` uses to print normalized speedups next to raw
    ones in ``drep-sim bench --compare``.
    """

    def build(scale: float) -> Callable[[], ScheduleResult]:
        del scale  # fixed work is the whole point
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import policy_by_name
        from repro.workloads.traces import generate_trace

        trace = generate_trace(1500, "finance", 0.7, 8, seed=seed)
        return lambda: simulate(trace, 8, policy_by_name("srpt"), seed=seed)

    return build


def drift_factor(old_entry: dict, new_entry: dict) -> float | None:
    """Machine-drift estimate between two trajectory entries.

    ``new_calibration_wall / old_calibration_wall`` — above 1 the new
    machine/run was slower, below 1 faster.  Multiply a raw speedup by
    this factor to normalize out the drift (an unchanged workload on a
    2× slower machine shows raw 0.5×, normalized 1.0×).  ``None`` when
    either entry predates the calibration case.
    """
    o = old_entry.get("benches", {}).get(CALIBRATION_CASE)
    n = new_entry.get("benches", {}).get(CALIBRATION_CASE)
    if not o or not n or not o.get("wall_s") or not n.get("wall_s"):
        return None
    return float(n["wall_s"]) / float(o["wall_s"])


def _wsim_case(seed: int):
    def build(scale: float) -> Callable[[], ScheduleResult]:
        from repro.analysis.experiments import scale_trace
        from repro.core.job import ParallelismMode
        from repro.workloads.traces import attach_dags, generate_trace
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import DrepWS

        n = max(10, int(150 * scale))
        base = generate_trace(
            n,
            "finance",
            0.6,
            8,
            mode=ParallelismMode.FULLY_PARALLEL,
            seed=seed,
            scale_work_with_m=False,
        )
        trace = attach_dags(scale_trace(base, 300.0), parallelism=16, seed=seed)
        return lambda: simulate_ws(trace, 8, DrepWS(), seed=seed)

    return build


def _wsim_hetero_case(seed: int):
    """The wsim workload on a dyadic-speed machine (2-2-1-1-1-1-½-½).

    Same trace as ``wsim_drep``; the speeds sit on the exactness grid, so
    the event-horizon kernel's heterogeneous macro-stepping stays engaged
    (``perf.exactness_fallbacks`` must read 0 in every BENCH file).
    """

    def build(scale: float) -> Callable[[], ScheduleResult]:
        import numpy as np

        from repro.analysis.experiments import scale_trace
        from repro.core.job import ParallelismMode
        from repro.workloads.traces import attach_dags, generate_trace
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import DrepWS

        n = max(10, int(150 * scale))
        base = generate_trace(
            n,
            "finance",
            0.6,
            8,
            mode=ParallelismMode.FULLY_PARALLEL,
            seed=seed,
            scale_work_with_m=False,
        )
        trace = attach_dags(scale_trace(base, 300.0), parallelism=16, seed=seed)
        speeds = np.array([2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5])
        return lambda: simulate_ws(trace, 8, DrepWS(), seed=seed, speeds=speeds)

    return build


def _ws_grid_case(workers, seed: int):
    """Figure-3 style (load × scheduler × replicate) wsim grid.

    Like ``grid_sweep_w*`` for the flow engine: the workload is
    identical for every ``workers`` value, so the pair measures dispatch
    cost, and ``events``/``mean_flow`` must agree between the two — the
    wsim face of the pool's determinism tripwire.  ``workers="auto"``
    resolves to the available cores (serial on a 1-core container).
    """

    def build(scale: float) -> Callable[[], dict]:
        from repro.analysis.pool import run_ws_grid, ws_sweep_cells
        from repro.perf.counters import PerfCounters

        n = max(10, int(60 * scale))
        cells = ws_sweep_cells(
            distribution="finance",
            loads=[0.5, 0.7],
            m_values=[4],
            n_jobs=n,
            seed=seed,
            mean_work_units=50,
            replicates=2,
            figure="bench",
        )

        def run() -> dict:
            counters = PerfCounters()
            rows = run_ws_grid(cells, workers=workers, counters=counters)
            return {
                "events": sum(r["events"] for r in rows),
                "n_jobs": n * len(rows),
                "mean_flow": sum(r["mean_flow"] for r in rows) / len(rows),
                "perf": counters.as_dict(),
            }

        return run

    return build


def _grid_sweep_case(workers: int, seed: int):
    """Figure-1 style (m × policy × replicate) grid through the pool runner.

    The workload is identical for every ``workers`` value (the pool
    guarantees byte-identical rows), so the ``grid_sweep_w*`` pair
    measures pure dispatch overhead/speedup, and their ``events`` and
    ``mean_flow`` must always agree — a cheap determinism tripwire in
    every BENCH file.
    """

    def build(scale: float) -> Callable[[], dict]:
        from repro.analysis.pool import flow_sweep_cells, run_flow_grid
        from repro.perf.counters import PerfCounters

        n = max(10, int(400 * scale))
        cells = flow_sweep_cells(
            distribution="finance",
            load=0.7,
            mode="sequential",
            m_values=[2, 4, 8],
            n_jobs=n,
            seed=seed,
            policies=("srpt", "rr", "drep"),
            replicates=2,
            figure="bench",
        )

        def run() -> dict:
            counters = PerfCounters()
            rows = run_flow_grid(cells, workers=workers, counters=counters)
            return {
                "events": sum(r["events"] for r in rows),
                "n_jobs": n * len(rows),
                "mean_flow": sum(r["mean_flow"] for r in rows) / len(rows),
                "perf": counters.as_dict(),
            }

        return run

    return build


def _flowsim_stream_case(seed: int):
    """Million-job streaming run — the bounded-RAM tripwire.

    The timed region is one :func:`~repro.flowsim.stream.simulate_stream`
    pass over a *lazy* ``generate_stream`` of ``1e6 * scale`` jobs (the
    generator is inside the timed region on purpose: lazy ingestion is
    the thing being measured, and pre-materializing the trace would both
    defeat it and need the O(n) memory this case exists to rule out).

    ``build`` additionally runs an untimed flat-memory gate: two
    tracemalloc'd streaming runs at ``n/100`` and ``n/10`` jobs must not
    differ in Python heap peak by more than 1.25x despite the 10x job
    count — O(active-jobs) memory, not O(n).  The gate raises (failing
    the bench) when streaming regresses to per-job retention; its
    numbers ride along in the row's ``perf`` dict.
    """

    def build(scale: float) -> Callable[[], dict]:
        import tracemalloc

        from repro.flowsim.policies import policy_by_name
        from repro.flowsim.stream import simulate_stream
        from repro.workloads.stream import generate_stream

        n = max(5000, int(1_000_000 * scale))

        def one(n_run: int, traced: bool):
            # The gate pins the chunking knobs well below its job counts:
            # at the defaults (65536/1024/8192) a 20k-job traced run is
            # bounded by n, not the knobs, and the ratio means nothing.
            # The timed full-n run keeps the defaults (n >> knobs there).
            knobs = (
                dict(chunk_jobs=128) if traced else {}
            )
            stream = generate_stream(
                n_run, "exponential", 0.8, 16, seed=seed, **knobs
            )
            sim_knobs = (
                dict(ingest_chunk=64, harvest_every=256) if traced else {}
            )
            if traced:
                tracemalloc.start()
            try:
                res = simulate_stream(
                    stream, 16, policy_by_name("srpt"), seed=seed, **sim_knobs
                )
                peak_mb = (
                    tracemalloc.get_traced_memory()[1] / (1024.0 * 1024.0)
                    if traced
                    else 0.0
                )
            finally:
                if traced:
                    tracemalloc.stop()
            return res, peak_mb

        # Untimed flat-memory gate.  tracemalloc costs ~20x throughput,
        # so the traced pair is capped: 2k vs 20k jobs already exercises
        # a 10x job-count spread, and O(active-jobs) vs O(n) retention
        # shows up identically at any absolute size.
        small_n = max(500, min(n // 100, 2_000))
        _, small_peak = one(small_n, traced=True)
        _, big_peak = one(10 * small_n, traced=True)
        mem_ratio = big_peak / small_peak if small_peak > 0 else float("inf")
        if mem_ratio > 1.25:
            raise RuntimeError(
                f"streaming memory not flat: py heap peak {big_peak:.2f}MB at "
                f"10x jobs vs {small_peak:.2f}MB (ratio {mem_ratio:.2f} > 1.25)"
            )

        def run() -> dict:
            res, _ = one(n, traced=False)
            perf = dict(res.extra.get("perf", {}))
            perf["py_peak_mb_small"] = round(small_peak, 3)
            perf["py_peak_mb_10x"] = round(big_peak, 3)
            perf["mem_flat_ratio"] = round(mem_ratio, 4)
            return {
                "events": int(res.extra["events"]),
                "n_jobs": res.n_jobs,
                "mean_flow": res.mean_flow,
                "perf": perf,
            }

        return run

    return build


def _churn_case(seed: int, use_incremental: bool):
    """High-concurrency streamed staircase: 10⁴ simultaneously active jobs.

    The adversarial regime PR 10 targets — every event touches a
    10,000-deep active set.  The case runs twice in the suite
    (``flowsim_churn_10k`` on the incremental kernels,
    ``flowsim_churn_10k_dense`` on the dense lexsort/scan path) so every
    BENCH file carries its own interleaved A/B: the pair's wall-time
    ratio is the incremental speedup on this machine, this run, with no
    cross-day drift to normalize out.  Results are bit-identical by the
    equivalence suite, so ``events``/``mean_flow`` must agree between
    the two rows.
    """

    def build(scale: float) -> Callable[[], dict]:
        del scale  # the A/B pair is only comparable at frozen depth
        from repro.flowsim.engine import FlowSimConfig
        from repro.flowsim.policies import policy_by_name
        from repro.flowsim.stream import simulate_stream
        from repro.perf.scaling import staircase_jobs

        n = 10_000
        config = FlowSimConfig(use_incremental=use_incremental)

        def run() -> dict:
            res = simulate_stream(
                staircase_jobs(n), 8, policy_by_name("fifo"), seed=seed,
                config=config,
            )
            return {
                "events": int(res.extra["events"]),
                "n_jobs": res.n_jobs,
                "mean_flow": res.mean_flow,
                "perf": dict(res.extra.get("perf", {})),
            }

        return run

    return build


def _active_scaling_case(seed: int):
    """Fitted active-set scaling exponents (the PR 10 asymptotics gate).

    Runs the staircase ladder 10²→10⁴ for every order-driven policy on
    the incremental kernels and records the per-policy fitted exponent
    of wall-per-event vs n_active (``perf["exponent_<policy>"]``) plus
    the summed structure counters.  Deliberately ignores ``--scale``:
    exponents are only comparable on a frozen ladder.  The slope, unlike
    wall time, is machine-drift-free — it is the number the trajectory
    tracks.  ``scripts/scaling_smoke.py`` gates CI on the same
    measurement.
    """

    def build(scale: float) -> Callable[[], dict]:
        del scale
        from repro.perf.scaling import SCALING_POLICIES, measure_scaling

        def run() -> dict:
            res = measure_scaling((100, 1_000, 10_000), seed=seed)
            perf: dict = {}
            events = 0
            flows = []
            for key in SCALING_POLICIES:
                perf[f"exponent_{key}"] = round(res[key]["exponent"], 4)
                for p in res[key]["points"]:
                    events += p["events"]
                    flows.append(p["mean_flow"])
                    for counter in (
                        "order_ops",
                        "calendar_pops",
                        "calendar_invalidations",
                    ):
                        if counter in p:
                            perf[counter] = perf.get(counter, 0) + p[counter]
            return {
                "events": events,
                "n_jobs": sum(
                    p["n_active"]
                    for key in SCALING_POLICIES
                    for p in res[key]["points"]
                ),
                "mean_flow": sum(flows) / len(flows),
                "perf": perf,
            }

        return run

    return build


def _autoscale_case(seed: int):
    """Closed-loop elastic capacity over the flow engine (repro.autoscale).

    One DREP run under the watermark controller: ticks, scale decisions,
    displacement and requeues all ride the timed region, so this case
    tracks the controller's dispatch overhead on top of flowsim — and
    its ``events`` count doubles as a frozen-workload tripwire for the
    elastic trajectory itself (a changed m(t) schedule changes the
    event count).
    """

    def build(scale: float) -> Callable[[], dict]:
        from repro.autoscale.guard import AutoscaleConfig
        from repro.autoscale.loop import run_flowsim_elastic
        from repro.flowsim.policies import policy_by_name
        from repro.workloads.traces import generate_trace

        n = max(10, int(1500 * scale))
        cfg = AutoscaleConfig(
            m_min=1,
            m_max=8,
            tick=5.0,
            up_watermark=15.0,
            down_watermark=4.0,
            cooldown_up=0.0,
            cooldown_down=0.0,
            requeue_delay=1.0,
        )
        trace = generate_trace(n, "finance", 0.7, 8, seed=seed)

        def run() -> dict:
            row = run_flowsim_elastic(
                trace, policy_by_name("drep"), cfg, seed=seed
            )
            return {
                "events": int(row["events"]),
                "n_jobs": n,
                "mean_flow": row["mean_flow"],
                "perf": {
                    "ticks": row["ticks"],
                    "scale_ups": row["scale_ups"],
                    "scale_downs": row["scale_downs"],
                    "requeues": row["requeues"],
                },
            }

        return run

    return build


#: The suite: keep names stable — they are the keys of every
#: ``BENCH_*.json`` entry, and the trajectory is only comparable across
#: PRs if the workloads behind the names never change.
BENCH_CASES: tuple[BenchCase, ...] = (
    BenchCase("flowsim_srpt", "flowsim", _flowsim_case(3000, "finance", "srpt", 301)),
    BenchCase("flowsim_rr", "flowsim", _flowsim_case(3000, "bing", "rr", 302)),
    BenchCase("flowsim_drep", "flowsim", _flowsim_case(3000, "finance", "drep", 303)),
    BenchCase("flowsim_profiled", "flowsim", _flowsim_profiled_case(304)),
    BenchCase("wsim_drep", "wsim", _wsim_case(305)),
    BenchCase("grid_sweep_w1", "grid", _grid_sweep_case(1, 306)),
    BenchCase("grid_sweep_w4", "grid", _grid_sweep_case(4, 306)),
    BenchCase("wsim_hetero", "wsim", _wsim_hetero_case(305)),
    BenchCase("wsim_grid_w1", "grid", _ws_grid_case(1, 307)),
    BenchCase("wsim_grid_auto", "grid", _ws_grid_case("auto", 307)),
    BenchCase("autoscale", "grid", _autoscale_case(308)),
    BenchCase(
        "flowsim_stream_1m", "flowsim", _flowsim_stream_case(309), max_repeats=1
    ),
    BenchCase(
        "flowsim_churn_10k", "flowsim", _churn_case(310, True), max_repeats=2
    ),
    BenchCase(
        "flowsim_churn_10k_dense",
        "flowsim",
        _churn_case(310, False),
        max_repeats=1,
    ),
    BenchCase(
        "active_scaling", "flowsim", _active_scaling_case(311), max_repeats=1
    ),
    BenchCase(CALIBRATION_CASE, "flowsim", _calibration_case(399)),
)


def _events_of(result: ScheduleResult) -> int:
    if "events" in result.extra:
        return int(result.extra["events"])
    # wsim: makespan is the step count
    return int(result.makespan)


def _profile_case(runner: Callable, name: str, profile_dir) -> str:
    """One extra cProfile'd pass; writes the top-20 cumulative listing.

    Runs *after* the timed repeats so the tracer overhead never touches
    the recorded wall times.  Returns the written path.  The profile is
    parent-process only — pooled grid cases show dispatch cost here, the
    simulation time lives in the workers.
    """
    import cProfile
    import io
    import pstats
    from pathlib import Path

    prof = cProfile.Profile()
    prof.enable()
    try:
        runner()
    finally:
        prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(20)
    path = Path(profile_dir) / f"{name}.cprofile.txt"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buf.getvalue())
    return str(path)


def run_bench_suite(
    scale: float = 1.0,
    repeats: int = 3,
    cases: tuple[BenchCase, ...] = BENCH_CASES,
    progress: Callable[[str], None] | None = None,
    profile_dir: "str | None" = None,
) -> dict[str, dict]:
    """Run the suite; returns ``{case name: measurement row}``.

    ``scale`` multiplies job counts (compatible with the benchmarks'
    ``REPRO_BENCH_SCALE`` convention); ``repeats`` reruns each case and
    keeps the fastest wall time.  Rows carry ``wall_s``, ``events``,
    ``events_per_sec``, ``mean_flow`` (a cheap correctness tripwire:
    a perf "win" that changes the answer is a bug) and the engine's
    ``perf`` counter snapshot from the fastest run.

    ``profile_dir`` adds one untimed cProfile pass per case and drops a
    ``<case>.cprofile.txt`` top-20 cumulative listing there (the
    ``drep-sim bench --profile`` backend).
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rows: dict[str, dict] = {}
    for case in cases:
        runner = case.build(scale)
        case_repeats = (
            repeats if case.max_repeats is None else min(repeats, case.max_repeats)
        )
        best_s = float("inf")
        best_result: ScheduleResult | dict | None = None
        for _ in range(case_repeats):
            t0 = time.perf_counter()
            result = runner()
            dt = time.perf_counter() - t0
            if dt < best_s:
                best_s = dt
                best_result = result
        assert best_result is not None
        if profile_dir is not None:
            profile_path = _profile_case(runner, case.name, profile_dir)
            if progress is not None:
                progress(f"{case.name:18s} profile -> {profile_path}")
        if isinstance(best_result, dict):  # grid cases summarize many runs
            events = int(best_result["events"])
            n_jobs = int(best_result["n_jobs"])
            mean_flow = best_result["mean_flow"]
            perf = dict(best_result.get("perf", {}))
        else:
            events = _events_of(best_result)
            n_jobs = best_result.n_jobs
            mean_flow = best_result.mean_flow
            perf = dict(best_result.extra.get("perf", {}))
        rows[case.name] = {
            "engine": case.engine,
            "wall_s": best_s,
            "events": events,
            "events_per_sec": events / best_s if best_s > 0 else None,
            "n_jobs": n_jobs,
            "jobs_per_sec": n_jobs / best_s if best_s > 0 else None,
            "mean_flow": mean_flow,
            "perf": perf,
        }
        if progress is not None:
            progress(
                f"{case.name:18s} {best_s:8.3f}s  "
                f"{events / best_s:>12.0f} events/s"
            )
    return rows
