"""Hot-loop performance counters shared by both simulator engines.

The counters answer the questions the hot-path optimizations raise:
how often was the cached rate vector reused (``rate_hits`` vs
``rate_misses``), how many invariant checks were amortized away
(``checks_run`` vs ``checks_skipped``), how many flowsim segments ran
entirely on the flat SoA buffers without materializing an ActiveView
(``view_reuses``; ``view_builds`` counts the views that were built for
hooks/timers/object-path policies), how many unit steps the wsim
event-horizon kernel skipped (``horizon_jumps`` / ``horizon_steps_saved``),
how many runs fell off the kernel's dyadic-grid exactness contract and
took the pure per-step path (``exactness_fallbacks``), what the flowsim
completion-horizon batch kernel absorbed (``batch_jumps`` kernel entries
folding ``batch_events_folded`` events that would otherwise each have
been a ``step()`` call, of which ``batch_rate_patches`` decision points
refreshed the rate vector through the policy's sparse
``rates_array_patch`` instead of a full ``rates_array`` rebuild), what
the incremental order/calendar kernels did (``order_ops`` structural
mutations of the live priority order, ``calendar_pops`` heap pops and
``calendar_invalidations`` superseded entries in the completion
calendar — see ``docs/performance.md`` for the per-policy complexity
table they evidence), and what the grid-runner pool dispatched
(``pool_tasks`` cells over ``pool_chunks`` chunks across ``pool_workers``
workers, with ``pool_shm_traces`` traces shipped once as
``pool_shm_bytes`` of shared memory instead of being regenerated per
worker).

They are plain integer attributes on a ``__slots__`` object — an
increment is one attribute add, cheap enough to leave on permanently.
Wall-clock phase timers are *not* free, so they are opt-in: engines time
whole runs (one ``perf_counter`` pair) and only the bench harness times
phases.
"""

from __future__ import annotations

import time

__all__ = ["PerfCounters"]


class PerfCounters:
    """Mutable counter block; ``as_dict`` snapshots it for result extras."""

    __slots__ = (
        "events",
        "rate_hits",
        "rate_misses",
        "checks_run",
        "checks_skipped",
        "view_reuses",
        "view_builds",
        "horizon_jumps",
        "horizon_steps_saved",
        "exactness_fallbacks",
        "batch_jumps",
        "batch_events_folded",
        "batch_rate_patches",
        "order_ops",
        "calendar_pops",
        "calendar_invalidations",
        "pool_tasks",
        "pool_chunks",
        "pool_workers",
        "pool_shm_traces",
        "pool_shm_bytes",
        "peak_rss_mb",
        "py_peak_mb",
        "wall_s",
        "_t0",
    )

    def __init__(self) -> None:
        self.events = 0
        self.rate_hits = 0
        self.rate_misses = 0
        self.checks_run = 0
        self.checks_skipped = 0
        self.view_reuses = 0
        self.view_builds = 0
        self.horizon_jumps = 0
        self.horizon_steps_saved = 0
        self.exactness_fallbacks = 0
        self.batch_jumps = 0
        self.batch_events_folded = 0
        self.batch_rate_patches = 0
        self.order_ops = 0
        self.calendar_pops = 0
        self.calendar_invalidations = 0
        self.pool_tasks = 0
        self.pool_chunks = 0
        self.pool_workers = 0
        self.pool_shm_traces = 0
        self.pool_shm_bytes = 0
        self.peak_rss_mb = 0.0
        self.py_peak_mb = 0.0
        self.wall_s = 0.0
        self._t0: float | None = None

    # -- run timing --------------------------------------------------------

    def start(self) -> None:
        """Mark the start of a timed run (cumulative across start/stop)."""
        self._t0 = time.perf_counter()

    def stop(self) -> None:
        if self._t0 is not None:
            self.wall_s += time.perf_counter() - self._t0
            self._t0 = None

    # -- memory observability ----------------------------------------------

    def capture_memory(self) -> None:
        """Record the process memory high-water marks (max over captures).

        ``peak_rss_mb`` is the OS-level resident-set peak
        (``getrusage.ru_maxrss`` — a *process-lifetime* high-water mark,
        so it reports what the whole process ever touched); ``py_peak_mb``
        is the ``tracemalloc`` traced-allocation peak, which callers can
        reset per run (``tracemalloc.reset_peak``) and is therefore the
        number the flat-memory assertions compare.  Only populated when
        tracing is on; capturing is cheap enough to do at every harvest.
        """
        try:
            import resource

            ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # linux reports KiB, macOS bytes
            rss_mb = ru / 1024.0 if ru < 1 << 40 else ru / (1024.0 * 1024.0)
            if rss_mb > self.peak_rss_mb:
                self.peak_rss_mb = rss_mb
        except Exception:  # pragma: no cover - non-POSIX fallback
            pass
        import tracemalloc

        if tracemalloc.is_tracing():
            peak_mb = tracemalloc.get_traced_memory()[1] / (1024.0 * 1024.0)
            if peak_mb > self.py_peak_mb:
                self.py_peak_mb = peak_mb

    # -- reporting ---------------------------------------------------------

    def events_per_sec(self) -> float | None:
        """Throughput over the timed window; ``None`` before any timing."""
        if self.wall_s <= 0:
            return None
        return self.events / self.wall_s

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (only non-zero fields, keeps extras lean)."""
        out = {}
        for name in self.__slots__:
            if name.startswith("_"):
                continue
            value = getattr(self, name)
            if value:
                out[name] = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"PerfCounters({inner})"
