"""Active-set scaling measurements: the asymptotics behind PR 10.

The incremental order/calendar kernels claim O(log n_active) per event
where the dense path pays O(n_active) (next-event scan) to
O(n_active log n_active) (policy re-sort).  This module measures that
claim directly: :func:`measure_scaling` runs an adversarial *staircase*
workload — ``n_active`` jobs arriving back-to-back with work far
exceeding the arrival span, so the whole set is simultaneously active —
at a ladder of ``n_active`` values, normalizes wall time per event, and
:func:`fit_exponent` least-squares fits the slope of
``log(wall/event)`` against ``log(n_active)``.

A per-event cost of ``c * n_active^p`` fits slope ``p``: the dense path
shows ``p ≈ 1``, the incremental kernels must stay **below 0.5** (the
CI gate in ``scripts/scaling_smoke.py`` / ``make scaling-smoke``).
Absolute wall times vary with the machine; the *exponent* is
machine-drift-free, which is why the gate fits it instead of thresholding
throughput.
"""

from __future__ import annotations

import math
import time
from typing import Iterator, Sequence

from repro.core.job import JobSpec

__all__ = [
    "SCALING_POLICIES",
    "staircase_jobs",
    "measure_scaling",
    "fit_exponent",
]

#: the order-driven policy set the exponent gate covers.  LAPS runs at a
#: small beta so its served head is o(n) — at the default beta=0.5 the
#: *policy* touches n/2 jobs per rebuild by definition and no event core
#: can make that sublinear.
SCALING_POLICIES = ("srpt", "sjf", "fifo", "laps")


def staircase_jobs(n_active: int, work: float = 50.0) -> Iterator[JobSpec]:
    """Adversarial staircase: ``n_active`` jobs arriving 1µs apart.

    The arrival span (``n_active`` µs) is far below ``work``, so every
    job is simultaneously active before the first completion — the
    regime where per-event costs proportional to the active-set size
    dominate.
    """
    for i in range(n_active):
        yield JobSpec(job_id=i, release=i * 1e-6, work=work, span=work)


def _policy(key: str):
    from repro.flowsim.policies import LAPS, policy_by_name

    if key == "laps":
        return LAPS(0.05)
    return policy_by_name(key)


def measure_scaling(
    n_actives: Sequence[int] = (100, 1_000, 10_000),
    policies: Sequence[str] = SCALING_POLICIES,
    *,
    m: int = 8,
    use_incremental: bool = True,
    repeats: int = 1,
    seed: int = 0,
) -> dict[str, dict]:
    """Run the staircase ladder; returns per-policy points + fitted exponent.

    Each point records best-of-``repeats`` wall seconds, the event count
    (``2 * n_active``: one arrival and one completion per job — fixed
    per rung by construction, so rungs are comparable across PRs),
    microseconds per event, and the incremental structure counters.
    ``use_incremental=False`` measures the dense comparator on the same
    ladder — the A/B behind the exponent table in
    ``docs/performance.md``.
    """
    from repro.flowsim.engine import FlowSimConfig
    from repro.flowsim.stream import simulate_stream

    # promote at construction: the ladder measures the *pure*
    # incremental path at every rung, not the adaptive hybrid (small
    # rungs would otherwise stay dense below incremental_min_active and
    # pollute the fitted exponent with the dense path's slope)
    config = FlowSimConfig(
        use_incremental=use_incremental, incremental_min_active=0
    )
    out: dict[str, dict] = {}
    for key in policies:
        points = []
        for n in n_actives:
            best = float("inf")
            best_perf: dict = {}
            events = 0
            mean_flow = 0.0
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                res = simulate_stream(
                    staircase_jobs(n), m, _policy(key), seed=seed,
                    config=config,
                )
                dt = time.perf_counter() - t0
                if dt < best:
                    best = dt
                    best_perf = dict(res.extra.get("perf", {}))
                    events = int(res.extra["events"])
                    mean_flow = res.mean_flow
            point = {
                "n_active": int(n),
                "wall_s": best,
                "events": events,
                "us_per_event": 1e6 * best / events if events else None,
                "mean_flow": mean_flow,
            }
            for counter in (
                "order_ops", "calendar_pops", "calendar_invalidations"
            ):
                if counter in best_perf:
                    point[counter] = int(best_perf[counter])
            points.append(point)
        out[key] = {
            "points": points,
            "exponent": fit_exponent(
                [p["n_active"] for p in points],
                [p["wall_s"] / p["events"] for p in points],
            ),
        }
    return out


def fit_exponent(ns: Sequence[int], per_event: Sequence[float]) -> float:
    """Least-squares slope of ``log(per_event)`` vs ``log(n)``.

    The scaling exponent ``p`` of a per-event cost ``c * n^p``; needs at
    least two rungs.
    """
    if len(ns) != len(per_event) or len(ns) < 2:
        raise ValueError("need >= 2 aligned (n, per_event) points")
    xs = [math.log(float(n)) for n in ns]
    ys = [math.log(float(v)) for v in per_event]
    k = len(xs)
    mx = sum(xs) / k
    my = sum(ys) / k
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / sxx
