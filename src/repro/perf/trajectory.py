"""The ``BENCH_<pr>.json`` perf-trajectory format.

One file per PR at the repo root, written by ``drep-sim bench`` (or
``make bench-json``).  Each file is a single JSON object::

    {
      "schema": 1,
      "pr": 2,
      "scale": 1.0,
      "repeats": 3,
      "python": "3.11.7",
      "platform": "Linux-...",
      "benches": {
        "flowsim_rr": {"wall_s": ..., "events": ..., "events_per_sec": ...,
                        "perf": {...}},
        ...
      }
    }

Because workloads behind the bench names are frozen
(:data:`repro.perf.bench.BENCH_CASES`), ``events`` must be identical
across PRs for the same scale — a changed event count flags a semantic
change, not a perf delta — and ``events_per_sec`` ratios between
consecutive ``BENCH_*.json`` files are the speedup history of the repo.
Timestamps are deliberately absent: the files must be byte-reproducible
modulo wall-clock noise, and git history already dates them.
"""

from __future__ import annotations

import json
import platform
import re
from pathlib import Path

__all__ = [
    "trajectory_entry",
    "write_trajectory",
    "load_trajectory",
    "discover_root",
]

SCHEMA_VERSION = 1

_BENCH_FILE = re.compile(r"^BENCH_(\d+)\.json$")

#: files that mark the repo root during upward discovery
_ROOT_MARKERS = ("pyproject.toml", ".git")


def discover_root(start: str | Path | None = None) -> Path:
    """Find the repo root (where the ``BENCH_*.json`` files live).

    Walks up from ``start`` (default: the current directory) looking for a
    directory that either contains a ``BENCH_*.json`` file directly or
    looks like a project root (``pyproject.toml`` / ``.git``).  Falls back
    to walking up from this module's location — an installed or
    ``PYTHONPATH=src`` layout puts the files three levels above
    ``src/repro/perf/`` — and finally to ``start`` itself, so callers
    always get *a* directory back.
    """
    candidates = []
    base = Path(start) if start is not None else Path.cwd()
    candidates.append(base)
    candidates.append(Path(__file__).resolve().parent)
    for origin in candidates:
        node = origin.resolve()
        for directory in (node, *node.parents):
            if any(_BENCH_FILE.match(p.name) for p in directory.glob("BENCH_*.json")):
                return directory
            if any((directory / marker).exists() for marker in _ROOT_MARKERS):
                return directory
    return base


def trajectory_entry(
    benches: dict[str, dict], pr: int, scale: float, repeats: int
) -> dict:
    """Assemble one trajectory record from :func:`run_bench_suite` rows."""
    return {
        "schema": SCHEMA_VERSION,
        "pr": int(pr),
        "scale": float(scale),
        "repeats": int(repeats),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": benches,
    }


def write_trajectory(path: str | Path, entry: dict) -> Path:
    """Write an entry to ``path`` (conventionally ``BENCH_<pr>.json``)."""
    path = Path(path)
    path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
    return path


def load_trajectory(root: str | Path | None = None) -> list[dict]:
    """All ``BENCH_*.json`` entries under ``root``, ordered by PR number.

    ``root=None`` (the default) locates the repo root via
    :func:`discover_root`, so the loader works from any working directory
    — the old ``root="."`` default silently returned ``[]`` whenever the
    caller's cwd wasn't the repo checkout.  Skips files that fail to
    parse (a truncated bench file must not take down analysis of the
    others) but raises on duplicate PR numbers.
    """
    root = discover_root() if root is None else Path(root)
    entries: dict[int, dict] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        match = _BENCH_FILE.match(path.name)
        if not match:
            continue
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        pr = int(entry.get("pr", match.group(1)))
        if pr in entries:
            raise ValueError(f"duplicate perf trajectory entry for PR {pr}")
        entries[pr] = entry
    return [entries[pr] for pr in sorted(entries)]
