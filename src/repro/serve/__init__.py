"""Online scheduling service built on the flow-level simulator.

The paper's pitch is that DREP is *practical*: online, non-clairvoyant,
decentralized, with an O(mn) switch budget (Theorems 1.1-1.2).  This
package exercises exactly that claim by running any
:mod:`repro.flowsim` policy as a **live scheduler** instead of an
offline batch sweep:

* :mod:`repro.serve.online` — :class:`OnlineScheduler`, the
  submit-while-the-clock-runs engine (wraps
  :class:`repro.flowsim.FlowStepper`);
* :mod:`repro.serve.admission` — queue caps, load estimation and
  backpressure/shed decisions;
* :mod:`repro.serve.metrics` — rolling windowed flow-time statistics
  with Prometheus text exposition;
* :mod:`repro.serve.snapshot` — checkpoint/restore of the full
  scheduler state (engine + policy + RNG), so a killed server resumes
  without losing in-flight jobs;
* :mod:`repro.serve.server` — an asyncio JSON-lines server speaking the
  wire protocol documented in ``docs/serving.md``;
* :mod:`repro.serve.loadgen` — an open-loop generator replaying
  :mod:`repro.workloads` traces at a configurable rate multiplier.

A drained online run produces the same
:class:`repro.core.metrics.ScheduleResult` as the batch
:func:`repro.flowsim.simulate` on the same trace — bit-for-bit when
jobs are submitted at their release times — so serving results are
directly comparable with every offline figure in this repo.
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.loadgen import LoadGenReport, replay_into, replay_over_wire
from repro.serve.metrics import RollingMetrics
from repro.serve.online import OnlineScheduler, SubmitOutcome
from repro.serve.server import SchedulerServer, ServeConfig
from repro.serve.shard import (
    HashRing,
    LocalShard,
    ShardFrontend,
    ShardRouter,
    ShardSupervisor,
    SubprocessShard,
    build_local_router,
    build_subprocess_router,
    shard_seed,
)
from repro.serve.snapshot import (
    restore_scheduler,
    restore_scheduler_file,
    snapshot_scheduler,
    snapshot_scheduler_file,
)
from repro.serve.tenancy import MultiTenantAdmission, TenancyConfig, TenantAccount

__all__ = [
    "OnlineScheduler",
    "SubmitOutcome",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "RollingMetrics",
    "SchedulerServer",
    "ServeConfig",
    "snapshot_scheduler",
    "snapshot_scheduler_file",
    "restore_scheduler",
    "restore_scheduler_file",
    "LoadGenReport",
    "replay_into",
    "replay_over_wire",
    "HashRing",
    "LocalShard",
    "ShardFrontend",
    "ShardRouter",
    "ShardSupervisor",
    "SubprocessShard",
    "build_local_router",
    "build_subprocess_router",
    "shard_seed",
    "MultiTenantAdmission",
    "TenancyConfig",
    "TenantAccount",
]
