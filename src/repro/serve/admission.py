"""Admission control: queue caps, load estimation, backpressure and sheds.

An online scheduler that accepts everything has unbounded flow time the
moment offered load crosses 1 — the queue simply grows.  The serving
layer therefore guards the engine with three independent checks, any of
which can shed an offered job:

* a hard cap on concurrently queued jobs (``max_active``);
* a cap on the backlog, measured in *machine-seconds of remaining work
  per processor* (``max_backlog``) — the drain time the queue already
  represents;
* an estimated-load ceiling (``max_load``): an exponentially-decayed
  estimate of arrival rate × mean work / m, the ρ of queueing theory.

The load estimator keeps two exponentially-decayed accumulators (arrival
count and offered work, decay half-life ``halflife`` in sim-time units);
in steady state ``α · Σ_decayed(work) / m`` converges to the offered
utilization, and it both rises within a half-life of a burst starting
and decays during idle stretches.  Decisions are O(1) per arrival and
explainable.  :meth:`AdmissionController.backpressure` maps queue
occupancy into [0, 1] so clients can slow down *before* the hard caps
start shedding.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionDecision"]


class AdmissionDecision(enum.Enum):
    """Outcome of offering one job to the admission layer.

    The last two members are produced only by the multi-tenant subclass
    (:class:`repro.serve.tenancy.MultiTenantAdmission`): ``SHED_NO_CREDIT``
    when a tenant has exhausted its credit balance plus borrow allowance,
    ``SHED_DOMINANT`` when the DRF allocator throttles the tenant whose
    dominant resource share exceeds its entitlement while a global cap is
    tripped.
    """

    ACCEPT = "accept"
    SHED_QUEUE_FULL = "shed_queue_full"
    SHED_BACKLOG = "shed_backlog"
    SHED_OVERLOAD = "shed_overload"
    SHED_NO_CREDIT = "shed_no_credit"
    SHED_DOMINANT = "shed_dominant"

    @property
    def accepted(self) -> bool:
        return self is AdmissionDecision.ACCEPT


@dataclass(frozen=True)
class AdmissionConfig:
    """Caps; ``None`` disables the corresponding check.

    ``max_backlog`` is in units of *time*: remaining queued work divided
    by ``m`` (a perfectly-packed machine would need that long to drain).
    ``max_load`` is a utilization, e.g. ``0.95``; offered jobs are shed
    while the estimate exceeds it.  ``halflife`` tunes how fast the
    estimator forgets (sim-time units).
    """

    max_active: int | None = None
    max_backlog: float | None = None
    max_load: float | None = None
    halflife: float = 50.0

    def __post_init__(self) -> None:
        if self.max_active is not None and self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        if self.max_backlog is not None and self.max_backlog <= 0:
            raise ValueError("max_backlog must be > 0")
        if self.max_load is not None and self.max_load <= 0:
            raise ValueError("max_load must be > 0")
        if self.halflife <= 0:
            raise ValueError("halflife must be > 0")


class AdmissionController:
    """Stateful per-machine admission logic.

    Call :meth:`observe` for every *offered* arrival (accepted or not —
    the estimator tracks offered load, which is what overload looks
    like), then :meth:`decide` with the engine's current occupancy.
    """

    def __init__(self, config: AdmissionConfig, m: int) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.config = config
        self.m = int(m)
        self._alpha = math.log(2.0) / config.halflife
        self._last_t: float | None = None
        self._count = 0.0  # decayed arrival count
        self._work_sum = 0.0  # decayed offered work

    # -- estimation --------------------------------------------------------

    def _decay_to(self, t: float) -> tuple[float, float]:
        if self._last_t is None:
            return 0.0, 0.0
        d = math.exp(-self._alpha * max(0.0, t - self._last_t))
        return self._count * d, self._work_sum * d

    def observe(self, t: float, work: float) -> None:
        """Fold one offered arrival at sim-time ``t`` into the estimators."""
        self._count, self._work_sum = self._decay_to(t)
        self._count += 1.0
        self._work_sum += float(work)
        self._last_t = float(t)

    def arrival_rate(self, t: float) -> float:
        """Decayed arrival-rate estimate λ̂ (jobs per sim-time unit)."""
        count, _ = self._decay_to(t)
        return self._alpha * count

    def load_estimate(self, t: float) -> float:
        """Estimated offered utilization ρ̂ = α · Σ_decayed(work) / m.

        Equals λ̂ · Ê[W] / m in steady state; rises when a burst starts
        and decays toward zero during idle stretches instead of freezing
        at its last value.
        """
        _, work_sum = self._decay_to(t)
        return self._alpha * work_sum / self.m

    # -- decisions ---------------------------------------------------------

    def queue_full(self, active: int) -> bool:
        """Hard queue cap: no room for another concurrently active job."""
        cfg = self.config
        return cfg.max_active is not None and active >= cfg.max_active

    def backlog_exceeded(self, work: float, backlog_work: float) -> bool:
        """Would admitting ``work`` push drain time past ``max_backlog``?"""
        cfg = self.config
        return (
            cfg.max_backlog is not None
            and (backlog_work + work) / self.m > cfg.max_backlog
        )

    def overloaded(self, t: float) -> bool:
        """Is the decayed offered-load estimate above ``max_load``?"""
        cfg = self.config
        return cfg.max_load is not None and self.load_estimate(t) > cfg.max_load

    def decide(
        self, t: float, work: float, active: int, backlog_work: float
    ) -> AdmissionDecision:
        """Accept or shed one offered job given current engine occupancy."""
        if self.queue_full(active):
            return AdmissionDecision.SHED_QUEUE_FULL
        if self.backlog_exceeded(work, backlog_work):
            return AdmissionDecision.SHED_BACKLOG
        if self.overloaded(t):
            return AdmissionDecision.SHED_OVERLOAD
        return AdmissionDecision.ACCEPT

    def backpressure(self, t: float, active: int) -> float:
        """Soft load signal in [0, 1]: 0 = idle, 1 = at a shed boundary.

        The max of queue-occupancy and load-estimate pressure, so either
        approaching cap pushes the signal up; without any caps it falls
        back to the load estimate clamped at 1.
        """
        signals = []
        if self.config.max_active is not None:
            signals.append(active / self.config.max_active)
        if self.config.max_load is not None:
            signals.append(self.load_estimate(t) / self.config.max_load)
        if not signals:
            signals.append(self.load_estimate(t))
        return max(0.0, min(1.0, max(signals)))

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "config": {
                "max_active": self.config.max_active,
                "max_backlog": self.config.max_backlog,
                "max_load": self.config.max_load,
                "halflife": self.config.halflife,
            },
            "m": self.m,
            "last_t": self._last_t,
            "count": self._count,
            "work_sum": self._work_sum,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "AdmissionController":
        ctrl = cls(AdmissionConfig(**state["config"]), state["m"])
        ctrl._last_t = state["last_t"]
        ctrl._count = state["count"]
        ctrl._work_sum = state["work_sum"]
        return ctrl
