"""Write-ahead request journal + periodic snapshots for the server.

Crash safety for :class:`~repro.serve.server.SchedulerServer` rests on
two files inside one journal directory:

* ``journal.jsonl`` — every state-mutating request (``submit``,
  ``advance``, ``drain``), one JSON object per line, appended *after*
  validation but *before* the engine applies it (write-ahead);
* ``snapshot.json`` — the most recent full scheduler checkpoint
  (:func:`~repro.serve.snapshot.snapshot_scheduler`), tagged with the
  journal sequence number it covers.

Recovery (:func:`recover`) restores the snapshot if present, then
replays every journal entry with a later sequence number through
:func:`apply_entry` — which mirrors the server's own dispatch exactly
(advance the trace clock to the submission's resolved release, then
submit).  Because the engine, policy RNG and admission estimator are all
deterministic given the request sequence, a recovered scheduler is
*bit-for-bit* identical to one that was never killed; the crash-recovery
tests assert exactly that on per-job flow times.

Entries journal the **resolved** request — releases are concrete floats,
never "now" — so replay does not depend on any clock.  A torn final line
(the append that was racing the crash) is tolerated and dropped; any
earlier corruption raises :class:`JournalError` because silently
skipping interior entries would desynchronize the replayed trajectory.

Snapshots are cut automatically every ``snapshot_every`` appended
entries: the checkpoint is written atomically (tmp file + rename) and
the journal is then truncated, bounding both recovery time and disk use.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import FlowSimError
from repro.serve.online import OnlineScheduler

__all__ = [
    "JournalError",
    "RequestJournal",
    "apply_entry",
    "read_journal",
    "recover",
]

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

_MUTATING_OPS = ("submit", "advance", "drain")


class JournalError(RuntimeError):
    """Raised when the journal directory cannot be read back consistently."""


class RequestJournal:
    """Append-only write-ahead log with automatic snapshot rotation.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Holds ``journal.jsonl``
        and ``snapshot.json``.
    snapshot_every:
        Cut a snapshot (and truncate the journal) after this many
        appended entries; ``0`` disables automatic snapshots.
    fsync:
        When true, ``fsync`` after every append — survives power loss,
        not just process death, at a large throughput cost.  The default
        ``flush`` survives any crash of the serving process itself.
    """

    def __init__(
        self,
        directory: str | Path,
        snapshot_every: int = 0,
        fsync: bool = False,
    ) -> None:
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = int(snapshot_every)
        self.fsync = bool(fsync)
        self.journal_path = self.directory / JOURNAL_NAME
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self._seq = _last_seq(self.directory)
        self._since_snapshot = _count_entries(self.journal_path)
        self._fh = open(self.journal_path, "a", encoding="utf-8")

    @property
    def seq(self) -> int:
        """Sequence number of the most recently appended entry."""
        return self._seq

    def append(self, entry: dict) -> int:
        """Durably record one resolved request; returns its sequence number."""
        self._seq += 1
        record = {"seq": self._seq, **entry}
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._since_snapshot += 1
        return self._seq

    def maybe_snapshot(self, scheduler: OnlineScheduler) -> bool:
        """Cut a snapshot if ``snapshot_every`` entries have accumulated."""
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            self.mark_snapshot(scheduler)
            return True
        return False

    def mark_snapshot(self, scheduler: OnlineScheduler) -> Path:
        """Checkpoint ``scheduler`` now and truncate the journal.

        The snapshot lands atomically (tmp + rename) *before* the journal
        shrinks, so a crash between the two steps merely replays entries
        the snapshot already covers — replay is idempotent because
        recovery skips entries with ``seq <= snapshot.seq``.
        """
        from repro.serve.snapshot import snapshot_scheduler

        state = {"seq": self._seq, "state": snapshot_scheduler(scheduler)}
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(state))
        if self.fsync:
            with open(tmp, "rb") as fh:
                os.fsync(fh.fileno())
        tmp.replace(self.snapshot_path)
        self._fh.truncate(0)
        self._fh.seek(0)
        self._since_snapshot = 0
        return self.snapshot_path

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- replay ----------------------------------------------------------------


def apply_entry(scheduler: OnlineScheduler, entry: dict) -> None:
    """Replay one journaled request, mirroring the server's dispatch.

    ``submit`` advances the clock to the entry's resolved release first —
    exactly what the server's trace-clock submit does — then re-runs
    admission + engine submission.  Deterministic failures (e.g. an entry
    that also failed live) re-raise; the caller decides whether to skip.
    """
    op = entry.get("op")
    if op == "submit":
        release = float(entry["release"])
        scheduler.advance_to(release)
        scheduler.submit(
            work=float(entry["work"]),
            span=entry.get("span"),
            mode=entry.get("mode", "sequential"),
            weight=float(entry.get("weight", 1.0)),
            release=release,
            tenant=entry.get("tenant"),
        )
    elif op == "advance":
        scheduler.advance_to(float(entry["to"]))
    elif op == "drain":
        scheduler.drain()
    else:
        raise JournalError(f"unknown journaled op {op!r}")


def read_journal(directory: str | Path) -> list[dict]:
    """Parse ``journal.jsonl``, tolerating only a torn *final* line."""
    path = Path(directory) / JOURNAL_NAME
    if not path.exists():
        return []
    entries: list[dict] = []
    raw_lines = path.read_bytes().split(b"\n")
    # a trailing "" after the final newline is normal, not a torn line
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()
    for i, raw in enumerate(raw_lines):
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or "seq" not in entry:
                raise ValueError("journal entry must be an object with a seq")
        except (ValueError, UnicodeDecodeError) as exc:
            if i == len(raw_lines) - 1:
                break  # torn tail: the append that was racing the crash
            raise JournalError(
                f"corrupt journal entry at line {i + 1}: {exc}"
            ) from exc
        entries.append(entry)
    return entries


def recover(
    directory: str | Path,
    build_empty=None,
) -> tuple[OnlineScheduler | None, int, int]:
    """Rebuild a scheduler from snapshot + journal replay.

    Returns ``(scheduler, last_seq, n_replayed)``.  ``scheduler`` is
    ``None`` when the directory holds neither a snapshot nor journal
    entries *and* no ``build_empty`` factory was given; with a factory,
    journal-only recovery replays onto a fresh scheduler.
    """
    from repro.serve.snapshot import restore_scheduler

    directory = Path(directory)
    snap_path = directory / SNAPSHOT_NAME
    scheduler: OnlineScheduler | None = None
    base_seq = 0
    if snap_path.exists():
        try:
            snap = json.loads(snap_path.read_text())
        except ValueError as exc:
            raise JournalError(f"corrupt snapshot {snap_path}: {exc}") from exc
        scheduler = restore_scheduler(snap["state"])
        base_seq = int(snap["seq"])
    entries = [e for e in read_journal(directory) if e["seq"] > base_seq]
    if scheduler is None:
        if not entries and build_empty is None:
            return None, base_seq, 0
        if build_empty is None:
            raise JournalError(
                f"{directory} has journal entries but no snapshot and no "
                "way to build an empty scheduler to replay onto"
            )
        scheduler = build_empty()
    replayed = 0
    last_seq = base_seq
    for entry in entries:
        if entry["seq"] <= last_seq:
            continue  # duplicate append from a crash mid-rotation
        try:
            apply_entry(scheduler, entry)
        except (ValueError, KeyError, FlowSimError) as exc:
            # the live request failed the same deterministic way; the
            # journal records the attempt, not a guarantee of success
            _ = exc
        last_seq = entry["seq"]
        replayed += 1
    return scheduler, last_seq, replayed


def drain_result_equal(a: ScheduleResult, b: ScheduleResult) -> bool:
    """Bit-for-bit comparison used by the crash-recovery checks."""
    import numpy as np

    return (
        a.flow_times.shape == b.flow_times.shape
        and bool(np.all(a.flow_times == b.flow_times))
        and a.makespan == b.makespan
    )


def _last_seq(directory: Path) -> int:
    snap_path = directory / SNAPSHOT_NAME
    seq = 0
    if snap_path.exists():
        try:
            seq = int(json.loads(snap_path.read_text())["seq"])
        except (ValueError, KeyError):
            seq = 0
    for entry in read_journal(directory):
        seq = max(seq, int(entry["seq"]))
    return seq


def _count_entries(path: Path) -> int:
    if not path.exists():
        return 0
    return sum(1 for line in path.read_bytes().split(b"\n") if line.strip())
