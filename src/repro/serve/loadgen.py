"""Open-loop load generation: replay workload traces into a live scheduler.

Two replay paths share the same semantics:

* :func:`replay_into` drives an in-process
  :class:`~repro.serve.online.OnlineScheduler` directly (tests, examples,
  and the cross-check against batch simulation);
* :func:`replay_over_wire` speaks the JSON-lines protocol to a running
  :class:`~repro.serve.server.SchedulerServer` and can *verify* the
  drained result against an offline :func:`repro.flowsim.simulate` of the
  same effective trace — the end-to-end proof that the serving stack adds
  no scheduling error.

``rate`` is the arrival-rate multiplier: release times are divided by
it, so ``rate=2`` doubles the offered load of the original trace while
keeping job sizes fixed (open-loop — arrivals never wait for the
system, which is how overload actually happens).  ``pace`` optionally
maps sim time onto wall time (sim-units per wall second) so a wall-clock
server sees realistic inter-arrival gaps; the default streams as fast
as the connection allows.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.job import JobSpec
from repro.workloads.traces import Trace

__all__ = [
    "LoadGenReport",
    "effective_trace",
    "replay_into",
    "replay_over_wire",
]


def effective_trace(trace: Trace, rate: float = 1.0) -> Trace:
    """The trace a replay at ``rate`` actually offers (releases ÷ rate)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if rate == 1.0:
        return trace
    jobs = [
        JobSpec(
            job_id=j.job_id,
            release=j.release / rate,
            work=j.work,
            span=j.span,
            mode=j.mode,
            dag=j.dag,
            weight=j.weight,
        )
        for j in trace.jobs
    ]
    return Trace(
        jobs=jobs,
        m=trace.m,
        load=min(1.0, trace.load * rate) if trace.load else trace.load,
        distribution=trace.distribution,
        name=f"{trace.name}@x{rate:g}",
        meta={**trace.meta, "rate_multiplier": rate},
    )


def _accepted_trace(trace: Trace, accepted: list[int]) -> Trace:
    """Re-index the accepted subset densely — what the engine actually ran."""
    jobs = [
        JobSpec(
            job_id=k,
            release=trace.jobs[i].release,
            work=trace.jobs[i].work,
            span=trace.jobs[i].span,
            mode=trace.jobs[i].mode,
            weight=trace.jobs[i].weight,
        )
        for k, i in enumerate(accepted)
    ]
    return Trace(
        jobs=jobs,
        m=trace.m,
        load=trace.load,
        distribution=trace.distribution,
        name=trace.name + "+admitted",
        meta=trace.meta,
    )


@dataclass
class LoadGenReport:
    """What one replay did and what the server said about it."""

    offered: int
    accepted: int
    shed: int
    wall_seconds: float
    stats: dict = field(default_factory=dict)
    drain_summary: dict | None = None
    #: None = verification not attempted; True/False = outcome
    verified: bool | None = None
    max_abs_diff: float | None = None

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def summary(self) -> dict:
        out = {
            "offered": self.offered,
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "wall_seconds": self.wall_seconds,
        }
        if self.drain_summary is not None:
            out["mean_flow"] = self.drain_summary.get("mean_flow")
            out["makespan"] = self.drain_summary.get("makespan")
        if self.verified is not None:
            out["verified"] = self.verified
            out["max_abs_diff"] = self.max_abs_diff
        return out


def replay_into(scheduler, trace: Trace, rate: float = 1.0, drain: bool = True):
    """Stream ``trace`` into an in-process scheduler, job by job.

    Each job advances the clock to its (rate-scaled) release and is
    submitted through admission control when the scheduler has it,
    otherwise registered verbatim — the verbatim path reproduces the
    batch simulation exactly.  Returns ``(report, result)`` where
    ``result`` is the drained :class:`~repro.core.metrics.ScheduleResult`
    (``None`` when ``drain=False``).
    """
    eff = effective_trace(trace, rate)
    t0 = time.perf_counter()
    shed = 0
    for spec in eff.jobs:
        scheduler.advance_to(spec.release)
        if scheduler.admission is not None:
            outcome = scheduler.submit(
                work=spec.work,
                span=spec.span,
                mode=spec.mode,
                weight=spec.weight,
                release=spec.release,
            )
            if not outcome.accepted:
                shed += 1
        else:
            # verbatim ids require re-stamping after any earlier sheds
            scheduler.submit_spec(
                spec
                if spec.job_id == scheduler.n_submitted
                else JobSpec(
                    job_id=scheduler.n_submitted,
                    release=spec.release,
                    work=spec.work,
                    span=spec.span,
                    mode=spec.mode,
                    weight=spec.weight,
                )
            )
    result = scheduler.drain() if drain else None
    report = LoadGenReport(
        offered=len(eff),
        accepted=len(eff) - shed,
        shed=shed,
        wall_seconds=time.perf_counter() - t0,
        stats=scheduler.stats(),
        drain_summary=(
            {"mean_flow": result.mean_flow, "makespan": result.makespan}
            if result is not None
            else None
        ),
    )
    return report, result


async def replay_over_wire(
    host: str,
    port: int,
    trace: Trace,
    rate: float = 1.0,
    pace: float | None = None,
    drain: bool = True,
    verify: bool = False,
) -> LoadGenReport:
    """Stream ``trace`` to a running server over the JSON-lines protocol.

    With ``verify=True`` (requires ``drain``) the drained per-job flow
    times are compared against a local batch :func:`repro.flowsim.simulate`
    of the jobs the server accepted, using the server's own policy, seed
    and machine size from ``hello`` — the report's ``verified`` /
    ``max_abs_diff`` fields carry the outcome.  Verification requires the
    server to run the virtual ``trace`` clock (exact release stamps).
    """
    eff = effective_trace(trace, rate)
    reader, writer = await asyncio.open_connection(host, port)

    async def call(request: dict) -> dict:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    try:
        hello = await call({"op": "hello"})
        if not hello.get("ok"):
            raise RuntimeError(f"hello failed: {hello}")
        # a wall-clock server releases jobs "now"; sending the trace's
        # release stamps would land in its past and be rejected
        stamp_releases = hello.get("clock") == "trace"
        t0 = time.perf_counter()
        accepted: list[int] = []
        shed = 0
        prev_release = eff.jobs[0].release if eff.jobs else 0.0
        for spec in eff.jobs:
            if pace is not None and spec.release > prev_release:
                await asyncio.sleep((spec.release - prev_release) / pace)
            prev_release = spec.release
            request = {
                "op": "submit",
                "work": spec.work,
                "span": spec.span,
                "mode": spec.mode.value,
                "weight": spec.weight,
            }
            if stamp_releases:
                request["release"] = spec.release
            resp = await call(request)
            if not resp.get("ok"):
                raise RuntimeError(f"submit failed: {resp.get('error')}")
            if resp["accepted"]:
                accepted.append(spec.job_id)
            else:
                shed += 1
        stats = (await call({"op": "stats"})).get("stats", {})
        report = LoadGenReport(
            offered=len(eff),
            accepted=len(accepted),
            shed=shed,
            wall_seconds=time.perf_counter() - t0,
            stats=stats,
        )
        if drain:
            resp = await call({"op": "drain", "include_flows": bool(verify)})
            if not resp.get("ok"):
                raise RuntimeError(f"drain failed: {resp.get('error')}")
            report.drain_summary = resp["result"]
            if verify:
                _verify_against_offline(report, hello, eff, accepted, resp)
        return report
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _verify_against_offline(
    report: LoadGenReport,
    hello: dict,
    eff: Trace,
    accepted: list[int],
    drain_resp: dict,
) -> None:
    from repro.flowsim.engine import FlowSimConfig, simulate
    from repro.flowsim.policies import policy_by_name

    if hello.get("clock") != "trace":
        report.verified = None  # wall clock ⇒ releases are not replayable
        return
    offline = simulate(
        _accepted_trace(eff, accepted),
        m=int(hello["m"]),
        policy=policy_by_name(hello["policy_key"]),
        seed=int(hello["seed"]),
        config=FlowSimConfig(speed=float(hello.get("speed", 1.0))),
    )
    online_flows = np.asarray(drain_resp["flow_times"], dtype=float)
    if online_flows.shape != offline.flow_times.shape:
        report.verified = False
        report.max_abs_diff = float("inf")
        return
    diff = (
        float(np.max(np.abs(online_flows - offline.flow_times)))
        if online_flows.size
        else 0.0
    )
    report.max_abs_diff = diff
    scale = max(1.0, float(np.max(np.abs(offline.flow_times), initial=0.0)))
    report.verified = bool(diff <= 1e-9 * scale)
