"""Open-loop load generation: replay workload traces into a live scheduler.

Two replay paths share the same semantics:

* :func:`replay_into` drives an in-process
  :class:`~repro.serve.online.OnlineScheduler` directly (tests, examples,
  and the cross-check against batch simulation);
* :func:`replay_over_wire` speaks the JSON-lines protocol to a running
  :class:`~repro.serve.server.SchedulerServer` and can *verify* the
  drained result against an offline :func:`repro.flowsim.simulate` of the
  same effective trace — the end-to-end proof that the serving stack adds
  no scheduling error.

``rate`` is the arrival-rate multiplier: release times are divided by
it, so ``rate=2`` doubles the offered load of the original trace while
keeping job sizes fixed (open-loop — arrivals never wait for the
system, which is how overload actually happens).  ``pace`` optionally
maps sim time onto wall time (sim-units per wall second) so a wall-clock
server sees realistic inter-arrival gaps; the default streams as fast
as the connection allows.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import numpy as np

from repro.core.job import JobSpec
from repro.workloads.traces import Trace

__all__ = [
    "LoadGenReport",
    "effective_trace",
    "iter_effective",
    "replay_into",
    "replay_over_wire",
    "retry_delay",
    "tenant_labels",
]


def retry_delay(
    attempt: int, backoff: float, backoff_cap: float, rng: np.random.Generator
) -> float:
    """Bounded exponential backoff with seeded jitter, in seconds.

    ``attempt`` is 1-based; the base delay doubles per attempt up to
    ``backoff_cap`` and the jitter draw scales it into [0.5×, 1.0×] so
    retriers sharing a fate (one dead server, one dead shard) do not
    stampede in lockstep.  Shared by the wire client's request retries
    and the shard supervisor's process restarts.
    """
    delay = min(backoff_cap, backoff * 2 ** (attempt - 1))
    return delay * (0.5 + 0.5 * float(rng.random()))


def tenant_labels(
    n: int, tenants: int, skew: str = "zipf:1.0", seed: int = 0
) -> list[str]:
    """Seeded tenant assignment for ``n`` jobs over ``tenants`` ids.

    ``skew`` is ``"zipf:a"``: tenant rank k (1-based) is drawn with
    probability ∝ 1/k^a, so ``a=0`` is uniform and larger ``a``
    concentrates load on ``t0`` — the many-tenant hot-spot shape the DRF
    admission layer exists for.  Draws come from a dedicated child
    stream (``loadgen/tenants``), so enabling tenancy never perturbs the
    trace generator's randomness.
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    kind, _, param = skew.partition(":")
    if kind != "zipf":
        raise ValueError(f"unknown tenant skew {skew!r} (expected 'zipf:a')")
    a = float(param) if param else 1.0
    if a < 0:
        raise ValueError("zipf exponent must be >= 0")
    from repro.core.rng import RngFactory

    weights = np.array([1.0 / (k + 1) ** a for k in range(tenants)])
    probs = weights / weights.sum()
    rng = RngFactory(seed).stream("loadgen/tenants")
    draws = rng.choice(tenants, size=n, p=probs)
    return [f"t{int(k)}" for k in draws]


def effective_trace(trace: Trace, rate: float = 1.0) -> Trace:
    """The trace a replay at ``rate`` actually offers (releases ÷ rate)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if rate == 1.0:
        return trace
    jobs = [
        JobSpec(
            job_id=j.job_id,
            release=j.release / rate,
            work=j.work,
            span=j.span,
            mode=j.mode,
            dag=j.dag,
            weight=j.weight,
        )
        for j in trace.jobs
    ]
    return Trace(
        jobs=jobs,
        m=trace.m,
        load=min(1.0, trace.load * rate) if trace.load else trace.load,
        distribution=trace.distribution,
        name=f"{trace.name}@x{rate:g}",
        meta={**trace.meta, "rate_multiplier": rate},
    )


def iter_effective(trace_or_jobs, rate: float = 1.0) -> Iterator[JobSpec]:
    """Lazily yield rate-scaled jobs from a trace or a job stream.

    The streaming twin of :func:`effective_trace`: accepts a
    :class:`Trace`, a :class:`~repro.workloads.stream.JobStream` or any
    iterable of specs, and never materializes anything — the path an SWF
    archive replay takes (``drep-sim loadgen --trace-file x.swf``).
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    jobs: Iterable[JobSpec] = getattr(trace_or_jobs, "jobs", trace_or_jobs)
    for spec in jobs:
        yield spec if rate == 1.0 else replace(spec, release=spec.release / rate)


def _accepted_trace(specs: list[JobSpec], name: str = "accepted") -> Trace:
    """Re-index the accepted subset densely — what the engine actually ran."""
    jobs = [
        JobSpec(
            job_id=k,
            release=s.release,
            work=s.work,
            span=s.span,
            mode=s.mode,
            weight=s.weight,
        )
        for k, s in enumerate(specs)
    ]
    return Trace(jobs=jobs, name=name + "+admitted")


@dataclass
class LoadGenReport:
    """What one replay did and what the server said about it.

    The fault-facing counters make failures visible instead of silently
    swallowed: ``errors`` counts requests that ultimately failed (error
    responses or connection failures after the retry budget), ``timeouts``
    counts per-request deadline expiries, ``overloaded`` counts explicit
    server shed responses, ``retries`` counts re-sent requests and
    ``reconnects`` counts socket re-establishments.
    """

    offered: int
    accepted: int
    shed: int
    wall_seconds: float
    stats: dict = field(default_factory=dict)
    drain_summary: dict | None = None
    #: None = verification not attempted; True/False = outcome
    verified: bool | None = None
    max_abs_diff: float | None = None
    errors: int = 0
    timeouts: int = 0
    overloaded: int = 0
    retries: int = 0
    reconnects: int = 0
    #: per-tenant offered/accepted/shed/errors counts (tenant runs only)
    tenant_counts: dict = field(default_factory=dict)

    def _tenant_row(self, tenant: str) -> dict:
        return self.tenant_counts.setdefault(
            tenant,
            {"offered": 0, "accepted": 0, "shed": 0, "errors": 0, "retries": 0},
        )

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def summary(self) -> dict:
        out = {
            "offered": self.offered,
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "wall_seconds": self.wall_seconds,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "overloaded": self.overloaded,
            "retries": self.retries,
            "reconnects": self.reconnects,
        }
        if self.drain_summary is not None:
            out["mean_flow"] = self.drain_summary.get("mean_flow")
            out["makespan"] = self.drain_summary.get("makespan")
        if self.verified is not None:
            out["verified"] = self.verified
            out["max_abs_diff"] = self.max_abs_diff
        if self.tenant_counts:
            out["tenants"] = {
                name: dict(row)
                for name, row in sorted(self.tenant_counts.items())
            }
        return out


def replay_into(
    scheduler,
    trace: Trace,
    rate: float = 1.0,
    drain: bool = True,
    tenants: list[str] | None = None,
):
    """Stream ``trace`` into an in-process scheduler, job by job.

    Each job advances the clock to its (rate-scaled) release and is
    submitted through admission control when the scheduler has it,
    otherwise registered verbatim — the verbatim path reproduces the
    batch simulation exactly.  ``tenants`` optionally labels job i with
    ``tenants[i]`` (see :func:`tenant_labels`); labelled runs always go
    through :meth:`~repro.serve.online.OnlineScheduler.submit` so the
    labels thread into admission and metrics.  Returns
    ``(report, result)`` where ``result`` is the drained
    :class:`~repro.core.metrics.ScheduleResult` (``None`` when
    ``drain=False``).

    ``trace`` may also be a lazy job stream (e.g.
    :func:`repro.workloads.swf.swf_stream`); jobs are then pulled one at
    a time and never materialized.  Tenant labelling needs an in-memory
    trace (the label list is indexed by job id).
    """
    is_trace = isinstance(trace, Trace)
    if tenants is not None:
        if not is_trace:
            raise ValueError(
                "tenant labelling needs an in-memory Trace, not a stream"
            )
        if len(tenants) != len(trace.jobs):
            raise ValueError("tenants must label every job of the trace")
    report = LoadGenReport(offered=0, accepted=0, shed=0, wall_seconds=0.0)
    t0 = time.perf_counter()
    offered = 0
    shed = 0
    for i, spec in enumerate(iter_effective(trace, rate)):
        offered += 1
        scheduler.advance_to(spec.release)
        if scheduler.admission is not None or tenants is not None:
            tenant = tenants[i] if tenants is not None else None
            outcome = scheduler.submit(
                work=spec.work,
                span=spec.span,
                mode=spec.mode,
                weight=spec.weight,
                release=spec.release,
                tenant=tenant,
            )
            if tenant is not None:
                row = report._tenant_row(tenant)
                row["offered"] += 1
                row["accepted" if outcome.accepted else "shed"] += 1
            if not outcome.accepted:
                shed += 1
        else:
            # verbatim ids require re-stamping after any earlier sheds
            scheduler.submit_spec(
                spec
                if spec.job_id == scheduler.n_submitted
                else JobSpec(
                    job_id=scheduler.n_submitted,
                    release=spec.release,
                    work=spec.work,
                    span=spec.span,
                    mode=spec.mode,
                    weight=spec.weight,
                )
            )
    result = scheduler.drain() if drain else None
    report.offered = offered
    report.accepted = offered - shed
    report.shed = shed
    report.wall_seconds = time.perf_counter() - t0
    report.stats = scheduler.stats()
    report.drain_summary = (
        {"mean_flow": result.mean_flow, "makespan": result.makespan}
        if result is not None
        else None
    )
    return report, result


class _WireClient:
    """Reconnecting JSON-lines client with a per-request retry budget.

    Retries cover the failures a fault-injected server actually throws at
    a client: connection resets, per-request timeouts (after which the
    stream is desynced, so the socket is dropped and re-opened) and
    explicit ``overloaded`` shed responses.  Backoff is exponential with
    multiplicative jitter from a seeded generator, so loadgen runs stay
    reproducible.  Every failure is *counted* on the report — nothing is
    swallowed.
    """

    def __init__(
        self,
        host: str,
        port: int,
        report: LoadGenReport,
        timeout: float | None = None,
        max_retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.report = report
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.rng = np.random.default_rng(retry_seed)
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self._ever_connected = False

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        if self._ever_connected:
            self.report.reconnects += 1
        self._ever_connected = True

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self.writer = None
            self.reader = None

    async def _drop(self) -> None:
        """Tear the socket down; the next attempt reconnects fresh."""
        if self.writer is not None:
            self.writer.close()
            self.writer = None
            self.reader = None

    async def _roundtrip(self, request: dict) -> dict:
        assert self.reader is not None and self.writer is not None
        self.writer.write(json.dumps(request).encode() + b"\n")
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def call(self, request: dict) -> dict | None:
        """One request, retried within budget; ``None`` = gave up."""
        attempt = 0
        while True:
            failure: str | None = None
            if self.writer is None:
                try:
                    await self.connect()
                except OSError as exc:
                    failure = f"connect: {exc}"
            if failure is None:
                try:
                    coro = self._roundtrip(request)
                    if self.timeout is not None:
                        resp = await asyncio.wait_for(coro, self.timeout)
                    else:
                        resp = await coro
                except asyncio.TimeoutError:
                    self.report.timeouts += 1
                    failure = "timeout"
                    # a late response would desync request/response
                    # framing, so the socket cannot be reused
                    await self._drop()
                except (ConnectionError, OSError, ValueError) as exc:
                    failure = f"{type(exc).__name__}: {exc}"
                    await self._drop()
                else:
                    if resp.get("overloaded"):
                        self.report.overloaded += 1
                        failure = "overloaded"
                    else:
                        return resp
            if attempt >= self.max_retries:
                self.report.errors += 1
                return None
            attempt += 1
            self.report.retries += 1
            await asyncio.sleep(
                retry_delay(attempt, self.backoff, self.backoff_cap, self.rng)
            )
        return None  # pragma: no cover - unreachable


async def replay_over_wire(
    host: str,
    port: int,
    trace: Trace,
    rate: float = 1.0,
    pace: float | None = None,
    drain: bool = True,
    verify: bool = False,
    *,
    tenants: list[str] | None = None,
    timeout: float | None = None,
    max_retries: int = 0,
    backoff: float = 0.05,
    backoff_cap: float = 2.0,
    retry_seed: int = 0,
) -> LoadGenReport:
    """Stream ``trace`` to a running server over the JSON-lines protocol.

    With ``verify=True`` (requires ``drain``) the drained per-job flow
    times are compared against a local batch :func:`repro.flowsim.simulate`
    of the jobs the server accepted, using the server's own policy, seed
    and machine size from ``hello`` — the report's ``verified`` /
    ``max_abs_diff`` fields carry the outcome.  Verification requires the
    server to run the virtual ``trace`` clock (exact release stamps).

    ``timeout`` / ``max_retries`` / ``backoff`` configure per-request
    deadlines and the retry budget (exponential backoff with seeded
    jitter; see :class:`_WireClient`).  A submit that exhausts its budget
    is *counted* on the report (``errors``) and skipped, not raised — a
    crashing server should degrade the report, not the client.  Note that
    retries are at-least-once: a submit whose response was lost may be
    applied twice server-side, so keep ``max_retries=0`` (the default)
    for bit-exact verification runs.

    ``trace`` may also be a lazy job stream (e.g.
    :func:`repro.workloads.swf.swf_stream` for SWF archive replay); jobs
    are pulled and sent one at a time, so client memory stays O(1) —
    except under ``verify``, which must buffer the accepted specs to
    re-simulate them offline.  Tenant labelling needs an in-memory
    trace.
    """
    is_trace = isinstance(trace, Trace)
    if tenants is not None:
        if not is_trace:
            raise ValueError(
                "tenant labelling needs an in-memory Trace, not a stream"
            )
        if len(tenants) != len(trace.jobs):
            raise ValueError("tenants must label every job of the trace")
    report = LoadGenReport(
        offered=0, accepted=0, shed=0, wall_seconds=0.0
    )
    client = _WireClient(
        host,
        port,
        report,
        timeout=timeout,
        max_retries=max_retries,
        backoff=backoff,
        backoff_cap=backoff_cap,
        retry_seed=retry_seed,
    )
    try:
        hello = await client.call({"op": "hello"})
        if hello is None or not hello.get("ok"):
            raise ConnectionError(f"hello failed: {hello}")
        # a wall-clock server releases jobs "now"; sending the trace's
        # release stamps would land in its past and be rejected
        stamp_releases = hello.get("clock") == "trace"
        t0 = time.perf_counter()
        keep_specs = bool(verify and drain)
        accepted = 0
        accepted_specs: list[JobSpec] = []
        offered = 0
        shed = 0
        prev_release: float | None = None
        for i, spec in enumerate(iter_effective(trace, rate)):
            offered += 1
            if (
                pace is not None
                and prev_release is not None
                and spec.release > prev_release
            ):
                await asyncio.sleep((spec.release - prev_release) / pace)
            prev_release = spec.release
            tenant = tenants[i] if tenants is not None else None
            request = {
                "op": "submit",
                "work": spec.work,
                "span": spec.span,
                "mode": spec.mode.value,
                "weight": spec.weight,
            }
            if tenant is not None:
                request["tenant"] = tenant
            if stamp_releases:
                request["release"] = spec.release
            row = report._tenant_row(tenant) if tenant is not None else None
            retries_before = report.retries
            if row is not None:
                row["offered"] += 1
            resp = await client.call(request)
            if row is not None:
                row["retries"] += report.retries - retries_before
            if resp is None:
                if row is not None:
                    row["errors"] += 1
                continue  # counted in report.errors by the client
            if not resp.get("ok"):
                report.errors += 1
                if row is not None:
                    row["errors"] += 1
                continue
            if resp["accepted"]:
                accepted += 1
                if keep_specs:
                    accepted_specs.append(spec)
                if row is not None:
                    row["accepted"] += 1
            else:
                shed += 1
                if row is not None:
                    row["shed"] += 1
        report.offered = offered
        report.accepted = accepted
        report.shed = shed
        stats_resp = await client.call({"op": "stats"})
        report.stats = (stats_resp or {}).get("stats", {})
        report.wall_seconds = time.perf_counter() - t0
        if drain:
            resp = await client.call(
                {"op": "drain", "include_flows": bool(verify)}
            )
            if resp is None or not resp.get("ok"):
                raise RuntimeError(
                    f"drain failed: {resp.get('error') if resp else 'no response'}"
                )
            report.drain_summary = resp["result"]
            if verify:
                name = getattr(trace, "name", "stream")
                _verify_against_offline(
                    report, hello, accepted_specs, name, resp
                )
        return report
    finally:
        await client.close()


def _verify_against_offline(
    report: LoadGenReport,
    hello: dict,
    accepted_specs: list[JobSpec],
    name: str,
    drain_resp: dict,
) -> None:
    from repro.flowsim.engine import FlowSimConfig, simulate
    from repro.flowsim.policies import policy_by_name

    if hello.get("clock") != "trace":
        report.verified = None  # wall clock ⇒ releases are not replayable
        return
    offline = simulate(
        _accepted_trace(accepted_specs, name),
        m=int(hello["m"]),
        policy=policy_by_name(hello["policy_key"]),
        seed=int(hello["seed"]),
        config=FlowSimConfig(speed=float(hello.get("speed", 1.0))),
    )
    online_flows = np.asarray(drain_resp["flow_times"], dtype=float)
    if online_flows.shape != offline.flow_times.shape:
        report.verified = False
        report.max_abs_diff = float("inf")
        return
    diff = (
        float(np.max(np.abs(online_flows - offline.flow_times)))
        if online_flows.size
        else 0.0
    )
    report.max_abs_diff = diff
    scale = max(1.0, float(np.max(np.abs(offline.flow_times), initial=0.0)))
    report.verified = bool(diff <= 1e-9 * scale)
