"""Rolling serving metrics with Prometheus text exposition.

All statistics are over a sliding window of the *simulation* clock
(``window`` sim-time units): the windowed mean/percentile flow times of
recently completed jobs, completion throughput, plus monotone lifetime
counters (submitted / completed / shed).  The window is a deque pruned
lazily on read, so recording is O(1) amortized and reading is
O(window size).

:meth:`RollingMetrics.to_prometheus` renders the standard text
exposition format (``# HELP`` / ``# TYPE`` / sample lines) so the
server's ``metrics`` op can be scraped or eyeballed directly; flow-time
quantiles use the conventional ``summary`` representation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["RollingMetrics"]


class _TenantWindow:
    """Per-tenant counters plus a windowed deque of completions."""

    __slots__ = ("submitted", "completed", "shed", "flows")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        #: (finish_time, flow_time) of completions, oldest first
        self.flows: deque[tuple[float, float]] = deque()

    def state_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "flows": [[t, f] for t, f in self.flows],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "_TenantWindow":
        win = cls()
        win.submitted = int(state["submitted"])
        win.completed = int(state["completed"])
        win.shed = int(state["shed"])
        win.flows = deque((float(t), float(f)) for t, f in state["flows"])
        return win


class RollingMetrics:
    """Windowed flow-time and throughput statistics for one scheduler.

    When events carry a ``tenant`` label, the same statistics are also
    kept per tenant (the label threads from
    :meth:`repro.serve.online.OnlineScheduler.submit` through completion
    pumping), so the windowed block and the Prometheus exposition both
    gain per-tenant breakdowns without a second metrics object.
    """

    def __init__(self, window: float = 1000.0) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = float(window)
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        #: (finish_time, flow_time) of completions, oldest first
        self._flows: deque[tuple[float, float]] = deque()
        self._tenants: dict[str, _TenantWindow] = {}

    def _tenant(self, tenant: str) -> _TenantWindow:
        win = self._tenants.get(tenant)
        if win is None:
            win = self._tenants[tenant] = _TenantWindow()
        return win

    # -- recording ---------------------------------------------------------

    def on_submit(self, t: float, tenant: str | None = None) -> None:
        self.submitted += 1
        if tenant is not None:
            self._tenant(tenant).submitted += 1

    def on_shed(self, t: float, tenant: str | None = None) -> None:
        self.shed += 1
        if tenant is not None:
            self._tenant(tenant).shed += 1

    def on_complete(
        self, t: float, flow: float, tenant: str | None = None
    ) -> None:
        self.completed += 1
        self._flows.append((float(t), float(flow)))
        if tenant is not None:
            win = self._tenant(tenant)
            win.completed += 1
            win.flows.append((float(t), float(flow)))

    def prune(self, now: float) -> None:
        """Drop completions older than ``now - window``."""
        cutoff = now - self.window
        flows = self._flows
        while flows and flows[0][0] < cutoff:
            flows.popleft()
        for win in self._tenants.values():
            while win.flows and win.flows[0][0] < cutoff:
                win.flows.popleft()

    # -- reading -----------------------------------------------------------

    def windowed(self, now: float) -> dict:
        """Windowed statistics at sim-time ``now`` (prunes as a side effect).

        ``throughput`` is completions per sim-time unit over the window —
        the window is clipped to ``now`` so a young server is not
        penalized for time that has not elapsed yet.
        """
        self.prune(now)
        flows = np.array([f for _, f in self._flows], dtype=float)
        span = min(self.window, now) if now > 0 else self.window
        out = {
            "now": now,
            "window": self.window,
            "count": int(flows.size),
            "throughput": float(flows.size) / span if span > 0 else 0.0,
        }
        if flows.size:
            out.update(
                mean_flow=float(flows.mean()),
                p50_flow=float(np.percentile(flows, 50)),
                p95_flow=float(np.percentile(flows, 95)),
                p99_flow=float(np.percentile(flows, 99)),
                max_flow=float(flows.max()),
            )
        else:
            out.update(
                mean_flow=0.0,
                p50_flow=0.0,
                p95_flow=0.0,
                p99_flow=0.0,
                max_flow=0.0,
            )
        if self._tenants:
            out["tenants"] = {
                name: self._tenant_windowed(name) for name in sorted(self._tenants)
            }
        return out

    def _tenant_windowed(self, tenant: str) -> dict:
        win = self._tenants[tenant]
        flows = np.array([f for _, f in win.flows], dtype=float)
        row = {
            "submitted": win.submitted,
            "completed": win.completed,
            "shed": win.shed,
            "count": int(flows.size),
            "mean_flow": float(flows.mean()) if flows.size else 0.0,
            "p99_flow": float(np.percentile(flows, 99)) if flows.size else 0.0,
        }
        return row

    def to_prometheus(self, now: float, active: int = 0, **gauges: float) -> str:
        """Prometheus text exposition of counters, gauges and the window.

        Extra keyword arguments become ``drep_serve_<name>`` gauges (e.g.
        ``backpressure=0.3``); metric names follow Prometheus conventions
        (``_total`` suffix on counters, base units, snake case).
        """
        w = self.windowed(now)
        lines = [
            "# HELP drep_serve_jobs_submitted_total Jobs accepted into the scheduler.",
            "# TYPE drep_serve_jobs_submitted_total counter",
            f"drep_serve_jobs_submitted_total {self.submitted}",
            "# HELP drep_serve_jobs_completed_total Jobs completed.",
            "# TYPE drep_serve_jobs_completed_total counter",
            f"drep_serve_jobs_completed_total {self.completed}",
            "# HELP drep_serve_jobs_shed_total Jobs rejected by admission control.",
            "# TYPE drep_serve_jobs_shed_total counter",
            f"drep_serve_jobs_shed_total {self.shed}",
            "# HELP drep_serve_active_jobs Jobs queued or running right now.",
            "# TYPE drep_serve_active_jobs gauge",
            f"drep_serve_active_jobs {active}",
            "# HELP drep_serve_clock_seconds Simulation clock.",
            "# TYPE drep_serve_clock_seconds gauge",
            f"drep_serve_clock_seconds {_fmt(now)}",
            "# HELP drep_serve_throughput_jobs Completions per sim-time unit over the window.",
            "# TYPE drep_serve_throughput_jobs gauge",
            f"drep_serve_throughput_jobs {_fmt(w['throughput'])}",
            "# HELP drep_serve_flow_time Windowed flow time of completed jobs.",
            "# TYPE drep_serve_flow_time summary",
            f'drep_serve_flow_time{{quantile="0.5"}} {_fmt(w["p50_flow"])}',
            f'drep_serve_flow_time{{quantile="0.95"}} {_fmt(w["p95_flow"])}',
            f'drep_serve_flow_time{{quantile="0.99"}} {_fmt(w["p99_flow"])}',
            f"drep_serve_flow_time_sum {_fmt(w['mean_flow'] * w['count'])}",
            f"drep_serve_flow_time_count {w['count']}",
            "# HELP drep_serve_flow_time_mean Windowed mean flow time.",
            "# TYPE drep_serve_flow_time_mean gauge",
            f"drep_serve_flow_time_mean {_fmt(w['mean_flow'])}",
        ]
        for name, value in gauges.items():
            lines += [
                f"# HELP drep_serve_{name} Scheduler gauge {name}.",
                f"# TYPE drep_serve_{name} gauge",
                f"drep_serve_{name} {_fmt(float(value))}",
            ]
        if self._tenants:
            lines += [
                "# HELP drep_serve_tenant_jobs_total Per-tenant job outcomes.",
                "# TYPE drep_serve_tenant_jobs_total counter",
            ]
            for name in sorted(self._tenants):
                win = self._tenants[name]
                label = _label_escape(name)
                for outcome, count in (
                    ("submitted", win.submitted),
                    ("completed", win.completed),
                    ("shed", win.shed),
                ):
                    lines.append(
                        f'drep_serve_tenant_jobs_total{{tenant="{label}",'
                        f'outcome="{outcome}"}} {count}'
                    )
            lines += [
                "# HELP drep_serve_tenant_flow_time_mean Per-tenant windowed mean flow time.",
                "# TYPE drep_serve_tenant_flow_time_mean gauge",
            ]
            for name in sorted(self._tenants):
                row = self._tenant_windowed(name)
                lines.append(
                    f'drep_serve_tenant_flow_time_mean'
                    f'{{tenant="{_label_escape(name)}"}} '
                    f"{_fmt(row['mean_flow'])}"
                )
        return "\n".join(lines) + "\n"

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "window": self.window,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "flows": [[t, f] for t, f in self._flows],
            "tenants": {
                name: win.state_dict()
                for name, win in sorted(self._tenants.items())
            },
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "RollingMetrics":
        metrics = cls(window=state["window"])
        metrics.submitted = int(state["submitted"])
        metrics.completed = int(state["completed"])
        metrics.shed = int(state["shed"])
        metrics._flows = deque((float(t), float(f)) for t, f in state["flows"])
        # absent in pre-tenancy snapshots — tolerate for forward recovery
        for name, win in state.get("tenants", {}).items():
            metrics._tenants[name] = _TenantWindow.from_state_dict(win)
        return metrics


def _fmt(x: float) -> str:
    """Prometheus-friendly float formatting (repr keeps full precision)."""
    return repr(float(x))


def _label_escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Tenant names are client-supplied, so a quote, backslash or newline
    would otherwise break the exposition line (and with it the scrape).
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
