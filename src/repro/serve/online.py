"""Submit-while-running wrapper around the incremental flow engine.

:class:`OnlineScheduler` is the serving layer's view of one machine: a
clock that only moves forward (:meth:`OnlineScheduler.advance_to`), a
:meth:`~OnlineScheduler.submit` call that offers a job *now* (or at a
stamped future release), and a :meth:`~OnlineScheduler.drain` that runs
the machine empty and returns the exact
:class:`~repro.core.metrics.ScheduleResult` the batch simulator would
have produced for the same job sequence.

Admission control and rolling metrics are optional collaborators: when
an :class:`~repro.serve.admission.AdmissionController` is attached,
``submit`` may *shed* the job instead of queueing it; when a
:class:`~repro.serve.metrics.RollingMetrics` is attached, every
submission, shed and completion is recorded against the simulation
clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.autoscale.controller import AutoscaleController
from repro.autoscale.guard import AutoscaleConfig
from repro.core.job import JobSpec, ParallelismMode
from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import FlowSimConfig, FlowStepper
from repro.flowsim.policies.base import Policy
from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.metrics import RollingMetrics
from repro.serve.tenancy import MultiTenantAdmission

__all__ = ["OnlineScheduler", "SubmitOutcome"]


@dataclass(frozen=True)
class SubmitOutcome:
    """What happened to one offered job.

    ``job_id`` is the engine id of an accepted job, ``None`` when shed;
    ``decision`` explains why; ``backpressure`` ∈ [0, 1] is the load
    signal clients should use to slow down *before* sheds start.
    """

    job_id: int | None
    decision: AdmissionDecision
    backpressure: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.job_id is not None


class OnlineScheduler:
    """A live scheduler: one policy, one machine, jobs arriving over time.

    Parameters mirror :func:`repro.flowsim.simulate` — same ``m``,
    ``policy``, ``seed`` and :class:`~repro.flowsim.FlowSimConfig` give
    the same trajectory — plus the optional serving collaborators.
    """

    def __init__(
        self,
        m: int,
        policy: Policy,
        seed: int = 0,
        config: FlowSimConfig = FlowSimConfig(),
        admission: AdmissionController | None = None,
        metrics: RollingMetrics | None = None,
        autoscale: AutoscaleConfig | None = None,
    ) -> None:
        faults = None
        if autoscale is not None:
            if autoscale.m_max != m:
                raise ValueError(
                    f"autoscale.m_max ({autoscale.m_max}) must equal the "
                    f"machine size m ({m})"
                )
            from repro.faults.plan import FaultPlan

            faults = FaultPlan((), name="elastic").timeline(m)
        self._stepper = FlowStepper(
            m, policy, seed=seed, config=config, faults=faults
        )
        self.admission = admission
        self.metrics = metrics
        self._offered = 0
        self._shed = 0
        self._pumped = 0  # completion-log entries already sent to metrics
        #: tenant label per accepted job id (None = untenanted submission)
        self._tenant_of: list[str | None] = []
        self._controller: AutoscaleController | None = None
        if autoscale is not None:
            self._init_autoscale(autoscale, seed)

    def _init_autoscale(self, autoscale: AutoscaleConfig, seed: int) -> None:
        """Attach the elastic timeline and controller to a fresh engine."""
        # the controller name is fixed so a restored snapshot re-derives
        # the same jitter stream — serve determinism is per (seed, policy)
        self._controller = AutoscaleController(autoscale, seed=seed, name="serve")
        self._m_cur = autoscale.initial_m
        self._controller.bind(0.0, self._m_cur)
        self._next_tick = autoscale.tick
        #: (release, seq, work) of accepted jobs not yet past a tick —
        #: the controller's arrived-work ledger, release-ordered
        self._unreleased: list[tuple[float, int, float]] = []
        self._arr_seq = 0
        for p in range(self._m_cur, self._stepper.m):
            self._stepper.faults.push_action(0.0, {"kind": "crash", "proc": p})
        self._stepper.refresh_event_budget()

    # -- plumbing shared with snapshot/restore -----------------------------

    @property
    def stepper(self) -> FlowStepper:
        return self._stepper

    @classmethod
    def _from_stepper(
        cls,
        stepper: FlowStepper,
        admission: AdmissionController | None = None,
        metrics: RollingMetrics | None = None,
        offered: int | None = None,
        shed: int = 0,
        tenant_of: list[str | None] | None = None,
        autoscale_state: dict | None = None,
    ) -> "OnlineScheduler":
        sched = cls.__new__(cls)
        sched._stepper = stepper
        sched.admission = admission
        sched.metrics = metrics
        sched._offered = stepper.n_jobs + shed if offered is None else offered
        sched._shed = shed
        sched._pumped = len(stepper.completion_log)
        sched._tenant_of = (
            list(tenant_of)
            if tenant_of is not None
            else [None] * stepper.n_jobs
        )
        sched._controller = None
        if autoscale_state is not None:
            sched._controller = AutoscaleController.from_state_dict(
                autoscale_state["controller"]
            )
            sched._m_cur = int(autoscale_state["m_cur"])
            sched._next_tick = float(autoscale_state["next_tick"])
            sched._unreleased = [
                (float(r), int(s), float(w))
                for r, s, w in autoscale_state["unreleased"]
            ]
            sched._arr_seq = int(autoscale_state["arr_seq"])
        return sched

    # -- clock & introspection ---------------------------------------------

    @property
    def now(self) -> float:
        return self._stepper.now

    @property
    def m(self) -> int:
        return self._stepper.m

    @property
    def policy(self) -> Policy:
        return self._stepper.policy

    @property
    def n_submitted(self) -> int:
        """Jobs accepted into the engine (excludes sheds)."""
        return self._stepper.n_jobs

    @property
    def n_offered(self) -> int:
        """All jobs ever offered, accepted or shed."""
        return self._offered

    @property
    def n_shed(self) -> int:
        return self._shed

    @property
    def n_completed(self) -> int:
        return self._stepper.n_completed

    @property
    def n_active(self) -> int:
        return self._stepper.n_active + self._stepper.n_pending

    @property
    def drained(self) -> bool:
        return self._stepper.drained

    def query(self, job_id: int) -> dict:
        """Status of one accepted job: pending, running or completed."""
        st = self._stepper
        if not 0 <= job_id < st.n_jobs:
            raise KeyError(f"unknown job {job_id}")
        flow = st.flow_time_of(job_id)
        spec = st.specs[job_id]
        if flow is not None:
            return {
                "job_id": job_id,
                "state": "completed",
                "flow_time": flow,
                "finish": spec.release + flow,
            }
        if job_id in st.active_ids():
            return {
                "job_id": job_id,
                "state": "running",
                "remaining": st.remaining_of(job_id),
            }
        return {"job_id": job_id, "state": "pending", "release": spec.release}

    def stats(self) -> dict:
        """Instantaneous counters plus windowed metrics when attached."""
        out = {
            "now": self.now,
            "m": self.m,
            "policy": self.policy.name,
            "offered": self.n_offered,
            "submitted": self.n_submitted,
            "shed": self.n_shed,
            "completed": self.n_completed,
            "active": self._stepper.n_active,
            "pending": self._stepper.n_pending,
            "backlog_work": self._stepper.backlog_work(),
            "events": self._stepper.events,
        }
        if self._controller is not None:
            summary = self._controller.summary()
            out["autoscale"] = {
                "m_current": self._m_cur,
                "m_min": self._controller.config.m_min,
                "m_max": self._controller.config.m_max,
                "ticks": summary["ticks"],
                "scale_ups": summary["scale_ups"],
                "scale_downs": summary["scale_downs"],
                "capacity_seconds": summary["capacity_seconds"],
                "displaced_work": self._stepper.displaced_work,
                "requeues": len(self._stepper.requeue_log),
            }
        if self.admission is not None:
            out["load_estimate"] = self.admission.load_estimate(self.now)
            out["backpressure"] = self.admission.backpressure(
                self.now, self.n_active
            )
        if isinstance(self.admission, MultiTenantAdmission):
            out["tenants"] = self.admission.tenant_stats(self.now)
        if self.metrics is not None:
            out["window"] = self.metrics.windowed(self.now)
        return out

    # -- the online API ----------------------------------------------------

    def submit(
        self,
        work: float,
        span: float | None = None,
        mode: ParallelismMode | str = ParallelismMode.SEQUENTIAL,
        weight: float = 1.0,
        release: float | None = None,
        tenant: str | None = None,
    ) -> SubmitOutcome:
        """Offer one job; returns whether it was queued or shed.

        ``release`` defaults to the current clock (``now``); a future
        release stamps the job as a scheduled arrival (the clock does
        *not* jump to it).  Submitting into the past is an error — the
        trajectory up to ``now`` is already fixed.  ``tenant`` labels the
        job for multi-tenant admission, per-tenant metrics and the
        per-tenant drained report; ``None`` keeps the single-tenant
        behavior exactly.
        """
        if isinstance(mode, str):
            mode = ParallelismMode(mode)
        if release is None:
            release = self.now
        if span is None:
            span = work if mode is ParallelismMode.SEQUENTIAL else work / self.m
        self._offered += 1
        decision = AdmissionDecision.ACCEPT
        backpressure = 0.0
        if self.admission is not None:
            self.admission.observe(release, work)
            if isinstance(self.admission, MultiTenantAdmission):
                decision = self.admission.decide_tenant(
                    t=release,
                    tenant=tenant if tenant is not None else "default",
                    work=work,
                    active=self.n_active,
                    backlog_work=self._stepper.backlog_work(),
                )
            else:
                decision = self.admission.decide(
                    t=release,
                    work=work,
                    active=self.n_active,
                    backlog_work=self._stepper.backlog_work(),
                )
            backpressure = self.admission.backpressure(release, self.n_active)
        if decision is not AdmissionDecision.ACCEPT:
            self._shed += 1
            if self.metrics is not None:
                self.metrics.on_shed(release, tenant=tenant)
            return SubmitOutcome(None, decision, backpressure)
        spec = JobSpec(
            job_id=self._stepper.n_jobs,
            release=release,
            work=work,
            span=span,
            mode=mode,
            weight=weight,
        )
        job_id = self._stepper.add_job(spec)
        self._tenant_of.append(tenant)
        if self._controller is not None:
            heapq.heappush(self._unreleased, (release, self._arr_seq, work))
            self._arr_seq += 1
        if self.metrics is not None:
            self.metrics.on_submit(release, tenant=tenant)
        return SubmitOutcome(job_id, decision, backpressure)

    def submit_spec(self, spec: JobSpec) -> int:
        """Register a pre-built spec verbatim, bypassing admission control.

        The spec's ``job_id`` must equal :attr:`n_submitted` — this is the
        replay path used by the equivalence tests, where the job sequence
        must match an offline trace exactly.
        """
        self._offered += 1
        job_id = self._stepper.add_job(spec)
        self._tenant_of.append(None)
        if self._controller is not None:
            heapq.heappush(
                self._unreleased, (float(spec.release), self._arr_seq, float(spec.work))
            )
            self._arr_seq += 1
        if self.metrics is not None:
            self.metrics.on_submit(spec.release)
        return job_id

    # -- tenancy -----------------------------------------------------------

    def tenant_of(self, job_id: int) -> str | None:
        """Tenant label of an accepted job (``None`` = untenanted)."""
        return self._tenant_of[job_id]

    @property
    def tenant_labels(self) -> list[str | None]:
        """Tenant label per accepted job id (a copy, snapshot-friendly)."""
        return list(self._tenant_of)

    def flows_by_tenant(self) -> dict[str, list[float]]:
        """Completed flow times grouped by tenant, in completion order.

        Untenanted jobs land under ``"default"`` so a mixed trace still
        sums to the global result.
        """
        out: dict[str, list[float]] = {}
        for job_id, _finish in self._stepper.completion_log:
            flow = self._stepper.flow_time_of(job_id)
            assert flow is not None
            label = self._tenant_of[job_id] or "default"
            out.setdefault(label, []).append(float(flow))
        return out

    def advance_to(self, t: float) -> None:
        """Run the machine forward to sim-time ``t``; never rewinds."""
        if self._controller is not None:
            self._advance_elastic(float(t))
        else:
            self._stepper.advance_to(t)
        self._pump_completions()

    def drain(self) -> ScheduleResult:
        """Run until every accepted job completes; return the full result.

        The result is directly comparable to (and, for a faithfully
        replayed trace, identical to) :func:`repro.flowsim.simulate` on
        the same job sequence.  Under autoscale the controller keeps
        ticking through the drain — the machine empties at whatever
        capacity the closed loop decides, not at a frozen m.
        """
        if self._controller is not None:
            while not self._stepper.drained:
                self._advance_elastic(self._next_tick)
        else:
            self._stepper.drain()
        self._pump_completions()
        return self._stepper.result()

    # -- elastic capacity (autoscale attached) -----------------------------

    def _advance_elastic(self, t: float) -> None:
        """Advance to ``t``, firing controller ticks at fixed boundaries.

        Ticks land at exact multiples of the configured tick regardless
        of how callers chunk their ``advance_to`` calls, which is what
        makes the decision trace a pure function of the journaled request
        sequence (and thus bit-for-bit recoverable).
        """
        while self._next_tick <= t:
            boundary = self._next_tick
            self._stepper.advance_to(boundary)
            self._autoscale_tick(boundary)
            self._next_tick = boundary + self._controller.config.tick
        self._stepper.advance_to(t)

    def _autoscale_tick(self, t: float) -> None:
        st = self._stepper
        arrived = 0.0
        while self._unreleased and self._unreleased[0][0] <= t:
            arrived += heapq.heappop(self._unreleased)[2]
        future_work = sum(w for _, _, w in self._unreleased)
        backlog = max(0.0, st.backlog_work() - future_work)
        target = self._controller.observe(
            t,
            arrived_work=arrived,
            backlog_work=backlog,
            n_active=st.n_active,
        )
        if target == self._m_cur:
            return
        cfg = self._controller.config
        if target > self._m_cur:
            for p in range(self._m_cur, target):
                st.faults.push_action(t, {"kind": "recover", "proc": p})
        else:
            for p in range(target, self._m_cur):
                st.faults.push_action(t, {"kind": "crash", "proc": p})
            if cfg.displace:
                n_victims = max(0, min(st.n_active, self._m_cur) - target)
                if n_victims:
                    for j in sorted(st.active_ids())[-n_victims:]:
                        st.faults.push_action(
                            t,
                            {
                                "kind": "displace",
                                "job_id": int(j),
                                "resubmit_after": cfg.requeue_delay,
                            },
                        )
        self._m_cur = target
        st.refresh_event_budget()

    @property
    def m_effective(self) -> int:
        """Current controlled capacity (= ``m`` without autoscale)."""
        if self._controller is None:
            return self._stepper.m
        return self._m_cur

    @property
    def autoscale(self) -> AutoscaleController | None:
        return self._controller

    def autoscale_state_dict(self) -> dict | None:
        """Snapshot payload for the elastic layer (None when disabled)."""
        if self._controller is None:
            return None
        return {
            "controller": self._controller.state_dict(),
            "m_cur": self._m_cur,
            "next_tick": self._next_tick,
            "unreleased": [list(e) for e in self._unreleased],
            "arr_seq": self._arr_seq,
        }

    def result(self, partial: bool = True) -> ScheduleResult:
        """Result so far (completed jobs only unless already drained)."""
        return self._stepper.result(partial=partial and not self.drained)

    def _pump_completions(self) -> None:
        if self.metrics is None and not isinstance(
            self.admission, MultiTenantAdmission
        ):
            return
        log = self._stepper.completion_log
        for job_id, finish in log[self._pumped :]:
            flow = self._stepper.flow_time_of(job_id)
            assert flow is not None
            tenant = self._tenant_of[job_id]
            if self.metrics is not None:
                self.metrics.on_complete(finish, flow, tenant=tenant)
            if isinstance(self.admission, MultiTenantAdmission):
                self.admission.on_complete(
                    tenant if tenant is not None else "default"
                )
        self._pumped = len(log)
