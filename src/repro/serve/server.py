"""Asyncio JSON-lines scheduling server.

One engine, one listening socket.  Each request is a single JSON object
on its own line; each response is a single JSON line with ``"ok"`` plus
op-specific fields (requests may carry an ``"id"`` which is echoed
back).  The protocol is documented operation-by-operation in
``docs/serving.md``; the short version::

    {"op": "hello"}                          -> server identity & config
    {"op": "submit", "work": 3.5, ...}       -> queue (or shed) one job
    {"op": "advance", "to": 120.0}           -> move the sim clock forward
    {"op": "query", "job_id": 7}             -> job status
    {"op": "stats"}                          -> counters + windowed metrics
    {"op": "metrics"}                        -> Prometheus text exposition
    {"op": "drain"}                          -> run empty, full result
    {"op": "snapshot", "path": "..."}        -> checkpoint to disk
    {"op": "shutdown"}                       -> stop the server

Two clock modes:

* ``trace`` (default) — virtual time: the clock advances only when a
  submitted job carries a ``release`` stamp ahead of it, or via an
  explicit ``advance`` op.  This is the replay mode: streaming a trace's
  jobs at their release stamps reproduces the batch simulation
  bit-for-bit, which is what makes live results comparable to offline
  figures.
* ``wall`` — a background ticker maps real time onto the sim clock at
  ``time_scale`` sim-units per second; unstamped submissions are
  released "now".

All engine access is serialized through one asyncio lock — the engine
itself is the single-machine resource being scheduled.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from repro.core.job import ParallelismMode
from repro.flowsim.engine import FlowSimConfig
from repro.flowsim.policies import policy_by_name
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.journal import RequestJournal
from repro.serve.journal import recover as journal_recover
from repro.serve.metrics import RollingMetrics
from repro.serve.online import OnlineScheduler
from repro.serve.snapshot import snapshot_scheduler_file
from repro.serve.tenancy import MultiTenantAdmission, TenancyConfig

__all__ = ["ServeConfig", "SchedulerServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Server wiring: machine, policy, clock, admission and fault knobs."""

    m: int = 8
    policy: str = "drep"
    seed: int = 0
    host: str = "127.0.0.1"
    port: int = 8071
    clock: str = "trace"  # "trace" (virtual) or "wall" (real time)
    time_scale: float = 1.0  # sim-time units per wall second (wall mode)
    tick: float = 0.05  # wall seconds between ticker advances (wall mode)
    window: float = 1000.0
    speed: float = 1.0
    max_active: int | None = None
    max_backlog: float | None = None
    max_load: float | None = None
    halflife: float = 50.0
    snapshot_path: str | None = None  # default target for the snapshot op
    #: write-ahead journal directory; enables crash recovery on restart
    journal_dir: str | None = None
    #: auto-checkpoint (and truncate the journal) every N journaled ops
    snapshot_every: int = 256
    #: fsync every journal append (power-loss durability, slower)
    fsync: bool = False
    #: hard cap on one request line, bytes; longer lines are rejected
    #: with a structured error and the stream is resynced at the next
    #: newline instead of dropping the connection
    max_line_bytes: int = 1 << 20
    #: requests allowed to wait for the engine lock before new ones are
    #: shed with an ``overloaded`` response (None = unbounded)
    max_pending: int | None = None
    #: wall seconds a request may wait for the engine before it is
    #: refused with a ``timed_out`` response (None = wait forever)
    request_timeout: float | None = None
    #: build the tenant-aware admission layer even without credits, so
    #: ``submit`` requests may carry a ``tenant`` label and the DRF
    #: throttling applies whenever the soft caps trip
    multi_tenant: bool = False
    #: per-tenant credit accrual as a fraction of fleet capacity
    #: (None disables the credit check; implies ``multi_tenant``)
    credit_rate: float | None = None
    #: seconds of a tenant's own accrual it may bank while idle
    credit_burst: float = 20.0
    #: seconds of accrual a tenant may borrow (run into debt) before shed
    credit_borrow: float = 0.0
    #: slack multiplier on the DRF entitlement before a tenant is dominant
    drf_headroom: float = 1.2
    #: closed-loop elastic capacity: the engine still allocates ``m``
    #: processors but a seeded controller parks/revives them from the
    #: top between ``[autoscale_m_min, m]`` (see repro.autoscale)
    autoscale: bool = False
    autoscale_m_min: int = 1
    #: sim-time between controller ticks (trace clock: ticks fire at
    #: exact multiples regardless of how advances are chunked)
    autoscale_tick: float = 10.0
    autoscale_up: float = 20.0
    autoscale_down: float = 5.0
    autoscale_cooldown_up: float = 10.0
    autoscale_cooldown_down: float = 30.0
    #: preempt+requeue jobs stranded by a scale-down (vs letting them
    #: finish on the shrunken machine)
    autoscale_displace: bool = True
    autoscale_requeue_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.clock not in ("trace", "wall"):
            raise ValueError("clock must be 'trace' or 'wall'")
        if self.time_scale <= 0 or self.tick <= 0:
            raise ValueError("time_scale and tick must be > 0")
        if self.max_line_bytes < 64:
            raise ValueError("max_line_bytes must be >= 64")
        if self.max_pending is not None and self.max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be > 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")

    @property
    def tenant_aware(self) -> bool:
        return self.multi_tenant or self.credit_rate is not None

    def autoscale_config(self):
        """The :class:`repro.autoscale.AutoscaleConfig` this server runs.

        ``None`` when autoscale is off.  ``m_start = m``: a server comes
        up at full capacity and lets the controller shed idle processors,
        so enabling autoscale never degrades a cold start.
        """
        if not self.autoscale:
            return None
        from repro.autoscale.guard import AutoscaleConfig

        return AutoscaleConfig(
            m_min=self.autoscale_m_min,
            m_max=self.m,
            m_start=self.m,
            tick=self.autoscale_tick,
            up_watermark=self.autoscale_up,
            down_watermark=self.autoscale_down,
            cooldown_up=self.autoscale_cooldown_up,
            cooldown_down=self.autoscale_cooldown_down,
            displace=self.autoscale_displace,
            requeue_delay=self.autoscale_requeue_delay,
        )

    def build_scheduler(self) -> OnlineScheduler:
        admission = None
        admission_config = AdmissionConfig(
            max_active=self.max_active,
            max_backlog=self.max_backlog,
            max_load=self.max_load,
            halflife=self.halflife,
        )
        if self.tenant_aware:
            admission = MultiTenantAdmission(
                admission_config,
                self.m,
                tenancy=TenancyConfig(
                    credit_rate=self.credit_rate,
                    credit_burst=self.credit_burst,
                    credit_borrow=self.credit_borrow,
                    drf_headroom=self.drf_headroom,
                ),
            )
        elif (
            self.max_active is not None
            or self.max_backlog is not None
            or self.max_load is not None
        ):
            admission = AdmissionController(admission_config, self.m)
        return OnlineScheduler(
            m=self.m,
            policy=policy_by_name(self.policy),
            seed=self.seed,
            config=FlowSimConfig(speed=self.speed, max_events=None),
            admission=admission,
            metrics=RollingMetrics(window=self.window),
            autoscale=self.autoscale_config(),
        )


class SchedulerServer:
    """The serving loop around one :class:`OnlineScheduler`.

    ``scheduler`` overrides the one built from ``config`` — that is the
    restore-from-snapshot path (``drep-sim serve --restore``).
    """

    def __init__(
        self, config: ServeConfig, scheduler: OnlineScheduler | None = None
    ) -> None:
        self.config = config
        self._journal: RequestJournal | None = None
        self.recovered_seq = 0
        self.recovered_entries = 0
        if config.journal_dir is not None:
            if scheduler is None:
                scheduler, seq, replayed = journal_recover(
                    config.journal_dir, build_empty=config.build_scheduler
                )
                self.recovered_seq = seq
                self.recovered_entries = replayed
            self._journal = RequestJournal(
                config.journal_dir,
                snapshot_every=config.snapshot_every,
                fsync=config.fsync,
            )
        self.scheduler = (
            scheduler if scheduler is not None else config.build_scheduler()
        )
        self._lock = asyncio.Lock()
        self._pending = 0
        self._shed_requests = 0
        self._timed_out_requests = 0
        self._bad_lines = 0
        self._server: asyncio.base_events.Server | None = None
        self._clients: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._ticker: asyncio.Task | None = None
        self._wall_origin: float | None = None
        self._sim_origin = 0.0
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """Actual bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        if self.config.clock == "wall":
            loop = asyncio.get_running_loop()
            self._wall_origin = loop.time()
            self._sim_origin = self.scheduler.now
            self._ticker = asyncio.create_task(self._tick_forever())

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`stop`) ends the server."""
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # closing the writers EOFs each client's readline, so handlers
        # drain out on their own — cancelling them instead trips
        # StreamReaderProtocol's noisy done-callback on CPython 3.11
        for writer in self._clients.values():
            writer.close()
        await asyncio.gather(*self._clients, return_exceptions=True)
        self._clients.clear()
        if self._journal is not None:
            self._journal.close()
        self._stopped.set()

    def _wall_now(self) -> float:
        assert self._wall_origin is not None
        elapsed = asyncio.get_running_loop().time() - self._wall_origin
        return self._sim_origin + elapsed * self.config.time_scale

    async def _tick_forever(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick)
            async with self._lock:
                self.scheduler.advance_to(self._wall_now())

    # -- request handling --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients[task] = writer
        try:
            while True:
                line, early_error = await self._read_line(reader)
                if line is None and early_error is None:
                    break  # clean EOF
                if early_error is not None:
                    self._bad_lines += 1
                    response = early_error
                else:
                    assert line is not None
                    response = await self._dispatch_line(line)
                payload = _encode_response(response)
                writer.write(payload)
                await writer.drain()
                if isinstance(response, dict) and response.get("bye"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._clients.pop(task, None)
            writer.close()

    async def _read_line(
        self, reader: asyncio.StreamReader
    ) -> tuple[bytes | None, dict | None]:
        """One framed line, or a structured error for an oversized one.

        Returns ``(line, None)`` normally, ``(None, error_response)`` for
        a line longer than ``max_line_bytes`` (after discarding up to the
        next newline so the stream stays framed), and ``(None, None)``
        at EOF.  One bad line never costs the connection.
        """
        try:
            return await reader.readuntil(b"\n"), None
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                return bytes(exc.partial), None  # unterminated final line
            return None, None
        except asyncio.LimitOverrunError:
            discarded = await self._discard_to_newline(reader)
            return None, {
                "ok": False,
                "error": (
                    f"line too long (> {self.config.max_line_bytes} bytes, "
                    f"{discarded} discarded)"
                ),
            }

    @staticmethod
    async def _discard_to_newline(reader: asyncio.StreamReader) -> int:
        """Drop buffered bytes until the next newline (framing resync)."""
        discarded = 0
        while True:
            try:
                discarded += len(await reader.readuntil(b"\n"))
                return discarded
            except asyncio.LimitOverrunError as exc:
                # the first `consumed` buffered bytes hold no newline —
                # safe to drop without eating the next request
                chunk = await reader.readexactly(max(1, exc.consumed))
                discarded += len(chunk)
            except asyncio.IncompleteReadError as exc:
                return discarded + len(exc.partial)

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._bad_lines += 1
            return {"ok": False, "error": f"bad request: {exc}"}
        req_id = request.get("id")
        try:
            response = await self._dispatch(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — one request, one error
            # a single bad request must never take the server (or even
            # the connection) down; everything surfaces as a structured
            # error the client can correlate by id
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if req_id is not None:
            response["id"] = req_id
        return response

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = (
            getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        )
        if op is None or handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        cfg = self.config
        if cfg.max_pending is not None and self._pending >= cfg.max_pending:
            self._shed_requests += 1
            return {
                "ok": False,
                "error": (
                    f"overloaded: {self._pending} requests already waiting "
                    f"(max_pending={cfg.max_pending})"
                ),
                "overloaded": True,
            }
        self._pending += 1
        try:
            try:
                if cfg.request_timeout is not None:
                    await asyncio.wait_for(
                        self._lock.acquire(), cfg.request_timeout
                    )
                else:
                    await self._lock.acquire()
            except asyncio.TimeoutError:
                self._timed_out_requests += 1
                return {
                    "ok": False,
                    "error": (
                        f"timeout: engine busy for "
                        f"{cfg.request_timeout:g}s"
                    ),
                    "timed_out": True,
                }
            try:
                return handler(request)
            finally:
                self._lock.release()
        finally:
            self._pending -= 1

    # -- journal plumbing (called with the lock held) ----------------------

    def _journal_append(self, entry: dict) -> None:
        if self._journal is not None:
            self._journal.append(entry)

    def _journal_rotate(self) -> None:
        if self._journal is not None:
            self._journal.maybe_snapshot(self.scheduler)

    # -- ops (called with the lock held) -----------------------------------

    def _op_hello(self, request: dict) -> dict:
        cfg = self.config
        out = {
            "ok": True,
            "service": "drep-serve",
            "m": self.scheduler.m,
            "policy": self.scheduler.policy.name,
            "policy_key": cfg.policy,
            "seed": self.scheduler.stepper.seed,
            "clock": cfg.clock,
            "speed": cfg.speed,
            "window": cfg.window,
            "now": self.scheduler.now,
            "multi_tenant": isinstance(
                self.scheduler.admission, MultiTenantAdmission
            ),
            "autoscale": self.scheduler.autoscale is not None,
            "m_current": self.scheduler.m_effective,
        }
        if self._journal is not None:
            out["journal_seq"] = self._journal.seq
            out["recovered_entries"] = self.recovered_entries
        return out

    def _op_submit(self, request: dict) -> dict:
        work = request.get("work")
        if (
            not isinstance(work, (int, float))
            or isinstance(work, bool)
            or not work > 0
        ):
            raise ValueError("submit requires work > 0")
        span = request.get("span")
        if span is not None:
            if not isinstance(span, (int, float)) or isinstance(span, bool):
                raise ValueError("span must be numeric")
            span = float(span)
        mode = request.get("mode", "sequential")
        ParallelismMode(mode)  # validate before anything is journaled
        weight = request.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or isinstance(weight, bool):
            raise ValueError("weight must be numeric")
        release = request.get("release")
        if release is not None and (
            not isinstance(release, (int, float)) or isinstance(release, bool)
        ):
            raise ValueError("release must be numeric")
        tenant = request.get("tenant")
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant
        ):
            raise ValueError("tenant must be a non-empty string")
        if self.config.clock == "wall":
            self.scheduler.advance_to(self._wall_now())
            if release is None:
                release = self.scheduler.now
        elif release is not None:
            # trace clock: the submission drives time to its release stamp
            self.scheduler.advance_to(float(release))
        else:
            release = self.scheduler.now
        release = float(release)
        # write-ahead: the *resolved* request hits the journal before the
        # engine, so a crash between the two replays it on recovery
        entry = {
            "op": "submit",
            "work": float(work),
            "span": span,
            "mode": mode,
            "weight": float(weight),
            "release": release,
        }
        if tenant is not None:
            entry["tenant"] = tenant
        self._journal_append(entry)
        outcome = self.scheduler.submit(
            work=float(work),
            span=span,
            mode=mode,
            weight=float(weight),
            release=release,
            tenant=tenant,
        )
        self._journal_rotate()
        return {
            "ok": True,
            "accepted": outcome.accepted,
            "job_id": outcome.job_id,
            "decision": outcome.decision.value,
            "backpressure": outcome.backpressure,
            "now": self.scheduler.now,
        }

    def _op_advance(self, request: dict) -> dict:
        if self.config.clock == "wall":
            raise ValueError("advance is only valid with the trace clock")
        to = request.get("to")
        if not isinstance(to, (int, float)) or isinstance(to, bool):
            raise ValueError("advance requires a numeric 'to'")
        self._journal_append({"op": "advance", "to": float(to)})
        self.scheduler.advance_to(float(to))
        self._journal_rotate()
        return {"ok": True, "now": self.scheduler.now}

    def _op_query(self, request: dict) -> dict:
        job_id = request.get("job_id")
        if not isinstance(job_id, int):
            raise ValueError("query requires an integer job_id")
        return {"ok": True, **self.scheduler.query(job_id)}

    def _op_stats(self, request: dict) -> dict:
        if self.config.clock == "wall":
            self.scheduler.advance_to(self._wall_now())
        stats = self.scheduler.stats()
        stats["server"] = {
            # exclude this stats request itself from the gauge
            "pending": max(0, self._pending - 1),
            "shed_requests": self._shed_requests,
            "timed_out_requests": self._timed_out_requests,
            "bad_lines": self._bad_lines,
        }
        if self._journal is not None:
            stats["server"]["journal_seq"] = self._journal.seq
        return {"ok": True, "stats": stats}

    def _op_metrics(self, request: dict) -> dict:
        sched = self.scheduler
        if self.config.clock == "wall":
            sched.advance_to(self._wall_now())
        assert sched.metrics is not None
        gauges = {}
        if sched.admission is not None:
            gauges["backpressure"] = sched.admission.backpressure(
                sched.now, sched.n_active
            )
            gauges["load_estimate"] = sched.admission.load_estimate(sched.now)
        if sched.autoscale is not None:
            gauges["m_current"] = float(sched.m_effective)
            gauges["capacity_seconds"] = sched.autoscale.capacity_seconds
        text = sched.metrics.to_prometheus(
            sched.now, active=sched.n_active, **gauges
        )
        return {"ok": True, "content_type": "text/plain; version=0.0.4", "text": text}

    def _op_drain(self, request: dict) -> dict:
        self._journal_append({"op": "drain"})
        result = self.scheduler.drain()
        self._journal_rotate()
        summary = {
            k: v for k, v in result.summary().items() if _jsonable(v)
        }
        out = {"ok": True, "now": self.scheduler.now, "result": summary}
        if request.get("include_flows"):
            out["flow_times"] = [float(f) for f in result.flow_times]
        if request.get("include_tenants"):
            out["tenant_flows"] = self.scheduler.flows_by_tenant()
            out["tenant_of"] = self.scheduler.tenant_labels
        return out

    def _op_snapshot(self, request: dict) -> dict:
        path = request.get("path") or self.config.snapshot_path
        if not path:
            if self._journal is not None:
                # journal mode: checkpoint in place and truncate the log
                written = self._journal.mark_snapshot(self.scheduler)
                return {
                    "ok": True,
                    "path": str(written),
                    "now": self.scheduler.now,
                }
            raise ValueError(
                "snapshot requires a 'path' (or serve --snapshot-path "
                "or --journal-dir)"
            )
        written = snapshot_scheduler_file(self.scheduler, path)
        return {"ok": True, "path": str(written), "now": self.scheduler.now}

    def _op_tenants(self, request: dict) -> dict:
        if self.config.clock == "wall":
            self.scheduler.advance_to(self._wall_now())
        admission = self.scheduler.admission
        if not isinstance(admission, MultiTenantAdmission):
            raise ValueError(
                "tenants op requires multi-tenant admission "
                "(serve --multi-tenant or --credit-rate)"
            )
        return {
            "ok": True,
            "now": self.scheduler.now,
            "tenants": admission.tenant_stats(self.scheduler.now),
        }

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "now": self.scheduler.now}

    def _op_shutdown(self, request: dict) -> dict:
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(self.stop())
        )
        return {"ok": True, "bye": True}


def _jsonable(v) -> bool:
    return isinstance(v, (bool, int, float, str)) or v is None


def _encode_response(response: dict) -> bytes:
    """Serialize a response; a bad payload still yields a valid line."""
    try:
        return json.dumps(response).encode() + b"\n"
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        fallback = {"ok": False, "error": f"unserializable response: {exc}"}
        return json.dumps(fallback).encode() + b"\n"
