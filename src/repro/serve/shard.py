"""Sharded serving tier: consistent-hash router over N engine shards.

One :class:`~repro.serve.server.SchedulerServer` is bounded by one core.
This module scales the serving layer horizontally while keeping the
repo's defining guarantee — determinism — intact:

* **Consistent-hash routing** (:class:`HashRing`) — each shard owns
  ``vnodes`` pseudo-random arcs of a 63-bit ring; a job's routing key
  (its tenant by default) lands on the first arc clockwise.  Ring
  positions come from :func:`repro.core.rng.derive_seed`, so placement
  is a pure function of ``(seed, shard names, key)`` — the same key maps
  to the same shard in every process, and removing one of N shards
  remaps only the keys that shard owned (~1/N of the population).

* **Per-shard seed discipline** (:func:`shard_seed`) — shard 0 runs on
  the *base* seed and shard i>0 on ``derive_seed(seed, "shard/i")``,
  mirroring the replicate discipline of :mod:`repro.analysis.pool`
  (replicate 0 = base seed).  A ``--shards 1`` deployment is therefore
  bit-identical to the serial server, and every shard of a wider
  deployment is independently verifiable against an offline
  :func:`repro.flowsim.simulate` with its own seed.

* **Submission-order reassembly** — the router logs every offered job
  (tenant, routed shard, shard-local id).  :meth:`ShardRouter.drain`
  collects each shard's per-job flow times and reassembles them in
  global submission order, exactly like the pool runner reassembles
  grid cells, so a sharded run's merged report is byte-identical across
  runs (:meth:`ShardRouter.report_json` serializes canonically).

* **Shard lifecycle** — shards are either in-process
  (:class:`LocalShard`, an unstarted server dispatched directly — fast
  path for tests) or real subprocesses (:class:`SubprocessShard`) with
  a write-ahead journal each; :meth:`SubprocessShard.kill` +
  :meth:`SubprocessShard.restart` exercise the crash path, and because
  each shard recovers from its own journal the merged report after a
  SIGKILL equals the uninterrupted one bit for bit.

Multi-tenant admission runs at the **router**, sized to the aggregate
fleet capacity (Σ shard m); shards run admission-free so the accept/shed
decision is made exactly once.  See docs/serving.md ("Sharding and
multi-tenancy") for the topology diagram and replay guarantees.
"""

from __future__ import annotations

import bisect
import json
import os
import re
import selectors
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.rng import derive_seed
from repro.serve.loadgen import retry_delay
from repro.serve.admission import AdmissionConfig, AdmissionDecision
from repro.serve.server import SchedulerServer, ServeConfig
from repro.serve.tenancy import DEFAULT_TENANT, MultiTenantAdmission, TenancyConfig

__all__ = [
    "HashRing",
    "LocalShard",
    "ShardError",
    "ShardFrontend",
    "ShardRouter",
    "ShardSupervisor",
    "SubprocessShard",
    "build_local_router",
    "build_subprocess_router",
    "shard_seed",
]

_PORT_RE = re.compile(r"listening on [\d.]+:(\d+)")


class ShardError(RuntimeError):
    """A shard failed to start, respond, or recover."""


def shard_seed(seed: int, index: int) -> int:
    """Engine seed for shard ``index`` under master ``seed``.

    Shard 0 keeps the base seed — the same rule the grid pool applies to
    replicate 0 — so a one-shard deployment reproduces the serial
    reference bit for bit.  Pinned by the ring determinism tests.
    """
    if index == 0:
        return int(seed)
    return derive_seed(seed, f"shard/{index}")


class HashRing:
    """Deterministic consistent-hash ring over named shards.

    Every shard contributes ``vnodes`` positions drawn from
    :func:`derive_seed` of ``(seed, "ring/<shard>/<v>")``; a key hashes
    to ``derive_seed(seed, "key/<key>")`` and is owned by the first
    shard position at or clockwise of it.  Because a shard's positions
    depend only on its own name (and the shared seed), dropping a shard
    leaves every other shard's positions in place — only the dropped
    arcs change owner.
    """

    def __init__(
        self, shards: list[str], seed: int = 0, vnodes: int = 64
    ) -> None:
        if not shards:
            raise ValueError("ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("shard names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        self.shards = list(shards)
        points: list[tuple[int, str]] = []
        for name in shards:
            for v in range(vnodes):
                points.append((derive_seed(seed, f"ring/{name}/{v}"), name))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [o for _, o in points]

    def route(self, key: str) -> str:
        """Shard owning ``key`` — stable across processes and runs."""
        h = derive_seed(self.seed, f"key/{key}")
        i = bisect.bisect_left(self._positions, h)
        if i == len(self._positions):
            i = 0  # wrap: past the last arc back to the first
        return self._owners[i]

    def without(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` removed (other arcs untouched)."""
        rest = [s for s in self.shards if s != shard]
        if len(rest) == len(self.shards):
            raise KeyError(f"unknown shard {shard!r}")
        return HashRing(rest, seed=self.seed, vnodes=self.vnodes)


# -- shard handles ---------------------------------------------------------


class LocalShard:
    """In-process shard: an unstarted server dispatched directly.

    The handle shares the server's op handlers (``_op_submit`` etc.)
    without a socket, so router logic can be tested at full speed with
    exactly the semantics — including journaling, when the config has a
    ``journal_dir`` — that the subprocess path exercises.
    """

    def __init__(self, name: str, config: ServeConfig) -> None:
        self.name = name
        self.config = config
        self._server = SchedulerServer(config)

    @property
    def scheduler(self):
        return self._server.scheduler

    def call(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self._server, f"_op_{op}", None)
        if handler is None or op in ("shutdown",):
            return {"ok": False, "error": f"unsupported shard op {op!r}"}
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 — mirror the server's guard
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def close(self) -> None:
        if self._server._journal is not None:
            self._server._journal.close()


class SubprocessShard:
    """One engine shard as a real ``drep-sim serve`` subprocess.

    The shard speaks the JSON-lines protocol over a blocking socket and
    journals every mutating request, so :meth:`kill` (SIGKILL, no
    cleanup) followed by :meth:`restart` recovers it bit-for-bit from
    its own write-ahead log — the sharded crash-recovery tests build on
    exactly this pair.
    """

    def __init__(
        self,
        name: str,
        config: ServeConfig,
        journal_dir: str | Path,
        start_timeout: float = 30.0,
        restart_backoff: float = 0.25,
        restart_backoff_cap: float = 4.0,
        max_restart_attempts: int = 5,
        sleep=time.sleep,
    ) -> None:
        if config.journal_dir is None:
            config = ServeConfig(
                **{**_config_kwargs(config), "journal_dir": str(journal_dir)}
            )
        self.name = name
        self.config = config
        self.journal_dir = Path(journal_dir)
        self.start_timeout = float(start_timeout)
        self.restart_backoff = float(restart_backoff)
        self.restart_backoff_cap = float(restart_backoff_cap)
        self.max_restart_attempts = int(max_restart_attempts)
        #: lifetime spawn attempts made by :meth:`restart` (incl. failures)
        self.restart_attempts = 0
        #: successful revivals (hello round-tripped after a respawn)
        self.restarts = 0
        # jitter stream for restart backoff: a pure function of
        # (shard seed, shard name) so fleet revivals are reproducible
        self._restart_rng = np.random.default_rng(
            derive_seed(config.seed, f"restart/{name}")
        )
        self._sleep = sleep
        self._proc: subprocess.Popen | None = None
        self._sock: socket.socket | None = None
        self._rfile = None
        self.port: int | None = None
        # serializes wire round trips and restarts: the supervisor may
        # heartbeat from its own thread while the frontend routes jobs
        self._wire_lock = threading.RLock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._proc is not None:
            raise ShardError(f"shard {self.name} already started")
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src), env.get("PYTHONPATH")) if p
        )
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *self._argv()],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.port = self._await_port()
        self._connect()

    def _argv(self) -> list[str]:
        cfg = self.config
        argv = [
            "--m", str(cfg.m),
            "--policy", cfg.policy,
            "--seed", str(cfg.seed),
            "--host", cfg.host,
            "--port", "0",
            "--clock", cfg.clock,
            "--window", str(cfg.window),
            "--speed", str(cfg.speed),
            "--journal-dir", str(cfg.journal_dir),
            "--snapshot-every", str(cfg.snapshot_every),
        ]
        if cfg.fsync:
            argv.append("--fsync")
        return argv

    def _await_port(self) -> int:
        """Wait for the child's ``listening on`` line, honoring the deadline.

        The pipe is polled via :mod:`selectors` and drained with
        :func:`os.read` — a blocking ``readline()`` would ignore
        ``start_timeout`` whenever the child starts but never prints the
        port (and never closes stdout).  Only complete lines are matched,
        so a port number split across reads cannot match truncated.
        """
        assert self._proc is not None and self._proc.stdout is not None
        deadline = time.monotonic() + self.start_timeout
        fd = self._proc.stdout.fileno()
        buf = ""
        with selectors.DefaultSelector() as sel:
            sel.register(fd, selectors.EVENT_READ)
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if not sel.select(timeout=remaining):
                    continue  # poll timeout: loop re-checks the deadline
                chunk = os.read(fd, 4096)
                if not chunk:
                    break  # EOF: the child exited or closed stdout
                buf += chunk.decode(errors="replace")
                *lines, buf = buf.split("\n")
                for line in lines:
                    match = _PORT_RE.search(line)
                    if match:
                        return int(match.group(1))
        self._proc.kill()
        self._proc.wait(timeout=self.start_timeout)
        raise ShardError(f"shard {self.name} did not report a port")

    def _connect(self) -> None:
        assert self.port is not None
        self._sock = socket.create_connection(
            (self.config.host, self.port), timeout=self.start_timeout
        )
        self._rfile = self._sock.makefile("rb")

    def call(self, request: dict) -> dict:
        with self._wire_lock:
            if self._sock is None:
                raise ShardError(f"shard {self.name} is not connected")
            self._sock.sendall(json.dumps(request).encode() + b"\n")
            line = self._rfile.readline()
            if not line:
                raise ShardError(f"shard {self.name} closed the connection")
            return json.loads(line)

    def ping(self) -> bool:
        """Health check: one ``ping`` round trip, failure = unhealthy."""
        try:
            return bool(self.call({"op": "ping"}).get("ok"))
        except (ShardError, OSError, ValueError):
            return False

    def kill(self) -> None:
        """SIGKILL the shard — no cleanup, the crash-recovery path."""
        if self._proc is not None:
            self._proc.send_signal(signal.SIGKILL)
            self._proc.wait(timeout=self.start_timeout)
            self._proc = None
        self._drop_connection()

    def reap(self) -> None:
        """Collect a dead child process and drop its stale connection.

        A shard that exited on its own (crash, OOM kill) leaves a zombie
        until waited on; a shard that is still alive raises — restarting
        over a live process would orphan it and double-serve the journal.
        """
        if self._proc is not None:
            if self._proc.poll() is None:
                raise ShardError(f"shard {self.name} is still running")
            self._proc.wait()
            self._proc = None
        self._drop_connection()

    def restart(self) -> dict:
        """Respawn from the same journal directory; returns its ``hello``.

        The new process replays its write-ahead log, so the shard comes
        back with the same clock, in-flight jobs and policy RNG it died
        with.  Spawn failures are retried up to ``max_restart_attempts``
        times with bounded exponential backoff and seeded jitter (the
        same :func:`~repro.serve.loadgen.retry_delay` discipline the wire
        client uses); the dead child is reaped before every attempt so a
        half-started process never leaks.
        """
        with self._wire_lock:
            self.reap()
            last_exc: Exception | None = None
            for attempt in range(1, self.max_restart_attempts + 1):
                self.restart_attempts += 1
                try:
                    self.start()
                    hello = self.call({"op": "hello"})
                    if not hello.get("ok"):
                        raise ShardError(
                            f"shard {self.name} revived but hello "
                            f"failed: {hello}"
                        )
                    self.restarts += 1
                    return hello
                except (ShardError, OSError, ValueError) as exc:
                    last_exc = exc
                    # tear down whatever half-started before the next try
                    if self._proc is not None:
                        if self._proc.poll() is None:
                            self._proc.kill()
                        self._proc.wait()
                        self._proc = None
                    self._drop_connection()
                    if attempt < self.max_restart_attempts:
                        self._sleep(
                            retry_delay(
                                attempt,
                                self.restart_backoff,
                                self.restart_backoff_cap,
                                self._restart_rng,
                            )
                        )
            raise ShardError(
                f"shard {self.name} failed to restart after "
                f"{self.max_restart_attempts} attempts"
            ) from last_exc

    def supervision_stats(self) -> dict:
        """Restart bookkeeping surfaced into the router report."""
        return {
            "restart_attempts": self.restart_attempts,
            "restarts": self.restarts,
            "alive": self._proc is not None and self._proc.poll() is None,
        }

    def drain_process(self) -> None:
        """Graceful stop: ``shutdown`` op, then wait for exit."""
        if self._proc is None:
            return
        try:
            self.call({"op": "shutdown"})
        except (ShardError, OSError):
            pass
        self._drop_connection()
        try:
            self._proc.wait(timeout=self.start_timeout)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            self._proc.wait(timeout=self.start_timeout)
        self._proc = None

    def _drop_connection(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def close(self) -> None:
        self.drain_process()


def _config_kwargs(config: ServeConfig) -> dict:
    from dataclasses import fields

    return {f.name: getattr(config, f.name) for f in fields(config)}


# -- the router ------------------------------------------------------------


class ShardRouter:
    """Routes jobs onto shards; owns admission, merge and lifecycle.

    Parameters
    ----------
    shards:
        Started shard handles (:class:`LocalShard` or
        :class:`SubprocessShard`).  Shards should run **without** their
        own admission caps — the router decides accept/shed exactly once
        against the aggregate capacity.
    seed:
        Master seed; also salts the :class:`HashRing`.
    admission:
        Router-level multi-tenant admission; when ``None`` every offered
        job is accepted (the shards still journal and replay).
    """

    def __init__(
        self,
        shards: list[LocalShard | SubprocessShard],
        seed: int = 0,
        vnodes: int = 64,
        admission: MultiTenantAdmission | None = None,
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        names = [s.name for s in shards]
        self.seed = int(seed)
        self.shards = {s.name: s for s in shards}
        self.ring = HashRing(names, seed=seed, vnodes=vnodes)
        self.admission = admission
        #: one row per offered job, in submission order:
        #: (tenant, shard name or None when shed, shard-local job id)
        self._log: list[tuple[str, str | None, int | None]] = []
        self._now = 0.0
        # fleet occupancy view, refreshed on advance/drain and bumped on
        # accept — deterministic in the request sequence, which is all
        # admission needs
        self._active_view = 0
        self._backlog_view = 0.0
        #: per-shard, per-tenant completed counters already reconciled
        self._completed_seen: dict[str, dict[str, int]] = {}
        self._merged: dict | None = None

    @property
    def m_total(self) -> int:
        return sum(s.config.m for s in self.shards.values())

    @property
    def now(self) -> float:
        return self._now

    @property
    def n_offered(self) -> int:
        return len(self._log)

    @property
    def n_accepted(self) -> int:
        return sum(1 for _, shard, _ in self._log if shard is not None)

    @property
    def n_shed(self) -> int:
        return len(self._log) - self.n_accepted

    # -- the online API ----------------------------------------------------

    def submit(
        self,
        work: float,
        span: float | None = None,
        mode: str = "sequential",
        weight: float = 1.0,
        release: float | None = None,
        tenant: str | None = None,
        key: str | None = None,
    ) -> dict:
        """Offer one job: admit at the router, route by key, forward.

        The routing key defaults to the tenant (all of one tenant's jobs
        land on one shard — cache affinity and per-tenant ordering), but
        an explicit ``key`` spreads a tenant over the ring.  Returns the
        shard's submit response extended with ``shard`` and ``tenant``.
        """
        label = tenant if tenant is not None else DEFAULT_TENANT
        if release is None:
            release = self._now
        release = float(release)
        self._now = max(self._now, release)
        if self.admission is not None:
            self.admission.observe(release, work)
            decision = self.admission.decide_tenant(
                t=release,
                tenant=label,
                work=float(work),
                active=self._active_view,
                backlog_work=self._backlog_view,
            )
            if decision is not AdmissionDecision.ACCEPT:
                self._log.append((label, None, None))
                return {
                    "ok": True,
                    "accepted": False,
                    "job_id": None,
                    "decision": decision.value,
                    "shard": None,
                    "tenant": label,
                }
        shard_name = self.ring.route(key if key is not None else label)
        resp = self.shards[shard_name].call(
            {
                "op": "submit",
                "work": float(work),
                "span": span,
                "mode": mode,
                "weight": float(weight),
                "release": release,
                "tenant": label,
            }
        )
        if not resp.get("ok") or not resp.get("accepted"):
            # shards run admission-free, so this is an error, not a shed
            raise ShardError(
                f"shard {shard_name} refused a routed job: {resp}"
            )
        self._log.append((label, shard_name, int(resp["job_id"])))
        self._active_view += 1
        self._backlog_view += float(work)
        resp["shard"] = shard_name
        resp["tenant"] = label
        resp["global_id"] = len(self._log) - 1
        return resp

    def advance_to(self, t: float) -> None:
        """Advance every shard's clock to ``t`` and refresh occupancy."""
        t = float(t)
        if t < self._now:
            raise ValueError(f"cannot rewind router clock to {t}")
        self._now = t
        active = 0
        backlog = 0.0
        for name in self.ring.shards:
            shard = self.shards[name]
            resp = shard.call({"op": "advance", "to": t})
            if not resp.get("ok"):
                raise ShardError(f"shard {name} advance failed: {resp}")
            stats = shard.call({"op": "stats"})["stats"]
            active += int(stats["active"]) + int(stats["pending"])
            backlog += float(stats["backlog_work"])
            self._reconcile_completions(name, stats)
        self._active_view = active
        self._backlog_view = backlog

    def _reconcile_completions(self, name: str, stats: dict) -> None:
        """Release router-side tenant queue slots for shard completions.

        The shard's per-tenant metrics carry lifetime ``completed``
        counters; the delta since the last refresh is exactly how many
        of that tenant's slots freed up.
        """
        if self.admission is None:
            return
        tenant_counts = stats.get("window", {}).get("tenants", {})
        seen = self._completed_seen.setdefault(name, {})
        for tenant, row in tenant_counts.items():
            done = int(row["completed"])
            for _ in range(done - seen.get(tenant, 0)):
                self.admission.on_complete(tenant)
            seen[tenant] = done

    def ping_all(self) -> dict[str, bool]:
        """Health-check every shard (subprocess shards may be dead)."""
        out = {}
        for name, shard in self.shards.items():
            if hasattr(shard, "ping"):
                out[name] = shard.ping()
            else:
                out[name] = bool(shard.call({"op": "ping"}).get("ok"))
        return out

    def stats(self) -> dict:
        """Aggregate counters plus per-shard and per-tenant breakdowns."""
        per_shard = {}
        for name in self.ring.shards:
            shard = self.shards[name]
            per_shard[name] = shard.call({"op": "stats"})["stats"]
            if isinstance(shard, SubprocessShard):
                per_shard[name]["supervision"] = shard.supervision_stats()
        out = {
            "now": self._now,
            "shards": len(self.shards),
            "m_total": self.m_total,
            "offered": self.n_offered,
            "accepted": self.n_accepted,
            "shed": self.n_shed,
            "per_shard": per_shard,
        }
        if self.admission is not None:
            out["tenants"] = self.admission.tenant_stats(self._now)
        return out

    # -- drain and the merged report ---------------------------------------

    def drain(self) -> dict:
        """Drain every shard and reassemble the merged report.

        Per-job flow times come back in **global submission order** (the
        routing log maps global ids to shard-local ids), per-tenant
        groups are keyed by label, and the makespan is the latest shard
        finish — the same reassembly discipline the grid pool applies to
        out-of-order cells.
        """
        flows_of: dict[str, list[float]] = {}
        makespan = 0.0
        for name in self.ring.shards:
            resp = self.shards[name].call(
                {"op": "drain", "include_flows": True}
            )
            if not resp.get("ok"):
                raise ShardError(f"shard {name} drain failed: {resp}")
            flows_of[name] = [float(f) for f in resp["flow_times"]]
            makespan = max(makespan, float(resp["result"]["makespan"]))
            self._reconcile_completions(
                name, self.shards[name].call({"op": "stats"})["stats"]
            )
        self._active_view = 0
        self._backlog_view = 0.0
        per_job: list[float] = []
        tenants: dict[str, dict] = {}
        for tenant, shard, local_id in self._log:
            row = tenants.setdefault(
                tenant, {"accepted": 0, "shed": 0, "flows": []}
            )
            if shard is None:
                row["shed"] += 1
                continue
            flow = flows_of[shard][local_id]
            per_job.append(flow)
            row["accepted"] += 1
            row["flows"].append(flow)
        tenant_rows = {}
        for tenant in sorted(tenants):
            row = tenants[tenant]
            flows = row["flows"]
            tenant_rows[tenant] = {
                "accepted": row["accepted"],
                "shed": row["shed"],
                "count": len(flows),
                "total_flow": sum(flows),
                "mean_flow": sum(flows) / len(flows) if flows else 0.0,
                "max_flow": max(flows) if flows else 0.0,
            }
        self._merged = {
            "seed": self.seed,
            "shards": len(self.shards),
            "m_total": self.m_total,
            "offered": self.n_offered,
            "accepted": self.n_accepted,
            "shed": self.n_shed,
            "makespan": makespan,
            "total_flow": sum(per_job),
            "mean_flow": sum(per_job) / len(per_job) if per_job else 0.0,
            "flow_times": per_job,
            "tenants": tenant_rows,
        }
        return self._merged

    def report_json(self, report: dict | None = None) -> bytes:
        """Canonical serialization of the merged report.

        Sorted keys and tight separators make equal reports equal
        *bytes* — the form the replay-determinism tests compare.
        """
        if report is None:
            report = self._merged
        if report is None:
            raise ShardError("no merged report yet — call drain() first")
        return json.dumps(
            report, sort_keys=True, separators=(",", ":")
        ).encode()

    def close(self) -> None:
        for shard in self.shards.values():
            shard.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardSupervisor:
    """Self-healing loop over a router's subprocess shards.

    Each sweep (:meth:`check_once`) heartbeats every
    :class:`SubprocessShard` with a ``ping`` and revives dead ones via
    :meth:`SubprocessShard.restart` — which reaps the corpse, respawns
    with bounded backoff, and replays the shard's write-ahead journal, so
    a revived shard rejoins with the clock, in-flight jobs and policy RNG
    it died with.  :class:`LocalShard` entries are in-process and cannot
    die independently; they are reported ``local`` and skipped.

    The supervisor is cooperative: call :meth:`check_once` from any loop
    you already own, or :meth:`run` for a blocking heartbeat loop (the
    CLI's ``--supervise`` path runs it on a daemon thread).  A shard that
    exhausts its restart budget is marked failed and left alone until an
    operator intervenes — flapping forever would just burn the backoff
    budget every sweep.
    """

    def __init__(self, router: ShardRouter) -> None:
        self.router = router
        self.sweeps = 0
        self.revivals = 0
        self.failures = 0
        #: shards that exhausted their restart budget; not retried
        self.failed: set[str] = set()
        #: last sweep's verdict per shard name
        self.last_status: dict[str, str] = {}

    def check_once(self) -> dict[str, str]:
        """One heartbeat sweep; returns shard name → verdict.

        Verdicts: ``healthy``, ``revived`` (dead, restart + journal
        replay succeeded), ``failed`` (restart budget exhausted, now
        quarantined), ``local`` (in-process shard, nothing to supervise).
        """
        self.sweeps += 1
        status: dict[str, str] = {}
        for name, shard in self.router.shards.items():
            if not isinstance(shard, SubprocessShard):
                status[name] = "local"
                continue
            if name in self.failed:
                status[name] = "failed"
                continue
            if shard.ping():
                status[name] = "healthy"
                continue
            try:
                shard.restart()
            except ShardError:
                self.failures += 1
                self.failed.add(name)
                status[name] = "failed"
            else:
                self.revivals += 1
                status[name] = "revived"
        self.last_status = status
        return status

    def run(
        self,
        interval: float = 1.0,
        max_sweeps: int | None = None,
        stop=None,
        sleep=time.sleep,
    ) -> None:
        """Blocking heartbeat loop: sweep, sleep ``interval``, repeat.

        ``stop`` is an optional ``threading.Event``-like object checked
        between sweeps; ``max_sweeps`` bounds the loop for tests.
        """
        done = 0
        while max_sweeps is None or done < max_sweeps:
            if stop is not None and stop.is_set():
                return
            self.check_once()
            done += 1
            if max_sweeps is not None and done >= max_sweeps:
                return
            sleep(interval)

    def stats(self) -> dict:
        """Counters plus per-shard restart bookkeeping."""
        per_shard = {}
        for name, shard in self.router.shards.items():
            if isinstance(shard, SubprocessShard):
                per_shard[name] = shard.supervision_stats()
        return {
            "sweeps": self.sweeps,
            "revivals": self.revivals,
            "failures": self.failures,
            "failed": sorted(self.failed),
            "per_shard": per_shard,
        }


class ShardFrontend:
    """Asyncio JSON-lines listener in front of a :class:`ShardRouter`.

    Speaks the same framing as :class:`~repro.serve.server.SchedulerServer`
    with the router-level op set: ``hello``, ``submit`` (with ``tenant``
    and optional ``key``), ``advance``, ``stats``, ``tenants``, ``ping``,
    ``drain`` (the merged report) and ``shutdown``.  Router calls block
    briefly on shard sockets; requests are serialized, which is also
    what keeps the routing log deterministic.
    """

    def __init__(
        self, router: ShardRouter, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.router = router
        self.host = host
        self._requested_port = port
        self._server = None
        self._stopped = None

    @property
    def port(self) -> int:
        assert self._server is not None, "frontend not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        import asyncio

        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def wait_closed(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.router.close()
        if self._stopped is not None:
            self._stopped.set()

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._dispatch(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("bye"):
                    import asyncio

                    asyncio.get_running_loop().call_soon(
                        lambda: asyncio.ensure_future(self.stop())
                    )
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        req_id = request.get("id")
        try:
            response = self._apply(request)
        except Exception as exc:  # noqa: BLE001 — one request, one error
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if req_id is not None:
            response["id"] = req_id
        return response

    def _apply(self, request: dict) -> dict:
        router = self.router
        op = request.get("op")
        if op == "hello":
            return {
                "ok": True,
                "service": "drep-serve-router",
                "shards": len(router.shards),
                # "m" = fleet capacity: what single-server clients (e.g.
                # loadgen's load calibration) expect to find in a hello
                "m": router.m_total,
                "m_total": router.m_total,
                "seed": router.seed,
                "now": router.now,
                "multi_tenant": router.admission is not None,
            }
        if op == "submit":
            return router.submit(
                work=float(request["work"]),
                span=request.get("span"),
                mode=request.get("mode", "sequential"),
                weight=float(request.get("weight", 1.0)),
                release=request.get("release"),
                tenant=request.get("tenant"),
                key=request.get("key"),
            )
        if op == "advance":
            router.advance_to(float(request["to"]))
            return {"ok": True, "now": router.now}
        if op == "stats":
            return {"ok": True, "stats": router.stats()}
        if op == "tenants":
            if router.admission is None:
                raise ValueError("router has no multi-tenant admission")
            return {
                "ok": True,
                "now": router.now,
                "tenants": router.admission.tenant_stats(router.now),
            }
        if op == "ping":
            return {"ok": True, "now": router.now, "shards": router.ping_all()}
        if op == "drain":
            report = router.drain()
            out = {"ok": True, "now": router.now, "result": report}
            if not request.get("include_flows"):
                out["result"] = {
                    k: v for k, v in report.items() if k != "flow_times"
                }
            return out
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def build_local_router(
    n_shards: int,
    m: int = 8,
    policy: str = "drep",
    seed: int = 0,
    vnodes: int = 64,
    tenancy: TenancyConfig | None = None,
    admission_config: AdmissionConfig | None = None,
    journal_root: str | Path | None = None,
) -> ShardRouter:
    """Convenience constructor: N in-process shards + router admission.

    Shard ``i`` is named ``shard/<i>``, runs on :func:`shard_seed` of
    ``(seed, i)``, and journals under ``journal_root/shard-<i>`` when a
    root is given.  Router admission is built whenever ``tenancy`` or
    ``admission_config`` is provided, sized to the fleet (N × m).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards = []
    for i in range(n_shards):
        journal_dir = (
            None
            if journal_root is None
            else str(Path(journal_root) / f"shard-{i}")
        )
        config = ServeConfig(
            m=m,
            policy=policy,
            seed=shard_seed(seed, i),
            journal_dir=journal_dir,
        )
        shards.append(LocalShard(f"shard/{i}", config))
    admission = None
    if tenancy is not None or admission_config is not None:
        admission = MultiTenantAdmission(
            admission_config or AdmissionConfig(),
            m=n_shards * m,
            tenancy=tenancy or TenancyConfig(),
        )
    return ShardRouter(shards, seed=seed, vnodes=vnodes, admission=admission)


def build_subprocess_router(
    n_shards: int,
    journal_root: str | Path,
    m: int = 8,
    policy: str = "drep",
    seed: int = 0,
    vnodes: int = 64,
    tenancy: TenancyConfig | None = None,
    admission_config: AdmissionConfig | None = None,
    snapshot_every: int = 256,
    fsync: bool = False,
) -> ShardRouter:
    """Spawn N journaled ``drep-sim serve`` subprocesses behind a router.

    Same naming/seed/admission discipline as :func:`build_local_router`;
    ``journal_root`` is mandatory because the journal *is* a subprocess
    shard's crash-recovery story.  Shards that fail to start are torn
    down before the error propagates.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards: list[SubprocessShard] = []
    try:
        for i in range(n_shards):
            config = ServeConfig(
                m=m,
                policy=policy,
                seed=shard_seed(seed, i),
                journal_dir=str(Path(journal_root) / f"shard-{i}"),
                snapshot_every=snapshot_every,
                fsync=fsync,
            )
            shard = SubprocessShard(
                f"shard/{i}", config, config.journal_dir
            )
            # registered before start(): a child that spawned but failed
            # mid-start (e.g. the connect raised) must still be torn down
            shards.append(shard)
            shard.start()
    except Exception:
        for shard in shards:
            shard.kill()
        raise
    admission = None
    if tenancy is not None or admission_config is not None:
        admission = MultiTenantAdmission(
            admission_config or AdmissionConfig(),
            m=n_shards * m,
            tenancy=tenancy or TenancyConfig(),
        )
    return ShardRouter(shards, seed=seed, vnodes=vnodes, admission=admission)
