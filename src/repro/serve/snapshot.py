"""Checkpoint/restore of a live scheduler — engine, policy and RNG state.

A serving process must survive being killed: a restored scheduler picks
up with the same clock, the same in-flight jobs at the same remaining
work, the same admission/metrics state, and — crucially — the *same
policy randomness*, so the post-restore trajectory is identical to one
that was never interrupted.

Snapshots are a single JSON document (version-tagged), portable across
processes.  Engine-level state comes from
:meth:`repro.flowsim.FlowStepper.state_dict`; policy state is captured
generically by encoding the policy's ``__dict__`` with a small tagged
codec that understands the types scheduler policies actually hold:
numpy arrays, numpy random generators (via ``bit_generator.state``),
sets, tuples and int-keyed dicts.  Restore instantiates the policy
class fresh (zero-argument) and replays the captured attributes, so any
policy in :mod:`repro.flowsim.policies` round-trips without bespoke
serialization code.

Jobs carrying explicit DAG objects are not snapshottable (the engine
refuses); the serving layer only creates scalar work/span jobs.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

import numpy as np

from repro.flowsim.engine import FlowStepper
from repro.flowsim.policies.base import Policy
from repro.serve.admission import AdmissionController
from repro.serve.metrics import RollingMetrics
from repro.serve.online import OnlineScheduler
from repro.serve.tenancy import MultiTenantAdmission

__all__ = [
    "SNAPSHOT_VERSION",
    "snapshot_scheduler",
    "snapshot_scheduler_file",
    "restore_scheduler",
    "restore_scheduler_file",
    "SnapshotError",
]

SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """Raised when a snapshot cannot be produced or restored."""


# -- tagged value codec ----------------------------------------------------


def _encode(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.random.Generator):
        return {"__rng__": value.bit_generator.state}
    if isinstance(value, set):
        return {"__set__": [_encode(v) for v in sorted(value)]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {"__map__": [[_encode(k), _encode(v)] for k, v in value.items()]}
    raise SnapshotError(
        f"cannot snapshot policy attribute of type {type(value).__name__}"
    )


def _decode(value):
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        if "__rng__" in value:
            state = value["__rng__"]
            bitgen_cls = getattr(np.random, state["bit_generator"])
            gen = np.random.Generator(bitgen_cls())
            gen.bit_generator.state = state
            return gen
        if "__set__" in value:
            return {_decode(v) for v in value["__set__"]}
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
        if "__map__" in value:
            return {_decode(k): _decode(v) for k, v in value["__map__"]}
        raise SnapshotError(f"unrecognized tagged value: {sorted(value)}")
    return value


def _encode_policy(policy: Policy) -> dict:
    cls = type(policy)
    return {
        "class": f"{cls.__module__}:{cls.__qualname__}",
        "attrs": {k: _encode(v) for k, v in vars(policy).items()},
    }


def _decode_policy(data: dict) -> Policy:
    module_name, _, qualname = data["class"].partition(":")
    if not module_name.startswith("repro."):
        raise SnapshotError(
            f"refusing to import policy from outside repro.*: {module_name}"
        )
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and issubclass(obj, Policy)):
        raise SnapshotError(f"{data['class']} is not a Policy")
    policy = obj()
    for key, value in data["attrs"].items():
        setattr(policy, key, _decode(value))
    return policy


# -- public API ------------------------------------------------------------


def snapshot_scheduler(sched: OnlineScheduler) -> dict:
    """Full serializable state of a live :class:`OnlineScheduler`."""
    return {
        "version": SNAPSHOT_VERSION,
        "engine": sched.stepper.state_dict(),
        "policy": _encode_policy(sched.policy),
        "admission": (
            None if sched.admission is None else sched.admission.state_dict()
        ),
        "metrics": (
            None if sched.metrics is None else sched.metrics.state_dict()
        ),
        "offered": sched.n_offered,
        "shed": sched.n_shed,
        "tenant_of": sched.tenant_labels,
        "autoscale": sched.autoscale_state_dict(),
    }


def restore_scheduler(state: dict) -> OnlineScheduler:
    """Rebuild a scheduler that continues exactly where the snapshot stopped."""
    version = state.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    policy = _decode_policy(state["policy"])
    stepper = FlowStepper.from_state_dict(state["engine"], policy)
    admission_state = state["admission"]
    if admission_state is None:
        admission = None
    elif admission_state.get("kind") == "multi_tenant":
        admission = MultiTenantAdmission.from_state_dict(admission_state)
    else:
        admission = AdmissionController.from_state_dict(admission_state)
    metrics = (
        None
        if state["metrics"] is None
        else RollingMetrics.from_state_dict(state["metrics"])
    )
    return OnlineScheduler._from_stepper(
        stepper,
        admission=admission,
        metrics=metrics,
        offered=state["offered"],
        shed=state["shed"],
        # absent in pre-tenancy snapshots — tolerate for forward recovery
        tenant_of=state.get("tenant_of"),
        # likewise absent in pre-autoscale snapshots
        autoscale_state=state.get("autoscale"),
    )


def snapshot_scheduler_file(sched: OnlineScheduler, path: str | Path) -> Path:
    """Write a snapshot atomically (tmp file + rename) and return the path."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(snapshot_scheduler(sched)))
    tmp.replace(path)
    return path


def restore_scheduler_file(path: str | Path) -> OnlineScheduler:
    return restore_scheduler(json.loads(Path(path).read_text()))
