"""Multi-tenant admission: per-tenant credits and DRF dominant-share throttling.

A single :class:`~repro.serve.admission.AdmissionController` protects the
*engine*, but it is tenant-blind: one hot tenant driving the load estimate
over the ceiling makes the controller shed **everyone's** arrivals, so the
tenant causing the overload starves the tenants who are not.  This module
extends (not forks) the controller with two tenant-aware layers:

* **Credit accounting** — every tenant owns an account that accrues
  credit, measured in machine-seconds of work, at a rate equal to its
  *entitlement* (its weight share of total capacity) times
  ``credit_rate``.  Accepted jobs spend their ``work`` from the balance;
  balances are capped at ``credit_burst`` seconds of accrual (so idle
  tenants can burst, but not forever) and may be **borrowed** down to
  ``credit_borrow`` seconds below zero — accrual then repays the debt
  before the balance turns positive again.  A tenant that has spent its
  balance *and* its borrow allowance is shed with ``shed_no_credit``
  regardless of how idle the machine is: credits are a contract, not a
  congestion signal.

* **Dominant-share (DRF) throttling** — per-tenant exponentially decayed
  demand is tracked along two resources: *offered work* (machine-seconds)
  and *offered job count* (queue slots).  A tenant's **dominant share**
  is its larger share of the two totals — the dominant-resource idea of
  DRF, judged on whichever resource a tenant demands most.  Demand is
  charged on every offer, accepted or shed: a hot tenant stays dominant
  *while* it is being throttled, instead of laundering its share by
  being shed for a moment and then flapping back in.
  Whenever a *global* cap (backlog or load ceiling) trips, tenants
  whose dominant share exceeds ``drf_headroom`` × their entitlement are
  shed (``shed_dominant``); tenants under their entitlement are admitted
  through the congestion, because by definition they are not the ones
  causing it.  That exemption only applies while the congestion *is*
  attributable to some dominant tenant: when no tenant is past its
  headroom (a single tenant, or K tenants overloading uniformly), the
  tripped cap falls back to base-class shedding (``shed_backlog`` /
  ``shed_overload``) — otherwise configured ceilings would be no-ops
  exactly when everyone is over.  The hard ``max_active`` queue cap
  still binds everyone — it is engine capacity, not a fairness knob.

Entitlements are weight shares over the tenants *seen so far* (tenants
register implicitly on first offer, or explicitly via
:meth:`MultiTenantAdmission.ensure_tenant`), so a fleet of K equal-weight
tenants each holds 1/K of capacity.  All state is deterministic in the
offered request sequence and round-trips through ``state_dict`` /
``from_state_dict``, which is what makes journal replay and snapshots of
multi-tenant servers bit-exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)

__all__ = ["TenancyConfig", "TenantAccount", "MultiTenantAdmission"]

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenancyConfig:
    """Knobs of the tenant-aware layers; all rates are per sim-time unit.

    ``credit_rate`` is the fraction of fleet capacity handed out as
    credit: at ``1.0`` the accounts jointly accrue exactly the machine's
    capacity (m machine-seconds per second, split by entitlement), below
    ``1.0`` they accrue less (a deliberate throttle), ``None`` disables
    the credit check entirely.  ``credit_burst`` and ``credit_borrow``
    are expressed in *seconds of that tenant's own accrual* — burst 20
    means an idle tenant can bank 20 seconds' worth of credit, borrow 5
    means it may additionally run 5 seconds into debt before being shed.
    ``drf_headroom`` is the slack multiplier on the entitlement before
    the DRF layer treats a tenant as dominant (1.0 = exact fair share).
    """

    credit_rate: float | None = None
    credit_burst: float = 20.0
    credit_borrow: float = 0.0
    drf_headroom: float = 1.2

    def __post_init__(self) -> None:
        if self.credit_rate is not None and self.credit_rate <= 0:
            raise ValueError("credit_rate must be > 0 (or None to disable)")
        if self.credit_burst <= 0:
            raise ValueError("credit_burst must be > 0")
        if self.credit_borrow < 0:
            raise ValueError("credit_borrow must be >= 0")
        if self.drf_headroom < 1.0:
            raise ValueError("drf_headroom must be >= 1.0")


class TenantAccount:
    """One tenant's credit balance and decayed usage accumulators."""

    __slots__ = (
        "name",
        "weight",
        "credit",
        "last_t",
        "used_work",
        "used_count",
        "active",
        "accepted",
        "shed",
    )

    def __init__(self, name: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("tenant weight must be > 0")
        self.name = name
        self.weight = float(weight)
        self.credit = 0.0  # machine-seconds; may go negative while borrowing
        self.last_t: float | None = None
        self.used_work = 0.0  # decayed offered work (accepted or shed)
        self.used_count = 0.0  # decayed offered arrivals (accepted or shed)
        self.active = 0  # jobs currently queued or running
        self.accepted = 0
        self.shed = 0

    def state_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "credit": self.credit,
            "last_t": self.last_t,
            "used_work": self.used_work,
            "used_count": self.used_count,
            "active": self.active,
            "accepted": self.accepted,
            "shed": self.shed,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "TenantAccount":
        acct = cls(state["name"], state["weight"])
        acct.credit = float(state["credit"])
        acct.last_t = state["last_t"]
        acct.used_work = float(state["used_work"])
        acct.used_count = float(state["used_count"])
        acct.active = int(state["active"])
        acct.accepted = int(state["accepted"])
        acct.shed = int(state["shed"])
        return acct


class MultiTenantAdmission(AdmissionController):
    """Tenant-aware admission: global caps + credits + DRF throttling.

    The base class is used as-is for the global estimator and the cap
    predicates; this subclass adds the per-tenant decision path
    (:meth:`decide_tenant`) that the serving layer calls when requests
    carry tenant labels.  The tenant-blind :meth:`decide` remains valid
    and charges everything to the ``"default"`` tenant.
    """

    def __init__(
        self,
        config: AdmissionConfig,
        m: int,
        tenancy: TenancyConfig = TenancyConfig(),
        weights: dict[str, float] | None = None,
    ) -> None:
        super().__init__(config, m)
        self.tenancy = tenancy
        self.tenants: dict[str, TenantAccount] = {}
        for name, weight in (weights or {}).items():
            self.tenants[name] = TenantAccount(name, weight)

    # -- tenant registry ---------------------------------------------------

    def ensure_tenant(self, name: str, weight: float = 1.0) -> TenantAccount:
        """Return the account for ``name``, creating it on first sight."""
        acct = self.tenants.get(name)
        if acct is None:
            acct = TenantAccount(name, weight)
            self.tenants[name] = acct
        return acct

    def _total_weight(self) -> float:
        return sum(a.weight for a in self.tenants.values()) or 1.0

    def entitlement(self, name: str) -> float:
        """Tenant's fair capacity share in (0, 1]: weight / total weight."""
        acct = self.tenants.get(name)
        if acct is None:
            return 1.0
        return acct.weight / self._total_weight()

    # -- credit accounting and usage decay ---------------------------------

    def _credit_rate_of(self, acct: TenantAccount) -> float:
        """Accrual rate in machine-seconds per sim-time unit.

        Re-derived from the *current* tenant set, so a tenant's slice
        shrinks as new tenants register — exactly like a fair-share
        allocator re-dividing the machine.
        """
        assert self.tenancy.credit_rate is not None
        return self.tenancy.credit_rate * self.m * self.entitlement(acct.name)

    def _advance(self, acct: TenantAccount, t: float) -> None:
        """Move ``acct`` to time ``t``: accrue credit, decay usage, once.

        Credit accrual and usage decay share one clock (``last_t``), so
        they must advance together — separate clocks would let whichever
        runs first steal the other's elapsed interval.
        """
        if acct.last_t is None:
            acct.last_t = float(t)
            return
        dt = t - acct.last_t
        if dt <= 0:
            return
        if self.tenancy.credit_rate is not None:
            rate = self._credit_rate_of(acct)
            acct.credit = min(
                acct.credit + rate * dt, self.tenancy.credit_burst * rate
            )
        d = math.exp(-self._alpha * dt)
        acct.used_work *= d
        acct.used_count *= d
        acct.last_t = float(t)

    def credit_balance(self, name: str, t: float) -> float:
        """Current balance (after accrual to ``t``) in machine-seconds."""
        acct = self.ensure_tenant(name)
        self._advance(acct, t)
        return acct.credit

    def _has_credit(self, acct: TenantAccount, t: float, work: float) -> bool:
        if self.tenancy.credit_rate is None:
            return True
        self._advance(acct, t)
        rate = self._credit_rate_of(acct)
        return acct.credit - work >= -self.tenancy.credit_borrow * rate

    # -- dominant shares ---------------------------------------------------

    def dominant_share(self, name: str, t: float) -> float:
        """The tenant's largest share of any tracked resource, in [0, 1].

        Shares are against the *total* decayed usage across tenants (an
        idle fleet has no dominant tenant), which is the demand-normalized
        form of DRF: with one tenant offering 10× the others, its work
        share tends to 10/12 while each cold tenant's stays near 1/12.
        """
        acct = self.tenants.get(name)
        if acct is None:
            return 0.0
        total_work = 0.0
        total_count = 0.0
        for other in self.tenants.values():
            self._advance(other, t)
            total_work += other.used_work
            total_count += other.used_count
        shares = []
        if total_work > 0:
            shares.append(acct.used_work / total_work)
        if total_count > 0:
            shares.append(acct.used_count / total_count)
        return max(shares) if shares else 0.0

    def over_entitlement(self, name: str, t: float) -> bool:
        """Is the tenant's dominant share past headroom × entitlement?"""
        return self.dominant_share(name, t) > (
            self.tenancy.drf_headroom * self.entitlement(name)
        )

    def _any_over_entitlement(self, t: float) -> bool:
        """Is the current congestion attributable to some dominant tenant?

        False for a lone tenant (its share is at most 1.0 < headroom)
        and for K equally-loaded tenants (each at ~1/K < headroom/K) —
        the cases where a tripped global cap must still shed, because
        there is no under-entitlement tenant to protect.
        """
        return any(self.over_entitlement(name, t) for name in self.tenants)

    # -- decisions ---------------------------------------------------------

    def decide_tenant(
        self,
        t: float,
        tenant: str,
        work: float,
        active: int,
        backlog_work: float,
    ) -> AdmissionDecision:
        """Accept or shed one offered job from ``tenant``.

        Order of checks: the hard queue cap binds everyone; then the
        tenant's credit; then the soft global caps (backlog, load).  A
        tripped soft cap sheds the offering tenant if it is over its DRF
        entitlement (``shed_dominant``); if it is under but some *other*
        tenant is dominant, it is admitted through the congestion; if
        **no** tenant is over entitlement the cap binds as in the base
        class (``shed_backlog`` / ``shed_overload``), so caps stay
        effective under single-tenant or uniform overload.  Every offer
        (accepted or shed) is charged to the tenant's decayed demand;
        accepted jobs additionally spend credit and take a queue slot —
        callers must not also call :meth:`on_accept`.
        """
        acct = self.ensure_tenant(tenant)
        decision = self._decide_offer(acct, t, tenant, work, active, backlog_work)
        # demand is charged on every offer — accepted or shed, so a
        # throttled hot tenant stays visibly dominant — but *after* the
        # decision, so tenants are judged on the same prior history
        # rather than self-bumped by their own in-flight offer
        self._advance(acct, t)
        acct.used_work += float(work)
        acct.used_count += 1.0
        if decision.accepted:
            self._charge(acct, t, work)
        else:
            acct.shed += 1
        return decision

    def _decide_offer(
        self,
        acct: TenantAccount,
        t: float,
        tenant: str,
        work: float,
        active: int,
        backlog_work: float,
    ) -> AdmissionDecision:
        if self.queue_full(active):
            return AdmissionDecision.SHED_QUEUE_FULL
        if not self._has_credit(acct, t, work):
            return AdmissionDecision.SHED_NO_CREDIT
        backlogged = self.backlog_exceeded(work, backlog_work)
        if backlogged or self.overloaded(t):
            if self.over_entitlement(tenant, t):
                return AdmissionDecision.SHED_DOMINANT
            if not self._any_over_entitlement(t):
                return (
                    AdmissionDecision.SHED_BACKLOG
                    if backlogged
                    else AdmissionDecision.SHED_OVERLOAD
                )
        return AdmissionDecision.ACCEPT

    def decide(
        self, t: float, work: float, active: int, backlog_work: float
    ) -> AdmissionDecision:
        """Tenant-blind path: everything is the ``"default"`` tenant."""
        return self.decide_tenant(t, DEFAULT_TENANT, work, active, backlog_work)

    def _charge(self, acct: TenantAccount, t: float, work: float) -> None:
        """Accept-side accounting (demand was already charged on offer)."""
        self._advance(acct, t)
        if self.tenancy.credit_rate is not None:
            acct.credit -= float(work)
        acct.active += 1
        acct.accepted += 1

    def on_complete(self, tenant: str | None) -> None:
        """Record one job completion (releases the tenant's queue slot)."""
        if tenant is None:
            return
        acct = self.tenants.get(tenant)
        if acct is not None and acct.active > 0:
            acct.active -= 1

    # -- introspection -----------------------------------------------------

    def tenant_stats(self, t: float) -> dict[str, dict]:
        """Per-tenant snapshot: counters, credit, shares, entitlement."""
        out: dict[str, dict] = {}
        for name in sorted(self.tenants):
            acct = self.tenants[name]
            row = {
                "weight": acct.weight,
                "entitlement": self.entitlement(name),
                "accepted": acct.accepted,
                "shed": acct.shed,
                "active": acct.active,
                "dominant_share": self.dominant_share(name, t),
            }
            if self.tenancy.credit_rate is not None:
                row["credit"] = self.credit_balance(name, t)
            out[name] = row
        return out

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["kind"] = "multi_tenant"
        state["tenancy"] = {
            "credit_rate": self.tenancy.credit_rate,
            "credit_burst": self.tenancy.credit_burst,
            "credit_borrow": self.tenancy.credit_borrow,
            "drf_headroom": self.tenancy.drf_headroom,
        }
        state["tenants"] = [
            self.tenants[name].state_dict() for name in sorted(self.tenants)
        ]
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "MultiTenantAdmission":
        ctrl = cls(
            AdmissionConfig(**state["config"]),
            state["m"],
            tenancy=TenancyConfig(**state["tenancy"]),
        )
        ctrl._last_t = state["last_t"]
        ctrl._count = state["count"]
        ctrl._work_sum = state["work_sum"]
        for tenant_state in state["tenants"]:
            acct = TenantAccount.from_state_dict(tenant_state)
            ctrl.tenants[acct.name] = acct
        return ctrl
