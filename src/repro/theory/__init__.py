"""Theory toolkit: lower bounds, potential functions, preemption budgets."""

from repro.theory.bounds import (
    empirical_competitive_ratio,
    flow_lower_bound,
    job_lower_bounds,
    srpt_opt_proxy,
)
from repro.theory.competitive import SpeedFrontier, find_required_speed, speed_sweep
from repro.theory.exact_opt import (
    exact_optimal_mean_flow,
    exact_optimal_total_flow,
    exhaustive_ratio,
)
from repro.theory.lemma48 import Lemma48Tracker, WindowStats
from repro.theory.potential import (
    PotentialSnapshot,
    flow_potential,
    job_steal_potential_log3,
    node_weights,
    snapshot_runtime,
    steal_potential_log3,
)
from repro.theory.preemptions import PreemptionBudget, check_theorem_1_2

__all__ = [
    "exact_optimal_mean_flow",
    "exact_optimal_total_flow",
    "exhaustive_ratio",
    "SpeedFrontier",
    "find_required_speed",
    "speed_sweep",
    "Lemma48Tracker",
    "WindowStats",
    "empirical_competitive_ratio",
    "flow_lower_bound",
    "job_lower_bounds",
    "srpt_opt_proxy",
    "PotentialSnapshot",
    "flow_potential",
    "job_steal_potential_log3",
    "node_weights",
    "snapshot_runtime",
    "steal_potential_log3",
    "PreemptionBudget",
    "check_theorem_1_2",
]
