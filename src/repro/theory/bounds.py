"""Lower bounds and optimal-cost proxies for flow-time experiments.

Two reference points calibrate "how far from optimal" a scheduler is:

* the **Observation 1** bound (Sec. II): any unit-speed schedule needs at
  least ``max(W_i / m', C_i)`` time for job ``J_i`` (``m'`` being the
  processors it can use), so total flow is at least the sum of these;
* the **SRPT proxy**: for fully parallel jobs SRPT is optimal for average
  flow (single-machine SRPT optimality carries over — Sec. V-A), and for
  sequential jobs it is the strongest practical stand-in for OPT, so the
  paper's own comparisons use it as the near-optimal baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies.srpt import SRPT
from repro.workloads.traces import Trace

__all__ = [
    "job_lower_bounds",
    "flow_lower_bound",
    "srpt_opt_proxy",
    "empirical_competitive_ratio",
]


def job_lower_bounds(trace: Trace, m: int) -> np.ndarray:
    """Per-job Observation-1 lower bounds on flow time."""
    return np.array([spec.lower_bound(m) for spec in trace.jobs], dtype=float)


def flow_lower_bound(trace: Trace, m: int) -> float:
    """Lower bound on the *average* flow time of any unit-speed schedule.

    Sums per-job execution-time bounds; ignores queueing, so it is loose
    at high load but valid at every load.
    """
    n = len(trace)
    if n == 0:
        return 0.0
    return float(job_lower_bounds(trace, m).mean())


def srpt_opt_proxy(trace: Trace, m: int, seed: int = 0) -> ScheduleResult:
    """Simulate SRPT on the trace as the near-optimal reference point."""
    return simulate(trace, m, SRPT(), seed=seed, config=FlowSimConfig())


def empirical_competitive_ratio(
    result: ScheduleResult, trace: Trace, m: int, seed: int = 0
) -> dict[str, float]:
    """Ratios of ``result`` against both reference points.

    ``vs_lower_bound`` can exceed the true competitive ratio arbitrarily
    at high load (the bound ignores queueing); ``vs_srpt`` is the number
    the paper quotes (e.g. "at most a factor of 3.25 compared to SRPT").
    """
    lb = flow_lower_bound(trace, m)
    srpt = srpt_opt_proxy(trace, m, seed=seed).mean_flow
    return {
        "vs_lower_bound": result.mean_flow / lb if lb > 0 else float("inf"),
        "vs_srpt": result.mean_flow / srpt if srpt > 0 else float("inf"),
    }
