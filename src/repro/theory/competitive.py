"""Empirical speed-competitiveness frontiers (Theorem 1.1's shape).

Theorem 1.1 guarantees DREP is O(1/eps^3)-competitive *given (4+eps)x
speed*.  Resource-augmentation results are usually loose in practice;
this module measures the actual frontier: for a given instance and
policy, the minimal speed ``s`` such that the policy at speed ``s`` has
total flow within a factor ``c`` of the unit-speed SRPT proxy.

Used by bench X9 to show DREP's empirical speed requirement sits far
below the theorem's 4+eps — evidence that the analysis, not the
algorithm, is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies.base import Policy
from repro.flowsim.policies.srpt import SRPT
from repro.workloads.traces import Trace

__all__ = ["SpeedFrontier", "find_required_speed", "speed_sweep"]


@dataclass(frozen=True)
class SpeedFrontier:
    """Outcome of a frontier search."""

    policy: str
    target_ratio: float
    required_speed: float
    baseline_flow: float
    iterations: int


def _flow_at_speed(
    trace: Trace, m: int, policy_factory: Callable[[], Policy], speed: float, seed: int
) -> ScheduleResult:
    return simulate(
        trace, m, policy_factory(), seed=seed, config=FlowSimConfig(speed=speed)
    )


def find_required_speed(
    trace: Trace,
    m: int,
    policy_factory: Callable[[], Policy],
    target_ratio: float = 1.0,
    seed: int = 0,
    speed_hi: float = 8.0,
    tol: float = 0.05,
) -> SpeedFrontier:
    """Bisect the minimal speed where mean flow <= target * SRPT(speed 1).

    Mean flow is monotone non-increasing in speed for every policy here
    (more capacity never hurts a work-conserving or DREP schedule on a
    fixed random seed in expectation; we bisect on the measured values,
    which are monotone for these policies on a fixed seed).
    """
    if target_ratio < 1.0:
        raise ValueError("target_ratio must be >= 1 (SRPT is the floor)")
    if tol <= 0:
        raise ValueError("tol must be > 0")
    baseline = simulate(trace, m, SRPT(), seed=seed).mean_flow
    target = baseline * target_ratio

    lo, hi = 1.0, speed_hi
    flow_lo = _flow_at_speed(trace, m, policy_factory, lo, seed).mean_flow
    iterations = 1
    if flow_lo <= target:
        return SpeedFrontier(
            policy=policy_factory().name,
            target_ratio=target_ratio,
            required_speed=1.0,
            baseline_flow=baseline,
            iterations=iterations,
        )
    flow_hi = _flow_at_speed(trace, m, policy_factory, hi, seed).mean_flow
    iterations += 1
    if flow_hi > target:
        raise ValueError(
            f"speed_hi={speed_hi} insufficient: flow {flow_hi:.4g} > target {target:.4g}"
        )
    while hi - lo > tol:
        mid = (lo + hi) / 2
        flow_mid = _flow_at_speed(trace, m, policy_factory, mid, seed).mean_flow
        iterations += 1
        if flow_mid <= target:
            hi = mid
        else:
            lo = mid
    return SpeedFrontier(
        policy=policy_factory().name,
        target_ratio=target_ratio,
        required_speed=hi,
        baseline_flow=baseline,
        iterations=iterations,
    )


def speed_sweep(
    trace: Trace,
    m: int,
    policy_factory: Callable[[], Policy],
    speeds: list[float],
    seed: int = 0,
) -> list[dict]:
    """Mean flow (and its ratio to unit-speed SRPT) at each speed."""
    baseline = simulate(trace, m, SRPT(), seed=seed).mean_flow
    rows = []
    for s in speeds:
        result = _flow_at_speed(trace, m, policy_factory, s, seed)
        rows.append(
            {
                "policy": result.scheduler,
                "speed": s,
                "mean_flow": result.mean_flow,
                "vs_unit_srpt": result.mean_flow / baseline if baseline else float("inf"),
            }
        )
    return rows
