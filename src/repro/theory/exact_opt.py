"""Exact optimal mean flow time for small instances (brute-force DP).

The paper compares against SRPT as a near-optimal proxy; for *small*
instances we can do better and compute the true preemptive optimum, so
the library can report honest competitive ratios instead of
proxy-relative ones.

Model: sequential jobs, integer release times and works, unit time
steps; at each step the scheduler picks at most ``m`` distinct released,
unfinished jobs to serve one unit each (preemption/migration free).
State-space DP over (time, remaining-work vector) with memoization.
Exponential in principle — intended for n <= ~8 with small works, which
is exactly the regime where exhaustive validation matters.

For m = 1 the optimum is SRPT (classic), giving the DP a free
correctness oracle; for m >= 2 preemptive mean flow is not SRPT in
general, and this module is the ground truth our tests use.
"""

from __future__ import annotations

import itertools
from functools import lru_cache


from repro.workloads.traces import Trace

__all__ = ["exact_optimal_total_flow", "exact_optimal_mean_flow"]

_MAX_STATES = 2_000_000


def exact_optimal_total_flow(trace: Trace, m: int) -> float:
    """Minimal total flow time of any (integer-step) preemptive schedule.

    Requires integer releases and works, sequential jobs, and a modest
    instance (guarded); raises ``ValueError`` otherwise.
    """
    n = len(trace)
    if n == 0:
        return 0.0
    if m < 1:
        raise ValueError("m must be >= 1")
    releases = []
    works = []
    for spec in trace.jobs:
        if spec.mode.value != "sequential":
            raise ValueError("exact OPT supports sequential jobs only")
        r, w = spec.release, spec.work
        if r != int(r) or w != int(w):
            raise ValueError("exact OPT needs integer releases and works")
        releases.append(int(r))
        works.append(int(w))
    total_work = sum(works)
    if n > 10 or total_work > 60:
        raise ValueError(
            f"instance too large for exact OPT (n={n}, work={total_work})"
        )
    releases_t = tuple(releases)
    horizon = max(releases) + total_work + 1

    # rough state guard: product of (w_i + 1)
    states = 1
    for w in works:
        states *= w + 1
        if states > _MAX_STATES:
            raise ValueError("state space too large for exact OPT")

    @lru_cache(maxsize=None)
    def best(t: int, remaining: tuple[int, ...]) -> int:
        # cost-to-go: sum over future steps of the number of jobs that are
        # released and unfinished during each step (integrating |A(t)|
        # gives total flow up to the release-time constant)
        if all(w == 0 for w in remaining):
            return 0
        if t > horizon:
            raise RuntimeError("horizon overrun — DP bug")
        available = [
            i
            for i in range(n)
            if remaining[i] > 0 and releases_t[i] <= t
        ]
        active_now = len(available)
        if not available:
            # idle until the next release
            nxt = min(releases_t[i] for i in range(n) if remaining[i] > 0)
            return best(max(nxt, t + 1), remaining)
        k = min(m, len(available))
        best_val = None
        # serve any subset of size k (serving fewer is never better here:
        # work conservation is optimal for total flow with equal speeds)
        for subset in itertools.combinations(available, k):
            rem = list(remaining)
            for i in subset:
                rem[i] -= 1
            val = best(t + 1, tuple(rem))
            if best_val is None or val < best_val:
                best_val = val
        return active_now + best_val

    t0 = min(releases)
    total = best(t0, tuple(works))
    best.cache_clear()
    return float(total)


def exact_optimal_mean_flow(trace: Trace, m: int) -> float:
    """``exact_optimal_total_flow / n``."""
    n = len(trace)
    return exact_optimal_total_flow(trace, m) / n if n else 0.0


def exhaustive_ratio(result_mean_flow: float, trace: Trace, m: int) -> float:
    """Competitive ratio of a measured mean flow against the true OPT."""
    opt = exact_optimal_mean_flow(trace, m)
    if opt <= 0:
        return float("inf")
    return result_mean_flow / opt


__all__.append("exhaustive_ratio")


