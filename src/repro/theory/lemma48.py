"""Statistical verification of Lemma 4.8's second claim.

Lemma 4.8 (adapted from Arora–Blumofe–Plaxton): if a job has ``d``
deques and there are ``d`` steal attempts between ``t1`` and ``t2``, then
``Pr[psi(t1) - psi(t2) >= psi(t1)/4] > 1/4`` — equivalently each such
window knocks at least ``log3(4/3)`` off ``log3 psi`` with probability
at least 1/4, giving the expected drop of ~1/16 per window the paper's
critical-path term consumes.

:class:`Lemma48Tracker` rides the runtime observer hook: for every
active job it counts that job's steal attempts, closes a window whenever
the count reaches the job's current deque count, and records whether the
window's psi dropped by >= 1/4 (in log3 terms, by >= log3(4/3)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.theory.potential import job_steal_potential_log3

__all__ = ["Lemma48Tracker", "WindowStats"]

_LOG3_4_3 = math.log(4.0 / 3.0, 3.0)


@dataclass
class WindowStats:
    """Aggregate over all closed steal-attempt windows."""

    windows: int = 0
    quarter_drops: int = 0  # windows where psi fell by >= 1/4
    total_log3_drop: float = 0.0

    @property
    def quarter_drop_fraction(self) -> float:
        return self.quarter_drops / self.windows if self.windows else 0.0

    @property
    def mean_log3_drop(self) -> float:
        return self.total_log3_drop / self.windows if self.windows else 0.0


@dataclass
class _JobWindow:
    psi_start: float
    steals_seen: int = 0


@dataclass
class Lemma48Tracker:
    """Observer: pass to ``WsRuntime.run(observer=tracker)``.

    Measures per-job windows of ``d_i`` steal attempts (re-reading
    ``d_i`` at window open, as the lemma states) and the psi drop across
    each window.  Steal attempts are attributed via the runtime's global
    counter delta combined with per-job worker counts — the runtime does
    not tag attempts per job, so windows use each job's *share* of
    attempts: a steal by a worker assigned to job i counts toward job i.
    That attribution is exact for affinity schedulers (DREP, SWF).
    """

    stats: WindowStats = field(default_factory=WindowStats)
    _open: dict[int, _JobWindow] = field(default_factory=dict)
    _last_steals: dict[int, int] = field(default_factory=dict)
    _prev_total: dict[int, int] = field(default_factory=dict)

    def __call__(self, rt) -> None:
        # per-worker attribution: a worker out of work this step will
        # attempt a steal within its job; approximate the count by the
        # number of its job's workers with nothing to do
        for job in rt.active:
            d = len(job.deques)
            if d == 0:
                continue
            window = self._open.get(job.job_id)
            if window is None:
                window = _JobWindow(psi_start=job_steal_potential_log3(job, rt))
                self._open[job.job_id] = window
            pending_thieves = sum(
                1
                for w in rt.workers
                if w.job is job and w.out_of_work and w.flag_target is None
            )
            window.steals_seen += pending_thieves
            if window.steals_seen >= d:
                psi_now = job_steal_potential_log3(job, rt)
                drop = window.psi_start - psi_now
                self.stats.windows += 1
                self.stats.total_log3_drop += max(drop, 0.0)
                if drop >= _LOG3_4_3 - 1e-12:
                    self.stats.quarter_drops += 1
                self._open[job.job_id] = _JobWindow(psi_start=psi_now)
