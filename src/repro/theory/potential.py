"""The potential functions of the paper's analysis (Sec. IV-B).

Instrumentation — not needed to *run* DREP, but lets tests check the
structural lemmas the proof of Theorem 1.1 rests on:

* **steal potential** ψ_i(t): a ready node ``u`` on a deque contributes
  ``3^{2 w(u)}`` and an assigned (executing) node ``3^{2 w(u) - 1}``,
  where ``w(u) = C_i - d(u)`` and ``d(u)`` is the depth of ``u`` (the
  heaviest path ending at ``u``).  Lemma 4.8: ψ never increases during
  execution, and ``d`` steal attempts shrink it by 1/4 with probability
  > 1/4.

* **flow potential** Φ_i(t) =
  ``(10/ε) (rank_i/m) (Z_i + d_i^m) + (320/ε²) log₃ ψ_i``
  combining the work term (lag Z_i), the mug term (muggable deque count
  d_i^m) and the critical-path term (log of the steal potential).

ψ is astronomically large (3^{2C}), so everything is computed in
log₃-space with a log-sum-exp reduction.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

import numpy as np

from repro.dag.graph import DagJob

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.wsim.runtime import WsRuntime
    from repro.wsim.structures import JobRun

__all__ = [
    "node_weights",
    "steal_potential_log3",
    "job_steal_potential_log3",
    "flow_potential",
    "PotentialSnapshot",
    "snapshot_runtime",
]

_LN3 = np.log(3.0)


def node_weights(dag: DagJob) -> np.ndarray:
    """``w(u) = C - d(u)`` for every node (>= 0, 0 only at sinks)."""
    depths = dag.node_depths()
    return dag.span - depths


def steal_potential_log3(
    dag: DagJob, ready_nodes: np.ndarray, assigned_nodes: np.ndarray
) -> float:
    """log₃ ψ for the given sets of ready (on-deque) and assigned nodes.

    Returns ``-inf`` when both sets are empty (ψ = 0, the completed-job
    case).
    """
    w = node_weights(dag)
    exponents = []
    if len(ready_nodes):
        exponents.append(2.0 * w[np.asarray(ready_nodes, dtype=np.int64)])
    if len(assigned_nodes):
        exponents.append(2.0 * w[np.asarray(assigned_nodes, dtype=np.int64)] - 1.0)
    if not exponents:
        return float("-inf")
    e = np.concatenate(exponents).astype(float)
    # log3-sum-exp, stabilized at the max exponent
    mx = float(e.max())
    return mx + float(np.log(np.exp((e - mx) * _LN3).sum()) / _LN3)


def job_steal_potential_log3(job: "JobRun", runtime: "WsRuntime") -> float:
    """log₃ ψ_i(t) read off the live runtime state."""
    ready = [
        node
        for dq in job.deques
        for (ref_job, node) in dq.nodes
        if ref_job is job
    ]
    # global-mode deques live on workers and may hold this job's nodes
    for worker in runtime.workers:
        if worker.dq is not None and worker.dq not in job.deques:
            ready.extend(
                node for (ref_job, node) in worker.dq.nodes if ref_job is job
            )
    assigned = [
        worker.current[1]
        for worker in runtime.workers
        if worker.current is not None and worker.current[0] is job
    ]
    return steal_potential_log3(
        job.dag,
        np.array(ready, dtype=np.int64),
        np.array(assigned, dtype=np.int64),
    )


def flow_potential(
    rank: int,
    m: int,
    lag: float,
    muggable_deques: int,
    psi_log3: float,
    epsilon: float,
) -> float:
    """Φ_i per the Sec. IV-B formula.

    ``lag`` is Z_i(t) = max(W_i^A(t) - W_i^O(t), 0); ``psi_log3`` is
    log₃ ψ_i(t) (−inf means the critical-path term is absent).
    """
    if not 0 < epsilon <= 0.25:
        raise ValueError("epsilon must be in (0, 1/4]")
    if lag < 0 or muggable_deques < 0 or rank < 0 or m < 1:
        raise ValueError("rank, m, lag, muggable_deques must be non-negative")
    work_mug = (10.0 / epsilon) * (rank / m) * (lag + muggable_deques)
    cp = (320.0 / epsilon**2) * psi_log3 if np.isfinite(psi_log3) else 0.0
    return work_mug + max(cp, 0.0)


@dataclass(frozen=True)
class PotentialSnapshot:
    """Per-job potential readings at one runtime instant."""

    step: int
    job_ids: tuple[int, ...]
    psi_log3: tuple[float, ...]
    muggable: tuple[int, ...]

    def psi_of(self, job_id: int) -> float:
        return self.psi_log3[self.job_ids.index(job_id)]


def snapshot_runtime(runtime: "WsRuntime") -> PotentialSnapshot:
    """Record log₃ ψ and muggable-deque counts for all active jobs."""
    jobs = list(runtime.active)
    return PotentialSnapshot(
        step=runtime.step,
        job_ids=tuple(j.job_id for j in jobs),
        psi_log3=tuple(job_steal_potential_log3(j, runtime) for j in jobs),
        muggable=tuple(j.muggable_count() for j in jobs),
    )
