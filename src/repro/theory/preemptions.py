"""Preemption accounting for Theorem 1.2.

The theorem: DREP switches processors between unfinished jobs at most
O(mn) times over the whole schedule, and for sequential jobs the total
*expected* number of preemptions is O(n) — because a preemption can only
happen when a job arrives, and on an arrival either a free processor
absorbs the job (no preemption) or there are at least m active jobs, in
which case each of the m processors preempts with probability
1/|A(t)| <= 1/m, i.e. one expected preemption per arrival.

These helpers turn a :class:`~repro.core.metrics.ScheduleResult` into a
budget check that benches and tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ScheduleResult

__all__ = ["PreemptionBudget", "check_theorem_1_2"]


@dataclass(frozen=True)
class PreemptionBudget:
    """Observed counts vs. the Theorem 1.2 budgets."""

    n_jobs: int
    m: int
    observed_preemptions: int
    observed_switches: int
    #: hard bound on switches for any DREP run: one switch per processor
    #: per event, events being n arrivals + n completions
    switch_bound: int
    #: expected-preemption budget for the sequential variant: one per arrival
    expected_sequential: int

    @property
    def within_switch_bound(self) -> bool:
        return self.observed_switches <= self.switch_bound

    def sequential_ratio(self) -> float:
        """Observed preemptions per job; ~<= 1 in expectation (sequential)."""
        return self.observed_preemptions / self.n_jobs if self.n_jobs else 0.0

    def summary(self) -> dict:
        return {
            "n_jobs": self.n_jobs,
            "m": self.m,
            "preemptions": self.observed_preemptions,
            "switches": self.observed_switches,
            "switch_bound_2mn": self.switch_bound,
            "preemptions_per_job": self.sequential_ratio(),
            "within_switch_bound": self.within_switch_bound,
        }


def check_theorem_1_2(result: ScheduleResult, n_jobs: int) -> PreemptionBudget:
    """Build the budget record for a DREP run result.

    Both simulators record the total re-assignment count under
    ``result.extra["switches"]``.
    """
    switches = int(result.extra.get("switches", result.migrations))
    return PreemptionBudget(
        n_jobs=n_jobs,
        m=result.m,
        observed_preemptions=result.preemptions,
        observed_switches=switches,
        switch_bound=2 * result.m * n_jobs,
        expected_sequential=n_jobs,
    )
