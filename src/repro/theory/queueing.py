"""Analytic queueing formulas — an independent oracle for the simulators.

The flow-level simulator's policies coincide with classical queueing
disciplines in special cases where closed forms exist:

* FIFO on one processor with Poisson arrivals is **M/G/1-FCFS**:
  Pollaczek–Khinchine gives the exact mean sojourn (= flow) time;
* RR (idealized processor sharing) on one processor is **M/G/1-PS**:
  mean sojourn ``E[S] / (1 - rho)``, famously *insensitive* to the job
  size distribution beyond its mean;
* SRPT on one processor has the (heavier) exact Schrage–Miller integral
  form; we provide the M/M/1 specialization for tests.

These let the test suite validate simulator output against theory rather
than just against itself — a reproduction-quality cross-check.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "mm1_fcfs_mean_flow",
    "mg1_fcfs_mean_flow",
    "mg1_ps_mean_flow",
    "mm1_srpt_mean_flow",
    "erlang_c",
    "mmm_fcfs_mean_flow",
]


def _check_load(rho: float) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"utilization must be in [0, 1), got {rho}")


def mm1_fcfs_mean_flow(arrival_rate: float, mean_service: float) -> float:
    """M/M/1 FCFS mean sojourn time ``1 / (mu - lambda)``."""
    if arrival_rate <= 0 or mean_service <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate * mean_service
    _check_load(rho)
    return mean_service / (1.0 - rho)


def mg1_fcfs_mean_flow(
    arrival_rate: float, mean_service: float, second_moment: float
) -> float:
    """M/G/1 FCFS mean sojourn via Pollaczek–Khinchine.

    ``E[T] = E[S] + lambda E[S^2] / (2 (1 - rho))``.
    """
    if second_moment < mean_service**2:
        raise ValueError("second moment below squared mean")
    rho = arrival_rate * mean_service
    _check_load(rho)
    return mean_service + arrival_rate * second_moment / (2.0 * (1.0 - rho))


def mg1_ps_mean_flow(arrival_rate: float, mean_service: float) -> float:
    """M/G/1 processor-sharing mean sojourn ``E[S] / (1 - rho)``.

    Insensitive to the service distribution beyond its mean — the
    property that makes idealized RR's mean flow identical on our Bing
    and Finance workloads at equal load.
    """
    rho = arrival_rate * mean_service
    _check_load(rho)
    return mean_service / (1.0 - rho)


def mm1_srpt_mean_flow(
    arrival_rate: float, mean_service: float, grid: int = 4000
) -> float:
    """M/M/1 SRPT mean sojourn, by numeric quadrature of the
    Schrage–Miller formulas.

    For service d.f. F with density f, rate lambda, and
    ``rho(x) = lambda * int_0^x t f(t) dt``:

      E[T(x)] = int_0^x dt / (1 - rho(t))                      (residence)
               + lambda * int_0^x t^2 f(t) dt + lambda x^2 (1-F(x))
                 over  2 (1 - rho(x))^2                        (waiting)

    and E[T] = int f(x) E[T(x)] dx.  Exponential service specialization.
    """
    if grid < 100:
        raise ValueError("grid too coarse")
    mu = 1.0 / mean_service
    rho = arrival_rate / mu
    _check_load(rho)
    # integrate out to where the exponential tail is negligible
    x_hi = mean_service * 40.0
    xs = np.linspace(0.0, x_hi, grid)
    dx = xs[1] - xs[0]
    f = mu * np.exp(-mu * xs)
    F = 1.0 - np.exp(-mu * xs)
    # rho(x) = lambda * int_0^x t f(t) dt
    t_f = xs * f
    rho_x = arrival_rate * np.cumsum(t_f) * dx
    rho_x = np.minimum(rho_x, rho)  # guard quadrature overshoot
    residence = np.cumsum(1.0 / (1.0 - rho_x)) * dx
    m2_partial = np.cumsum(xs**2 * f) * dx
    waiting = (
        arrival_rate
        * (m2_partial + xs**2 * (1.0 - F))
        / (2.0 * (1.0 - rho_x) ** 2)
    )
    t_of_x = residence + waiting
    return float(np.sum(f * t_of_x) * dx)


def erlang_c(m: int, offered: float) -> float:
    """Erlang-C: probability an M/M/m arrival must queue.

    ``offered = lambda / mu`` (in erlangs); requires ``offered < m``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if not 0 <= offered < m:
        raise ValueError("offered load must be in [0, m)")
    if offered == 0:
        return 0.0
    # stable iterative computation of the Erlang-B recursion, then convert
    b = 1.0
    for k in range(1, m + 1):
        b = offered * b / (k + offered * b)
    rho = offered / m
    return b / (1.0 - rho + rho * b)


def mmm_fcfs_mean_flow(arrival_rate: float, mean_service: float, m: int) -> float:
    """M/M/m FCFS mean sojourn: ``E[S] + C(m, a) / (m/E[S] - lambda)``."""
    offered = arrival_rate * mean_service
    if offered >= m:
        raise ValueError("unstable system")
    c = erlang_c(m, offered)
    return mean_service + c / (m / mean_service - arrival_rate)


def exp_second_moment(mean_service: float) -> float:
    """Second moment of an exponential: ``2 E[S]^2`` (test convenience)."""
    return 2.0 * mean_service**2


def lognormal_second_moment(mean_service: float, sigma: float) -> float:
    """Second moment of a log-normal with the given mean and log-sigma."""
    # E[X] = exp(mu + sigma^2/2); E[X^2] = exp(2 mu + 2 sigma^2)
    mu = math.log(mean_service) - sigma**2 / 2.0
    return math.exp(2.0 * mu + 2.0 * sigma**2)


__all__ += ["exp_second_moment", "lognormal_second_moment"]
