"""Workload substrate: work distributions, arrival processes, job traces."""

from repro.workloads.arrivals import (
    LOAD_LEVELS,
    poisson_arrivals,
    qps_for_load,
    work_scale_for_m,
)
from repro.workloads.distributions import (
    BoundedParetoWork,
    ExponentialWork,
    FixedWork,
    LogNormalWork,
    MixtureWork,
    UniformWork,
    WorkDistribution,
    bing_distribution,
    distribution_by_name,
    finance_distribution,
)
from repro.workloads.stats import WorkStats, distribution_stats, trace_stats
from repro.workloads.traces import Trace, attach_dags, dag_for_work, generate_trace
from repro.workloads.transforms import (
    jitter_releases,
    merge_traces,
    repeat_trace,
    slice_trace,
)

__all__ = [
    "LOAD_LEVELS",
    "poisson_arrivals",
    "qps_for_load",
    "work_scale_for_m",
    "WorkDistribution",
    "LogNormalWork",
    "BoundedParetoWork",
    "ExponentialWork",
    "UniformWork",
    "FixedWork",
    "MixtureWork",
    "bing_distribution",
    "finance_distribution",
    "distribution_by_name",
    "Trace",
    "generate_trace",
    "attach_dags",
    "dag_for_work",
    "WorkStats",
    "distribution_stats",
    "trace_stats",
    "merge_traces",
    "slice_trace",
    "repeat_trace",
    "jitter_releases",
]
