"""Arrival processes and load calibration.

The paper generates inter-arrival times "using a Poisson process with a
mean equal to 1/QPS" and picks QPS to hit target machine utilizations of
roughly 50% (low), 60% (medium) and 70% (high) (Sec. V-A).  With unit-mean
work distributions the calibration is exact in expectation:

    utilization = arrival_rate * E[work] / m    =>    QPS = load * m / E[work].

The paper also "scale[s] the amount of work of each job according to the
number of processors" when sweeping m so that utilization stays constant;
:func:`work_scale_for_m` implements that convention (work scaled by m, QPS
held fixed).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PoissonProcess",
    "MmppProcess",
    "poisson_arrivals",
    "mmpp_arrivals",
    "qps_for_load",
    "work_scale_for_m",
    "LOAD_LEVELS",
]

#: The paper's three load levels (Sec. V-A): low ~50%, medium ~60%, high ~70%.
LOAD_LEVELS: dict[str, float] = {"low": 0.5, "medium": 0.6, "high": 0.7}


def poisson_arrivals(
    rng: np.random.Generator, n_jobs: int, rate: float, start: float = 0.0
) -> np.ndarray:
    """Release times of ``n_jobs`` Poisson arrivals at the given rate.

    Returns a sorted float array; the first job arrives one inter-arrival
    after ``start``.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    if not rate > 0:
        raise ValueError("rate must be > 0")
    gaps = rng.exponential(1.0 / rate, size=n_jobs)
    return start + np.cumsum(gaps)


class PoissonProcess:
    """Resumable Poisson arrival generator for chunked (streaming) draws.

    :meth:`draw` advances generator state, so consecutive chunked draws
    continue the same arrival sequence.  With ``start == 0`` (the
    :func:`repro.workloads.traces.generate_trace` path) the concatenation
    of chunked draws is **bit-for-bit identical** to one
    :func:`poisson_arrivals` call for the whole trace: ``np.cumsum`` is
    strictly sequential, and the carry is folded into the first gap of
    each chunk — the same float op the unchunked cumsum performs.
    """

    def __init__(
        self, rng: np.random.Generator, rate: float, start: float = 0.0
    ) -> None:
        if not rate > 0:
            raise ValueError("rate must be > 0")
        self._rng = rng
        self._scale = 1.0 / rate
        self._t = float(start)

    def draw(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        gaps = self._rng.exponential(self._scale, size=n)
        if n == 0:
            return gaps
        gaps[0] += self._t
        out = np.cumsum(gaps)
        self._t = float(out[-1])
        return out


class MmppProcess:
    """Resumable two-state Markov-modulated Poisson process.

    Stateful core of :func:`mmpp_arrivals`: the per-arrival loop is
    purely sequential, so chunked :meth:`draw` calls are trivially
    bit-for-bit with one whole-trace call.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate: float,
        burstiness: float = 4.0,
        switch_rate: float = 0.05,
        start: float = 0.0,
    ) -> None:
        if not rate > 0:
            raise ValueError("rate must be > 0")
        if burstiness < 1:
            raise ValueError("burstiness must be >= 1")
        if not switch_rate > 0:
            raise ValueError("switch_rate must be > 0")
        # equal state occupancy: calm + burst rates average to `rate`
        self._calm = 2.0 * rate / (1.0 + burstiness)
        self._burst = self._calm * burstiness
        self._switch_scale = 1.0 / switch_rate
        self._rng = rng
        self._t = float(start)
        self._in_burst = bool(rng.random() < 0.5)
        self._state_ends = self._t + rng.exponential(self._switch_scale)

    def draw(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = self._rng
        out = np.empty(n, dtype=float)
        t = self._t
        in_burst = self._in_burst
        state_ends = self._state_ends
        for i in range(n):
            while True:
                lam = self._burst if in_burst else self._calm
                gap = rng.exponential(1.0 / lam)
                if t + gap <= state_ends:
                    t += gap
                    out[i] = t
                    break
                # jump to the state boundary and re-draw (memorylessness)
                t = state_ends
                in_burst = not in_burst
                state_ends = t + rng.exponential(self._switch_scale)
        self._t = t
        self._in_burst = in_burst
        self._state_ends = state_ends
        return out


def mmpp_arrivals(
    rng: np.random.Generator,
    n_jobs: int,
    rate: float,
    burstiness: float = 4.0,
    switch_rate: float = 0.05,
    start: float = 0.0,
) -> np.ndarray:
    """Two-state Markov-modulated Poisson process with mean rate ``rate``.

    Interactive-service traffic is burstier than Poisson (the paper's
    Bing scenario); MMPP(2) is the standard model.  The process
    alternates between a *calm* state and a *burst* state whose rate is
    ``burstiness`` times the calm rate; both states have mean sojourn
    ``1/switch_rate`` and the rates are balanced so the long-run average
    is exactly ``rate``.  ``burstiness == 1`` degenerates to Poisson.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    return MmppProcess(
        rng, rate, burstiness=burstiness, switch_rate=switch_rate, start=start
    ).draw(n_jobs)


def qps_for_load(load: float, m: int, mean_work: float) -> float:
    """Arrival rate achieving expected utilization ``load`` on ``m`` cores.

    ``load`` is a fraction in (0, 1); the returned rate satisfies
    ``rate * mean_work == load * m``.
    """
    if not 0 < load < 1:
        raise ValueError(f"load must be in (0, 1), got {load}")
    if m < 1:
        raise ValueError("m must be >= 1")
    if not mean_work > 0:
        raise ValueError("mean_work must be > 0")
    return load * m / mean_work


def work_scale_for_m(m: int, base_m: int = 1) -> float:
    """Work multiplier keeping utilization constant across an m-sweep.

    The paper's convention: when the processor count grows from ``base_m``
    to ``m`` with QPS unchanged, each job's work grows by ``m / base_m`` so
    ``rate * mean_work / m`` is invariant.
    """
    if m < 1 or base_m < 1:
        raise ValueError("processor counts must be >= 1")
    return m / base_m
