"""Work-size distributions, including synthetic Bing and Finance stand-ins.

The paper draws job work from "two different work distributions from
real-world applications ... the Bing workload and the Finance workload
[20]" (Sec. V-A).  Those traces (Bing web-search service demands and an
option-pricing server from Li et al., PPoPP 2016) are proprietary, so we
substitute synthetic distributions that preserve the property the paper's
analysis leans on: **Bing has some very large jobs** (heavy tail) while
Finance is comparatively well-behaved.  See DESIGN.md Substitution 2.

All distributions are normalized to unit mean, so system load is
``arrival_rate * mean_work / m`` regardless of which distribution is used
and the load-calibration code (:mod:`repro.workloads.arrivals`) stays
distribution-agnostic.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WorkDistribution",
    "LogNormalWork",
    "BoundedParetoWork",
    "ExponentialWork",
    "UniformWork",
    "FixedWork",
    "MixtureWork",
    "bing_distribution",
    "finance_distribution",
    "distribution_by_name",
]


class WorkDistribution(abc.ABC):
    """A positive job-size distribution with known mean."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected work per job."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. work values (strictly positive floats)."""

    def normalized(self) -> "WorkDistribution":
        """This distribution rescaled to unit mean."""
        return ScaledWork(self, 1.0 / self.mean)


@dataclass(frozen=True)
class ScaledWork(WorkDistribution):
    """``base`` multiplied by a positive constant ``factor``."""

    base: WorkDistribution
    factor: float

    def __post_init__(self) -> None:
        if not self.factor > 0:
            raise ValueError("factor must be > 0")

    @property
    def mean(self) -> float:
        return self.base.mean * self.factor

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.base.sample(rng, size) * self.factor


@dataclass(frozen=True)
class LogNormalWork(WorkDistribution):
    """Log-normal work with the given mean and log-space sigma.

    ``sigma`` controls tail weight: the squared coefficient of variation is
    ``exp(sigma^2) - 1``.
    """

    mean_work: float = 1.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if not self.mean_work > 0:
            raise ValueError("mean_work must be > 0")
        if not self.sigma >= 0:
            raise ValueError("sigma must be >= 0")

    @property
    def mean(self) -> float:
        return self.mean_work

    @property
    def mu(self) -> float:
        """Log-space location such that E[X] == mean_work."""
        return math.log(self.mean_work) - self.sigma**2 / 2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)


@dataclass(frozen=True)
class BoundedParetoWork(WorkDistribution):
    """Bounded Pareto on ``[lo, hi]`` with shape ``alpha``.

    The classic heavy-tail model for web-service demands; bounded so that a
    finite trace has finite variance and reproducible means.
    """

    alpha: float = 1.1
    lo: float = 1.0
    hi: float = 1000.0

    def __post_init__(self) -> None:
        if not (self.alpha > 0 and 0 < self.lo < self.hi):
            raise ValueError("require alpha > 0 and 0 < lo < hi")

    @property
    def mean(self) -> float:
        a, lo, hi = self.alpha, self.lo, self.hi
        if math.isclose(a, 1.0):
            return math.log(hi / lo) * lo * hi / (hi - lo)
        num = lo**a * (hi ** (1 - a) - lo ** (1 - a)) * a
        den = (1 - a) * (1 - (lo / hi) ** a)
        return num / den

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # inverse-CDF sampling of the bounded Pareto
        u = rng.random(size)
        a, lo, hi = self.alpha, self.lo, self.hi
        ratio = (lo / hi) ** a
        return lo / (1 - u * (1 - ratio)) ** (1 / a)


@dataclass(frozen=True)
class ExponentialWork(WorkDistribution):
    """Exponential work (M/M/m-style baselines and tests)."""

    mean_work: float = 1.0

    def __post_init__(self) -> None:
        if not self.mean_work > 0:
            raise ValueError("mean_work must be > 0")

    @property
    def mean(self) -> float:
        return self.mean_work

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.mean_work, size=size)


@dataclass(frozen=True)
class UniformWork(WorkDistribution):
    """Uniform work on ``[lo, hi]``."""

    lo: float = 0.5
    hi: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.lo <= self.hi:
            raise ValueError("require 0 < lo <= hi")

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.lo, self.hi, size=size)


@dataclass(frozen=True)
class FixedWork(WorkDistribution):
    """Deterministic work (unit tests and analytic cross-checks)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if not self.value > 0:
            raise ValueError("value must be > 0")

    @property
    def mean(self) -> float:
        return self.value

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value, dtype=float)


class MixtureWork(WorkDistribution):
    """Finite mixture of work distributions."""

    def __init__(
        self, components: list[WorkDistribution], weights: list[float]
    ) -> None:
        if len(components) != len(weights) or not components:
            raise ValueError("components and weights must be non-empty, equal length")
        w = np.asarray(weights, dtype=float)
        if (w <= 0).any():
            raise ValueError("weights must be positive")
        self.components = list(components)
        self.weights = w / w.sum()

    @property
    def mean(self) -> float:
        return float(sum(w * c.mean for w, c in zip(self.weights, self.components)))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choices = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size, dtype=float)
        for i, comp in enumerate(self.components):
            mask = choices == i
            k = int(mask.sum())
            if k:
                out[mask] = comp.sample(rng, k)
        return out


def bing_distribution() -> WorkDistribution:
    """Synthetic stand-in for the Bing search workload (heavy-tailed).

    A 95/5 mixture of a moderate log-normal body and a bounded-Pareto tail
    reaching ~2 decades above the mean, normalized to unit mean.  The 5%
    tail mass supplies the "some very large jobs" the paper credits for
    DREP's weakness on Bing at small core counts (Sec. V-A); the tail cap
    is calibrated so that DREP's worst case (1 core, fully parallel jobs)
    lands near the paper's quoted "factor of 3.25 compared to SRPT".
    """
    body = LogNormalWork(mean_work=1.0, sigma=0.8)
    tail = BoundedParetoWork(alpha=1.1, lo=4.0, hi=100.0)
    return MixtureWork([body, tail], [0.95, 0.05]).normalized()


def finance_distribution() -> WorkDistribution:
    """Synthetic stand-in for the Finance (option pricing) workload.

    Option-pricing requests are far more regular than web search: a
    log-normal with small sigma (CV ~ 0.53), unit mean.
    """
    return LogNormalWork(mean_work=1.0, sigma=0.5)


_REGISTRY = {
    "bing": bing_distribution,
    "finance": finance_distribution,
    "exponential": lambda: ExponentialWork(1.0),
    "fixed": lambda: FixedWork(1.0),
    "uniform": lambda: UniformWork(0.5, 1.5),
}


def distribution_by_name(name: str) -> WorkDistribution:
    """Look up a named distribution (``bing``, ``finance``, ...)."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown distribution {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
