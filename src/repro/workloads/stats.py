"""Workload statistics: characterize distributions and traces.

The paper's comparison hinges on workload shape ("Bing workload has some
very large jobs", Sec. V-A), so the harness reports the statistics that
drive scheduler behaviour: coefficient of variation, tail percentiles,
and the largest-job share of total work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import RngFactory
from repro.workloads.distributions import WorkDistribution
from repro.workloads.traces import Trace

__all__ = ["WorkStats", "distribution_stats", "trace_stats"]


@dataclass(frozen=True)
class WorkStats:
    """Summary of a sample of job work values."""

    n: int
    mean: float
    cv: float  # coefficient of variation (std / mean)
    p50: float
    p99: float
    p999: float
    max: float
    top1pct_work_share: float  # fraction of total work held by largest 1%

    def summary(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "cv": self.cv,
            "p50": self.p50,
            "p99": self.p99,
            "p99.9": self.p999,
            "max": self.max,
            "top1%_share": self.top1pct_work_share,
        }


def _stats(values: np.ndarray) -> WorkStats:
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if (values <= 0).any():
        raise ValueError("work values must be positive")
    mean = float(values.mean())
    k = max(1, values.size // 100)
    top = np.sort(values)[-k:]
    return WorkStats(
        n=int(values.size),
        mean=mean,
        cv=float(values.std() / mean) if mean > 0 else 0.0,
        p50=float(np.percentile(values, 50)),
        p99=float(np.percentile(values, 99)),
        p999=float(np.percentile(values, 99.9)),
        max=float(values.max()),
        top1pct_work_share=float(top.sum() / values.sum()),
    )


def distribution_stats(
    dist: WorkDistribution, n: int = 100_000, seed: int = 0
) -> WorkStats:
    """Monte-Carlo summary of a work distribution."""
    rng = RngFactory(seed).stream("stats")
    return _stats(dist.sample(rng, n))


def trace_stats(trace: Trace) -> WorkStats:
    """Summary of the work values in a generated trace."""
    return _stats(np.array([j.work for j in trace.jobs]))
