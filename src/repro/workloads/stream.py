"""Lazy job streams: the bounded-RAM workload substrate.

A *job stream* is an iterator of :class:`repro.core.JobSpec` obeying the
same contract a :class:`~repro.workloads.traces.Trace` does — releases
non-decreasing, job ids dense ``0..n-1`` in release order — without ever
materializing the whole trace.  Both engines can ingest a stream lazily
(``repro.flowsim.simulate_stream``, ``repro.wsim.simulate_ws_stream``),
which is what makes a 10⁶–10⁷-job run O(active jobs) in memory instead of
O(total jobs).

Three producers live here:

* :func:`generate_stream` — the seeded synthetic generators of
  :func:`~repro.workloads.traces.generate_trace`, re-expressed as a lazy
  chunked stream.  ``generate_trace`` is now a thin materializing wrapper
  over a single-chunk stream, bit-for-bit with its historical output.
* :func:`stream_trace` — adapt an in-memory trace (or bare spec list).
* :mod:`repro.workloads.swf` — parse Standard Workload Format HPC traces
  into streams (note: SWF the *trace format*, not this repo's SWF
  *scheduling policy*; see ``docs/workloads.md``).

plus two re-streaming transforms for trace realism: :func:`calibrate_load`
(time-rescale releases to a target utilization) and :func:`peak_window`
(cut the busiest window out of a long trace).  Both take a *source
factory* — a zero-argument callable returning a fresh iterator — because
they need one bounded-memory scan pass before re-streaming.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.job import JobSpec, ParallelismMode
from repro.core.rng import RngFactory
from repro.workloads.arrivals import MmppProcess, PoissonProcess, qps_for_load
from repro.workloads.distributions import WorkDistribution, distribution_by_name

__all__ = [
    "JobStream",
    "StreamStats",
    "generate_stream",
    "stream_trace",
    "scan_stream",
    "attach_dags_stream",
    "calibrate_load",
    "peak_window",
    "resample_stream",
    "DEFAULT_CHUNK_JOBS",
]

#: Default generator chunk: large enough to amortize numpy draw overhead,
#: small enough that a pending chunk is noise next to the active set.
DEFAULT_CHUNK_JOBS = 65536


class JobStream(Iterator[JobSpec]):
    """A validated, lazily-consumed sequence of jobs.

    Wraps any iterable of :class:`JobSpec` and enforces the engines'
    ingestion contract *as jobs flow through*: releases non-decreasing
    and ids dense from 0.  With ``assign_ids=True`` the wrapper re-stamps
    dense ids on the fly instead of rejecting sparse ones — the path SWF
    traces and filtered streams take.

    A stream is single-use (it is an iterator, not a container); use the
    producer again for a second pass.
    """

    def __init__(
        self,
        source: Iterable[JobSpec],
        *,
        assign_ids: bool = False,
        name: str = "stream",
        meta: dict | None = None,
    ) -> None:
        self._it = iter(source)
        self._assign_ids = bool(assign_ids)
        self.name = name
        self.meta = dict(meta or {})
        self._next_id = 0
        self._prev_release = -math.inf

    def __iter__(self) -> "JobStream":
        return self

    def __next__(self) -> JobSpec:
        spec = next(self._it)
        if self._assign_ids:
            if spec.job_id != self._next_id:
                spec = replace(spec, job_id=self._next_id)
        elif spec.job_id != self._next_id:
            raise ValueError(
                f"stream ids must be dense 0..n-1 in release order: "
                f"expected {self._next_id}, got {spec.job_id}"
            )
        if spec.release < self._prev_release:
            raise ValueError(
                f"stream jobs must be sorted by release time: job "
                f"{spec.job_id} released at {spec.release} after {self._prev_release}"
            )
        self._prev_release = spec.release
        self._next_id += 1
        return spec

    @property
    def n_consumed(self) -> int:
        """Number of jobs yielded so far."""
        return self._next_id

    def materialize(self, **trace_kwargs) -> "Trace":
        """Drain the stream into an in-memory Trace (O(n) RAM, obviously)."""
        from repro.workloads.traces import Trace

        trace_kwargs.setdefault("name", self.name)
        trace_kwargs.setdefault("meta", dict(self.meta))
        return Trace(jobs=list(self), **trace_kwargs)


def stream_trace(trace_or_jobs) -> JobStream:
    """Adapt an in-memory :class:`Trace` (or list of specs) to a stream."""
    jobs = getattr(trace_or_jobs, "jobs", trace_or_jobs)
    name = getattr(trace_or_jobs, "name", "trace")
    meta = getattr(trace_or_jobs, "meta", None)
    return JobStream(jobs, name=name, meta=meta)


def generate_stream(
    n_jobs: int,
    distribution: str | WorkDistribution,
    load: float,
    m: int,
    mode: ParallelismMode = ParallelismMode.SEQUENTIAL,
    seed: int = 0,
    scale_work_with_m: bool = True,
    name: str | None = None,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
) -> JobStream:
    """Lazy, chunked version of the paper's trace recipe (Sec. V-A).

    Work and arrival draws come from the same named RNG streams as
    :func:`~repro.workloads.traces.generate_trace`, pulled
    ``chunk_jobs`` at a time, so peak memory is O(``chunk_jobs``) no
    matter how large ``n_jobs`` is.

    Determinism contract: arrival processes and every non-mixture work
    distribution draw *chunk-invariantly* — any ``chunk_jobs`` yields
    the same jobs, bit-for-bit equal to ``generate_trace``.  Mixture
    distributions (``"bing"``) draw their component indices per chunk,
    so their output is a deterministic function of ``(seed,
    chunk_jobs)`` but only matches ``generate_trace`` when
    ``chunk_jobs >= n_jobs`` (a single chunk — exactly the whole-trace
    draw order).  ``generate_trace`` itself always materializes through
    a single chunk, keeping its historical output unchanged.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if chunk_jobs < 1:
        raise ValueError("chunk_jobs must be >= 1")
    if arrival_process not in ("poisson", "mmpp"):
        raise ValueError(f"unknown arrival process {arrival_process!r}")
    if isinstance(distribution, str):
        dist_name = distribution
        dist = distribution_by_name(distribution)
    else:
        dist_name = type(distribution).__name__
        dist = distribution

    work_scale = float(m) if scale_work_with_m else 1.0
    mean_work = dist.mean * work_scale
    rate = qps_for_load(load, m, mean_work)
    sequential = mode is ParallelismMode.SEQUENTIAL

    def _jobs() -> Iterator[JobSpec]:
        rngs = RngFactory(seed)
        arr_rng = rngs.stream("arrivals")
        work_rng = rngs.stream("work")
        if arrival_process == "mmpp":
            proc = MmppProcess(arr_rng, rate, burstiness=burstiness)
        else:
            proc = PoissonProcess(arr_rng, rate)
        i = 0
        while i < n_jobs:
            c = min(chunk_jobs, n_jobs - i)
            releases = proc.draw(c)
            works = dist.sample(work_rng, c) * work_scale
            for k in range(c):
                w = float(works[k])
                yield JobSpec(
                    job_id=i + k,
                    release=float(releases[k]),
                    work=w,
                    span=w if sequential else w / m,
                    mode=mode,
                )
            i += c

    return JobStream(
        _jobs(),
        name=name or f"{dist_name}-{mode.value}-m{m}-load{load:g}",
        meta={
            "seed": seed,
            "scale_work_with_m": scale_work_with_m,
            "arrival_process": arrival_process,
            "chunk_jobs": chunk_jobs,
            "n_jobs": n_jobs,
            "load": load,
            "m": m,
            "distribution": dist_name,
        },
    )


@dataclass(frozen=True)
class StreamStats:
    """One-pass scan summary of a job stream (bounded memory)."""

    n_jobs: int
    total_work: float
    first_release: float
    last_release: float

    @property
    def horizon(self) -> float:
        return self.last_release

    @property
    def mean_work(self) -> float:
        return self.total_work / self.n_jobs if self.n_jobs else 0.0

    def offered_load(self, m: int) -> float:
        """Empirical utilization the stream offers an ``m``-core machine."""
        if not self.n_jobs or self.last_release <= 0:
            return 0.0
        return self.total_work / (self.last_release * m)


def scan_stream(jobs: Iterable[JobSpec]) -> StreamStats:
    """Single bounded-memory pass computing the calibration statistics."""
    n = 0
    total = 0.0
    comp = 0.0
    first = 0.0
    last = 0.0
    for spec in jobs:
        if n == 0:
            first = spec.release
        last = spec.release
        # Neumaier-compensated total work, so calibration factors do not
        # drift with trace length
        w = spec.work
        s = total + w
        if abs(total) >= abs(w):
            comp += (total - s) + w
        else:
            comp += (w - s) + total
        total = s
        n += 1
    return StreamStats(
        n_jobs=n, total_work=total + comp, first_release=first, last_release=last
    )


def attach_dags_stream(
    jobs: Iterable[JobSpec],
    parallelism: int,
    seed: int = 0,
    work_unit: float = 1.0,
    name: str = "stream+dags",
) -> JobStream:
    """Lazy per-job version of :func:`~repro.workloads.traces.attach_dags`.

    Draws from the same ``"dags"`` RNG stream in the same per-job order,
    so attaching to a stream yields bit-for-bit the DAGs that
    ``attach_dags`` stamps on the materialized trace — the property the
    wsim streaming≡materialized equivalence rests on.  Memory is O(1):
    each spec's DAG is built as it flows past.
    """
    if work_unit <= 0:
        raise ValueError("work_unit must be > 0")

    def _jobs() -> Iterator[JobSpec]:
        from repro.workloads.traces import dag_for_work

        rng = RngFactory(seed).stream("dags")
        for j in jobs:
            units = max(1, int(round(j.work / work_unit)))
            par = 1 if j.mode is ParallelismMode.SEQUENTIAL else parallelism
            dag = dag_for_work(units, par, rng)
            yield JobSpec(
                job_id=j.job_id,
                release=j.release,
                work=float(dag.work) * work_unit,
                span=float(dag.span) * work_unit,
                mode=ParallelismMode.DAG,
                dag=dag,
                weight=j.weight,
            )

    return JobStream(
        _jobs(),
        name=name,
        meta={"parallelism": parallelism, "work_unit": work_unit},
    )


SourceFactory = Callable[[], Iterable[JobSpec]]


def _as_factory(source) -> SourceFactory:
    if callable(source):
        return source
    jobs = getattr(source, "jobs", None)
    if jobs is None:
        raise TypeError(
            "calibration transforms need a re-streamable source: pass a "
            "zero-argument factory (e.g. lambda: swf_stream(path)) or an "
            "in-memory Trace, not a one-shot iterator"
        )
    return lambda: stream_trace(source)


def calibrate_load(
    source: SourceFactory,
    target_load: float,
    m: int,
    *,
    name: str | None = None,
) -> JobStream:
    """Re-scale release times so the stream offers ``target_load`` on ``m``.

    Real traces rarely hit a round utilization; the paper's sweeps are
    parameterized by load, so trace replay needs re-calibration.  Work
    is left untouched (job sizes are the ground truth); only the arrival
    clock is stretched or compressed by ``offered / target``, which
    preserves arrival order and burstiness structure.  Costs one scan
    pass plus the re-stream, both in bounded memory.
    """
    if not 0 < target_load < 1:
        raise ValueError(f"target_load must be in (0, 1), got {target_load}")
    if m < 1:
        raise ValueError("m must be >= 1")
    factory = _as_factory(source)
    stats = scan_stream(factory())
    if not stats.n_jobs:
        raise ValueError("cannot calibrate an empty stream")
    offered = stats.offered_load(m)
    if not offered > 0:
        raise ValueError(
            "cannot calibrate a stream with zero horizon (all jobs release at 0)"
        )
    factor = offered / target_load

    def _jobs() -> Iterator[JobSpec]:
        for spec in factory():
            yield replace(spec, release=spec.release * factor)

    return JobStream(
        _jobs(),
        name=name or f"calibrated-load{target_load:g}",
        meta={
            "target_load": target_load,
            "m": m,
            "offered_load": offered,
            "time_scale": factor,
            "n_jobs": stats.n_jobs,
        },
    )


def peak_window(
    source: SourceFactory,
    window: float,
    *,
    name: str | None = None,
) -> JobStream:
    """Extract the busiest ``window``-long slice of a stream by total work.

    Pass 1 slides a window over the arrivals (memory O(jobs in the
    window)) to find the start time maximizing released work; pass 2
    re-streams, keeps jobs with ``t0 <= release < t0 + window``, shifts
    releases to start at 0 and re-stamps dense ids.  This is the
    standard way to turn a week-long HPC trace into a saturating
    benchmark segment.
    """
    if not window > 0:
        raise ValueError("window must be > 0")
    factory = _as_factory(source)

    from collections import deque

    buf: deque[tuple[float, float]] = deque()
    in_window = 0.0
    best_work = -1.0
    best_start = 0.0
    n_seen = 0
    for spec in factory():
        n_seen += 1
        t = spec.release
        buf.append((t, spec.work))
        in_window += spec.work
        while buf and buf[0][0] <= t - window:
            in_window -= buf.popleft()[1]
        # anchor the candidate window so it *ends* just after this job
        if in_window > best_work:
            best_work = in_window
            best_start = buf[0][0]
    if n_seen == 0:
        raise ValueError("cannot extract a peak window from an empty stream")
    t0, t1 = best_start, best_start + window

    def _jobs() -> Iterator[JobSpec]:
        next_id = 0
        for spec in factory():
            if spec.release < t0:
                continue
            if spec.release >= t1:
                break
            yield replace(
                spec, job_id=next_id, release=spec.release - t0
            )
            next_id += 1

    return JobStream(
        _jobs(),
        name=name or f"peak-{window:g}",
        meta={
            "window": window,
            "window_start": t0,
            "window_work": best_work,
            "source_jobs": n_seen,
        },
    )


def resample_stream(
    source,
    n_jobs: int,
    seed: int = 0,
    *,
    name: str | None = None,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
) -> JobStream:
    """Bootstrap-resample a trace into an ``n_jobs``-long stream.

    One bounded scan of ``source`` (a factory or in-memory trace, as for
    :func:`calibrate_load`) collects the empirical inter-arrival gaps
    and per-job ``(work, span, mode, weight)`` tuples; the returned
    stream then draws ``n_jobs`` jobs *with replacement* — gaps i.i.d.
    from the gap sample and cumulated into releases, job bodies sampled
    jointly by source index so the work/span/mode correlations of the
    original trace survive.  This is how a short parsed SWF segment is
    stretched into an arbitrarily long synthetic trace with the same
    marginal size and burst structure.

    Replay-deterministic: draws come from the library's named RNG
    streams (``"resample/arrivals"`` / ``"resample/jobs"``), and
    both draws consume the bitstream element-wise, so the output is a
    function of ``(source, n_jobs, seed)`` alone — ``chunk_jobs`` is a
    pure throughput knob.  Memory is O(source jobs) for the empirical
    sample (three float arrays plus a mode table) and O(``chunk_jobs``)
    while streaming.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if chunk_jobs < 1:
        raise ValueError("chunk_jobs must be >= 1")
    factory = _as_factory(source)
    releases: list[float] = []
    works: list[float] = []
    spans: list[float] = []
    weights: list[float] = []
    modes: list[ParallelismMode] = []
    src_name = "trace"
    for spec in factory():
        releases.append(spec.release)
        works.append(spec.work)
        spans.append(spec.span)
        weights.append(spec.weight)
        modes.append(spec.mode)
        if spec.dag is not None:
            raise ValueError(
                "resample_stream cannot bootstrap DAG-attached jobs; "
                "resample the bare trace and attach_dags_stream after"
            )
    src_name = getattr(source, "name", src_name)
    n_src = len(works)
    if n_src < 2:
        raise ValueError(
            f"need >= 2 source jobs for an inter-arrival sample, got {n_src}"
        )
    gaps = np.diff(np.asarray(releases, dtype=float))
    work_arr = np.asarray(works, dtype=float)
    span_arr = np.asarray(spans, dtype=float)
    weight_arr = np.asarray(weights, dtype=float)

    def _jobs() -> Iterator[JobSpec]:
        rngs = RngFactory(seed)
        gap_rng = rngs.stream("resample/arrivals")
        job_rng = rngs.stream("resample/jobs")
        t = 0.0
        i = 0
        while i < n_jobs:
            c = min(chunk_jobs, n_jobs - i)
            g = gaps[gap_rng.integers(0, gaps.size, size=c)]
            idx = job_rng.integers(0, n_src, size=c)
            for k in range(c):
                t += float(g[k])
                j = int(idx[k])
                yield JobSpec(
                    job_id=i + k,
                    release=t,
                    work=float(work_arr[j]),
                    span=float(span_arr[j]),
                    mode=modes[j],
                    weight=float(weight_arr[j]),
                )
            i += c

    return JobStream(
        _jobs(),
        name=name or f"resample-{src_name}-n{n_jobs}",
        meta={
            "seed": seed,
            "n_jobs": n_jobs,
            "source": src_name,
            "source_jobs": n_src,
            "chunk_jobs": chunk_jobs,
        },
    )
