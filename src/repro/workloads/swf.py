"""Standard Workload Format (SWF) trace ingestion.

**Naming hazard:** SWF here is the *Standard Workload Format* — the
18-field plain-text format the Parallel Workloads Archive uses for HPC
cluster logs — and has nothing to do with ``repro.flowsim.policies.swf``
(Smallest Work First, a scheduling policy).  ``docs/workloads.md``
spells out the disambiguation.

An SWF file is line-oriented: ``;``-prefixed header/comment lines, then
one job per line with 18 whitespace-separated numeric fields, ``-1``
meaning "unknown".  We consume the fields that matter for flow-time
scheduling:

====  ==================  =========================================
 #    SWF field           use here
====  ==================  =========================================
 1    job number          provenance only (ids are re-densified)
 2    submit time [s]     ``release`` (shifted so the trace starts at 0)
 4    run time [s]        ``span`` (critical path at its allocation)
 5    allocated procs     parallelism; ``work = run_time * procs``
 8    requested procs     fallback when allocated is unknown
11    status              completed-only filter (``1``) by default
====  ==================  =========================================

Everything is streamed: :func:`read_swf` yields one :class:`SwfJob` per
line and :func:`swf_stream` yields :class:`~repro.core.JobSpec`, so a
multi-million-job archive file never materializes in RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.job import JobSpec, ParallelismMode
from repro.workloads.stream import JobStream

__all__ = [
    "SwfJob",
    "SwfParseError",
    "read_swf",
    "format_swf_line",
    "swf_stream",
    "SWF_FIELDS",
]

#: The 18 fields of the Standard Workload Format, in order.
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_procs",
    "avg_cpu_time",
    "used_memory",
    "requested_procs",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time",
)


class SwfParseError(ValueError):
    """A malformed SWF line, with its 1-based line number."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"SWF line {lineno}: {reason}: {line.strip()!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


@dataclass(frozen=True)
class SwfJob:
    """One parsed SWF record (times in seconds, ``-1`` = unknown)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    avg_cpu_time: float
    used_memory: float
    requested_procs: int
    requested_time: float
    requested_memory: float
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: float

    @property
    def procs(self) -> int:
        """Best-effort processor count: allocated, else requested, else 1."""
        if self.allocated_procs > 0:
            return self.allocated_procs
        if self.requested_procs > 0:
            return self.requested_procs
        return 1


_INT_FIELDS = frozenset(
    (
        "job_number",
        "allocated_procs",
        "requested_procs",
        "status",
        "user_id",
        "group_id",
        "executable",
        "queue",
        "partition",
        "preceding_job",
    )
)


def read_swf(source: str | Path | Iterable[str]) -> Iterator[SwfJob]:
    """Stream :class:`SwfJob` records from a path or iterable of lines.

    ``;`` comment lines and blank lines are skipped; any other line must
    carry exactly 18 numeric fields or :class:`SwfParseError` is raised
    with the offending line number — a trace that parses at all parses
    completely.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            yield from _parse_lines(fh)
    else:
        yield from _parse_lines(source)


def _parse_lines(lines: Iterable[str]) -> Iterator[SwfJob]:
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(";"):
            continue
        fields = stripped.split()
        if len(fields) != len(SWF_FIELDS):
            raise SwfParseError(
                lineno, line, f"expected {len(SWF_FIELDS)} fields, got {len(fields)}"
            )
        values = {}
        for name, raw in zip(SWF_FIELDS, fields):
            try:
                if name in _INT_FIELDS:
                    values[name] = int(raw)
                else:
                    values[name] = float(raw)
            except ValueError:
                raise SwfParseError(
                    lineno, line, f"field {name!r} is not numeric ({raw!r})"
                ) from None
        yield SwfJob(**values)


def format_swf_line(job: SwfJob) -> str:
    """Render a record back to one SWF line (round-trip inverse of
    :func:`read_swf` for the fields it parses)."""
    out = []
    for name in SWF_FIELDS:
        v = getattr(job, name)
        if name in _INT_FIELDS:
            out.append(str(int(v)))
        else:
            out.append(f"{float(v):g}")
    return " ".join(out)


def swf_stream(
    source: str | Path | Iterable[str],
    *,
    completed_only: bool = True,
    min_run_time: float = 1e-9,
    time_scale: float = 1.0,
    name: str | None = None,
) -> JobStream:
    """Adapt an SWF trace to a :class:`~repro.workloads.stream.JobStream`.

    Field mapping: ``release = (submit - first_submit) * time_scale``,
    ``work = run_time * procs * time_scale``, ``span = run_time *
    time_scale``; jobs with more than one processor are stamped
    ``FULLY_PARALLEL`` (they can use the whole machine), single-processor
    jobs ``SEQUENTIAL``.  Records with unknown/zero run time are dropped,
    as are non-completed jobs unless ``completed_only=False`` (status 1 =
    completed; ``-1`` = unknown is kept, matching archive practice).
    Job ids are re-densified in submit order; out-of-order submits are a
    contract violation surfaced by the stream wrapper.
    """
    if not time_scale > 0:
        raise ValueError("time_scale must be > 0")

    def _jobs() -> Iterator[JobSpec]:
        first_submit: float | None = None
        for rec in read_swf(source):
            if rec.run_time <= min_run_time:
                continue
            if completed_only and rec.status not in (-1, 1):
                continue
            if first_submit is None:
                first_submit = rec.submit_time
            procs = rec.procs
            span = rec.run_time * time_scale
            work = span * procs
            yield JobSpec(
                job_id=0,  # re-densified by the stream wrapper
                release=(rec.submit_time - first_submit) * time_scale,
                work=work,
                span=span,
                mode=(
                    ParallelismMode.FULLY_PARALLEL
                    if procs > 1
                    else ParallelismMode.SEQUENTIAL
                ),
            )

    label = name
    if label is None:
        label = Path(source).stem if isinstance(source, (str, Path)) else "swf"
    return JobStream(
        _jobs(),
        assign_ids=True,
        name=label,
        meta={"format": "swf", "time_scale": time_scale},
    )
