"""Job traces: generation, DAG attachment and (de)serialization.

A :class:`Trace` is the unit of input to both simulators: an ordered list
of :class:`repro.core.JobSpec` plus the metadata needed to interpret it
(machine size it was calibrated for, target load, distribution name).

:func:`generate_trace` reproduces the paper's workload recipe (Sec. V-A):
sample work i.i.d. from a named distribution, draw Poisson inter-arrival
times at the QPS matching a target utilization, and (when sweeping m)
scale per-job work with the machine size.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.job import JobSpec, ParallelismMode
from repro.core.rng import RngFactory
from repro.dag.generators import chain as chain_dag
from repro.dag.generators import fork_join, spawn_tree
from repro.dag.graph import DagJob
from repro.workloads.distributions import WorkDistribution

__all__ = ["Trace", "generate_trace", "attach_dags", "dag_for_work"]


@dataclass
class Trace:
    """An ordered job trace plus its generation metadata."""

    jobs: list[JobSpec]
    m: int = 1
    load: float = 0.0
    distribution: str = "unknown"
    name: str = "trace"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.load, (int, float)):
            raise TypeError("load must be a number")
        # single pass, no temporaries: on million-job traces the old
        # `releases`/`ids` list copies cost two O(n) allocations per
        # construction, which the streaming wrapper pays on every chunk
        prev = -np.inf
        for i, j in enumerate(self.jobs):
            if j.job_id != i:
                raise ValueError("job_ids must be dense 0..n-1 in release order")
            if j.release < prev:
                raise ValueError("trace jobs must be sorted by release time")
            prev = j.release

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def total_work(self) -> float:
        return float(sum(j.work for j in self.jobs))

    @property
    def horizon(self) -> float:
        """Last release time (0 for an empty trace)."""
        return self.jobs[-1].release if self.jobs else 0.0

    def offered_load(self, m: int | None = None) -> float:
        """Empirical utilization the trace offers an ``m``-core machine."""
        m = m if m is not None else self.m
        if not self.jobs or self.horizon == 0:
            return 0.0
        return self.total_work / (self.horizon * m)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar view (release, work, span) for vectorized consumers."""
        return {
            "release": np.array([j.release for j in self.jobs], dtype=float),
            "work": np.array([j.work for j in self.jobs], dtype=float),
            "span": np.array([j.span for j in self.jobs], dtype=float),
        }

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        """JSON encoding (DAGs are not serialized; regenerate via seeds)."""
        return json.dumps(
            {
                "m": self.m,
                "load": self.load,
                "distribution": self.distribution,
                "name": self.name,
                "meta": self.meta,
                "jobs": [
                    {
                        "job_id": j.job_id,
                        "release": j.release,
                        "work": j.work,
                        "span": j.span,
                        "mode": j.mode.value,
                        "weight": j.weight,
                    }
                    for j in self.jobs
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        raw = json.loads(text)
        jobs = [
            JobSpec(
                job_id=j["job_id"],
                release=j["release"],
                work=j["work"],
                span=j["span"],
                mode=ParallelismMode(j["mode"]),
                weight=j.get("weight", 1.0),
            )
            for j in raw["jobs"]
        ]
        return cls(
            jobs=jobs,
            m=raw["m"],
            load=raw["load"],
            distribution=raw["distribution"],
            name=raw["name"],
            meta=raw.get("meta", {}),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load_file(cls, path: str | Path) -> "Trace":
        # named load_file (not `load`) because a classmethod called `load`
        # would shadow the `load: float` dataclass field's default
        return cls.from_json(Path(path).read_text())


def generate_trace(
    n_jobs: int,
    distribution: str | WorkDistribution,
    load: float,
    m: int,
    mode: ParallelismMode = ParallelismMode.SEQUENTIAL,
    seed: int = 0,
    scale_work_with_m: bool = True,
    name: str | None = None,
    arrival_process: str = "poisson",
    burstiness: float = 4.0,
) -> Trace:
    """Generate a trace per the paper's recipe (Sec. V-A).

    Parameters
    ----------
    n_jobs:
        Number of jobs (the paper uses 100,000 per simulation point).
    distribution:
        Name (``"bing"``, ``"finance"``, ...) or a
        :class:`~repro.workloads.distributions.WorkDistribution`.
    load:
        Target utilization in (0, 1) — e.g. 0.5 / 0.6 / 0.7.
    m:
        Machine size the trace targets.
    mode:
        Parallelism mode stamped on every job.
    scale_work_with_m:
        The paper's convention for m-sweeps: multiply work by ``m`` so
        utilization stays fixed while QPS is held at its 1-core value.
        QPS is then recomputed from the *scaled* mean, which is equivalent.
    arrival_process:
        ``"poisson"`` (the paper's choice) or ``"mmpp"`` for bursty
        Markov-modulated arrivals with the given ``burstiness`` (mean
        rate calibrated to the same target load either way).
    """
    # thin materializing wrapper over the lazy stream substrate: a single
    # chunk reproduces the historical whole-trace draw order bit-for-bit
    # (chunk-invariant distributions match at any chunk size; mixtures
    # only in one chunk — see repro.workloads.stream.generate_stream)
    from repro.workloads.stream import generate_stream

    stream = generate_stream(
        n_jobs,
        distribution,
        load,
        m,
        mode=mode,
        seed=seed,
        scale_work_with_m=scale_work_with_m,
        arrival_process=arrival_process,
        burstiness=burstiness,
        chunk_jobs=n_jobs,
    )
    dist_name = stream.meta["distribution"]
    return Trace(
        jobs=list(stream),
        m=m,
        load=load,
        distribution=dist_name,
        name=name or f"{dist_name}-{mode.value}-m{m}-load{load:g}",
        meta={
            "seed": seed,
            "scale_work_with_m": scale_work_with_m,
            "arrival_process": arrival_process,
        },
    )


def dag_for_work(
    work_units: int, parallelism: int, rng: np.random.Generator
) -> DagJob:
    """Build a DAG of roughly ``work_units`` units with the given parallelism.

    * ``parallelism == 1`` gives a chain;
    * small parallelism gives a ``fork_join`` loop with that width;
    * high parallelism relative to the work gives a ``spawn_tree``.

    The realized work is the DAG's own, which may deviate by the fan
    overhead nodes; callers should read ``dag.work`` back.
    """
    if work_units < 1:
        raise ValueError("work_units must be >= 1")
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if parallelism == 1 or work_units < 4 * parallelism:
        return chain_dag(work_units, granularity=max(1, work_units // 64))
    depth = int(np.ceil(np.log2(parallelism)))
    leaves = 2**depth
    if work_units >= 8 * leaves:
        # divide and conquer when there is enough work per leaf
        leaf_weight = max(1, (work_units - 2 * (leaves - 1)) // leaves)
        return spawn_tree(depth, leaf_weight)
    segments = max(1, int(rng.integers(1, 4)))
    width = parallelism
    strand = max(1, work_units // (segments * width))
    return fork_join(segments, width, strand)


def attach_dags(
    trace: Trace,
    parallelism: int,
    seed: int = 0,
    work_unit: float = 1.0,
) -> Trace:
    """Return a copy of ``trace`` whose jobs carry explicit DAGs.

    Work is quantized to integer units of ``work_unit``; each job's spec is
    re-stamped with the realized DAG work and span so the flow-time
    accounting of both simulators agrees on the same instance.
    """
    if work_unit <= 0:
        raise ValueError("work_unit must be > 0")
    rng = RngFactory(seed).stream("dags")
    jobs = []
    for j in trace.jobs:
        units = max(1, int(round(j.work / work_unit)))
        par = 1 if j.mode is ParallelismMode.SEQUENTIAL else parallelism
        dag = dag_for_work(units, par, rng)
        jobs.append(
            JobSpec(
                job_id=j.job_id,
                release=j.release,
                work=float(dag.work) * work_unit,
                span=float(dag.span) * work_unit,
                mode=ParallelismMode.DAG,
                dag=dag,
                weight=j.weight,
            )
        )
    return Trace(
        jobs=jobs,
        m=trace.m,
        load=trace.load,
        distribution=trace.distribution,
        name=trace.name + "+dags",
        meta={**trace.meta, "parallelism": parallelism, "work_unit": work_unit},
    )
