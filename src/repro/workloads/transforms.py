"""Trace transformations: merge, slice, repeat, perturb.

Scenario-building utilities: the paper's motivating example (a giant job
plus a burst of small queries) and stress variants are compositions of
simpler traces.  All transforms re-index job ids densely and keep
releases sorted, so any output is again a valid :class:`Trace`.
"""

from __future__ import annotations

import numpy as np

from repro.core.job import JobSpec
from repro.workloads.traces import Trace

__all__ = ["merge_traces", "slice_trace", "repeat_trace", "jitter_releases"]


def _reindex(jobs: list[JobSpec], name: str, m: int, distribution: str) -> Trace:
    jobs = sorted(jobs, key=lambda j: (j.release, j.job_id))
    renumbered = [
        JobSpec(
            job_id=i,
            release=j.release,
            work=j.work,
            span=j.span,
            mode=j.mode,
            dag=j.dag,
            weight=j.weight,
        )
        for i, j in enumerate(jobs)
    ]
    return Trace(jobs=renumbered, m=m, distribution=distribution, name=name)


def merge_traces(*traces: Trace, name: str | None = None) -> Trace:
    """Interleave several traces on a common timeline.

    Jobs keep their release times; ids are re-assigned in release order.
    The result's ``m`` is taken from the first trace.
    """
    if not traces:
        raise ValueError("need at least one trace")
    jobs = [j for tr in traces for j in tr.jobs]
    return _reindex(
        jobs,
        name or "+".join(tr.name for tr in traces),
        traces[0].m,
        "+".join(sorted({tr.distribution for tr in traces})),
    )


def slice_trace(trace: Trace, t_start: float, t_end: float) -> Trace:
    """Jobs released in ``[t_start, t_end)``, re-based to time 0."""
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    picked = [j for j in trace.jobs if t_start <= j.release < t_end]
    if not picked:
        raise ValueError("slice contains no jobs")
    rebased = [
        JobSpec(
            job_id=j.job_id,
            release=j.release - t_start,
            work=j.work,
            span=j.span,
            mode=j.mode,
            dag=j.dag,
            weight=j.weight,
        )
        for j in picked
    ]
    return _reindex(rebased, f"{trace.name}[{t_start:g}:{t_end:g}]", trace.m, trace.distribution)


def repeat_trace(trace: Trace, times: int, gap: float = 0.0) -> Trace:
    """Concatenate ``times`` copies back to back, ``gap`` time apart."""
    if times < 1:
        raise ValueError("times must be >= 1")
    if gap < 0:
        raise ValueError("gap must be >= 0")
    period = trace.horizon + gap
    jobs = []
    for k in range(times):
        for j in trace.jobs:
            jobs.append(
                JobSpec(
                    job_id=j.job_id,
                    release=j.release + k * period,
                    work=j.work,
                    span=j.span,
                    mode=j.mode,
                    dag=j.dag,
                    weight=j.weight,
                )
            )
    return _reindex(jobs, f"{trace.name}x{times}", trace.m, trace.distribution)


def jitter_releases(
    trace: Trace, rng: np.random.Generator, sigma: float
) -> Trace:
    """Perturb release times with truncated Gaussian noise (robustness
    tests: schedulers should degrade smoothly, not discontinuously)."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    jobs = [
        JobSpec(
            job_id=j.job_id,
            release=max(0.0, j.release + float(rng.normal(0.0, sigma))),
            work=j.work,
            span=j.span,
            mode=j.mode,
            dag=j.dag,
            weight=j.weight,
        )
        for j in trace.jobs
    ]
    return _reindex(jobs, f"{trace.name}~N(0,{sigma:g})", trace.m, trace.distribution)
