"""Work-stealing runtime simulator (paper Sec. V-B, Figure 3).

A discrete-time model of the paper's modified Cilk Plus runtime: workers,
per-job deque sets, steal attempts, muggable deques and mugging, and
arrival-time preemption flags.  See DESIGN.md Substitution 1 for why this
simulator stands in for the real shared-memory runtime.
"""

from repro.wsim.probes import JobStats, JobStatsCollector
from repro.wsim.runtime import (
    WsConfig,
    WsimError,
    WsRuntime,
    simulate_ws,
    simulate_ws_stream,
)
from repro.wsim.schedulers import (
    AdmitFirstWS,
    CentralGreedyWS,
    DrepWS,
    LapsQuantumWS,
    RrQuantumWS,
    StealFirstWS,
    SwfApproxWS,
    WsScheduler,
    ws_scheduler_by_name,
)
from repro.wsim.structures import JobRun, Worker, WsDeque

__all__ = [
    "WsConfig",
    "WsRuntime",
    "WsimError",
    "simulate_ws",
    "simulate_ws_stream",
    "WsScheduler",
    "DrepWS",
    "SwfApproxWS",
    "StealFirstWS",
    "AdmitFirstWS",
    "CentralGreedyWS",
    "RrQuantumWS",
    "LapsQuantumWS",
    "ws_scheduler_by_name",
    "JobStats",
    "JobStatsCollector",
    "JobRun",
    "Worker",
    "WsDeque",
]
