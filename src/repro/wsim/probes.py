"""Per-job observability for the work-stealing runtime.

:class:`JobStatsCollector` rides the ``WsRuntime.run`` observer hook and
decomposes each job's flow time into the pieces practitioners care about:

* **admission wait** — steps between release and the first worker
  assignment (DREP's coin flips can leave a job queued; steal-first
  queues jobs behind its failed-steal budget);
* **service span** — first assignment to completion;
* **mean workers while served** — the realized p_i(t), whose expectation
  Lemma 4.1 pins at m/|A(t)|.

The collector is scheduler-agnostic: global-pool schedulers mark service
through executing nodes rather than worker assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["JobStats", "JobStatsCollector"]


@dataclass
class JobStats:
    """Observed lifecycle of one job."""

    job_id: int
    release_step: int
    first_service_step: int | None = None
    finish_step: int | None = None
    worker_samples: list[int] = field(default_factory=list)

    @property
    def admission_wait(self) -> int | None:
        if self.first_service_step is None:
            return None
        return self.first_service_step - self.release_step

    @property
    def service_span(self) -> int | None:
        if self.first_service_step is None or self.finish_step is None:
            return None
        return self.finish_step - self.first_service_step + 1

    @property
    def mean_workers(self) -> float:
        if not self.worker_samples:
            return 0.0
        return float(np.mean(self.worker_samples))


class JobStatsCollector:
    """Observer: pass to ``WsRuntime.run(observer=collector)``."""

    def __init__(self) -> None:
        self.stats: dict[int, JobStats] = {}

    def __call__(self, rt) -> None:
        # per-job worker counts this step (affinity via worker.job,
        # global mode via the executing node's owner)
        counts: dict[int, int] = {}
        for w in rt.workers:
            job = None
            if w.job is not None and not w.job.done:
                job = w.job
            elif w.current is not None:
                job = w.current[0]
            if job is not None:
                counts[job.job_id] = counts.get(job.job_id, 0) + 1
        for job in rt.active:
            entry = self.stats.get(job.job_id)
            if entry is None:
                entry = JobStats(job_id=job.job_id, release_step=job.release_step)
                self.stats[job.job_id] = entry
            served_by = counts.get(job.job_id, 0)
            executed_any = bool((job.node_remaining < job.dag.weights).any())
            in_service = served_by > 0 or executed_any
            if entry.first_service_step is None and in_service:
                entry.first_service_step = rt.step
            if entry.first_service_step is not None and job.finish_step is None:
                entry.worker_samples.append(served_by)
            if job.finish_step is not None:
                entry.finish_step = job.finish_step
        # late finish marks (jobs leave rt.active on completion)
        for job_id, entry in self.stats.items():
            if entry.finish_step is None:
                flow = rt._flow_steps[job_id]
                if not np.isnan(flow):
                    entry.finish_step = int(flow) + entry.release_step - 1

    def finalize(self, rt) -> None:
        """Fill lifecycle fields for jobs that finished after the last
        observation (the observer never sees the final step's effects).
        Call once after ``rt.run`` returns.
        """
        for job_id, entry in self.stats.items():
            if entry.finish_step is None:
                flow = rt._flow_steps[job_id]
                if not np.isnan(flow):
                    entry.finish_step = int(flow) + entry.release_step - 1
            if entry.first_service_step is None and entry.finish_step is not None:
                # served and finished inside one observation window: the
                # earliest it can have started is its release step
                entry.first_service_step = entry.release_step

    def summary_rows(self) -> list[dict]:
        """Flat rows for table rendering (one per observed job)."""
        rows = []
        for job_id in sorted(self.stats):
            s = self.stats[job_id]
            rows.append(
                {
                    "job_id": job_id,
                    "admission_wait": s.admission_wait,
                    "service_span": s.service_span,
                    "mean_workers": round(s.mean_workers, 3),
                }
            )
        return rows

    def mean_admission_wait(self) -> float:
        waits = [
            s.admission_wait
            for s in self.stats.values()
            if s.admission_wait is not None
        ]
        return float(np.mean(waits)) if waits else 0.0
