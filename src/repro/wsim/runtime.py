"""Discrete-time work-stealing runtime simulator.

This is the stand-in for the paper's modified Cilk Plus runtime (Sec. V-B;
see DESIGN.md Substitution 1).  Time advances in unit steps; on every step
each of the ``m`` workers performs exactly one action:

* **execute** one unit of its current node (node completion enables 0, 1
  or 2 children, handled Cilk-style: one child continues in place, the
  other is pushed to the deque bottom);
* **pop** the bottom of its own deque and execute (popping is part of the
  work step, as in real work stealing);
* **switch** jobs when its scheduler tells it to (a DREP preemption flag
  firing, or a completed job's re-draw) — switching costs the step,
  modeling preemption overhead;
* otherwise it is **out of work** and the scheduler spends the step on a
  steal attempt / mugging / job admission (every steal attempt costs
  constant work — one step — like the paper assumes).

The engine is scheduler-agnostic: all policy decisions are delegated to a
:class:`~repro.wsim.schedulers.base.WsScheduler`.  Invariants (checked in
debug mode): muggable deques are never empty; a node is on exactly one
deque or one worker; executed units equal total work at the end.

**Event-horizon kernel.**  Simulated time is split into *segments* — the
spans between consecutive external events (job arrivals and fault
points).  Inside a segment, :meth:`WsRuntime._horizon_jump` classifies
every live worker into one of three bulk-steppable classes and, when all
workers qualify, replays ``k`` unit steps in one update:

* **executing** — mid-node, unblocked: ``k`` subtractions of ``speed``
  collapse to one ``k * speed`` subtraction.  The jump distance is the
  min of remaining steps over these workers (an inline scalar min on
  small machines, one array min over flat SoA buffers on large ones),
  capped one step *before* the earliest node completion — the completing
  step itself always runs through the normal per-step path, so
  completions, child enabling, scheduler callbacks and their mid-step
  interleaving are reproduced exactly;
* **blocked** — paying preemption overhead: ``k`` overhead steps become
  one counter bump, with the jump capped at the unblock step;
* **steal-stuck** — out of work, where the scheduler's
  :meth:`~repro.wsim.schedulers.base.WsScheduler.steal_target` hook
  names the job it would steal from and every victim deque is
  active-and-empty, so each of the ``k`` attempts provably fails:
  replayed as ``k`` attempt/failure counter bumps plus **one batched
  victim draw** (``integers(np.tile(bounds, k))``), bit-identical to the
  per-step scalar draws (``tests/wsim/test_rng_draws.py`` pins the
  stream equivalence).  Schedulers without the hook exclude their idle
  workers from jumps — a pure perf opt-out, never a semantic one.

Failed jump attempts mutate nothing, so *when* to attempt is a free
choice: the run loop re-arms attempts only after a pass that visibly
changed worker state and otherwise backs off, and the per-step loop
fast-fails provably hopeless steals inline without entering the
scheduler.  ``perf.horizon_jumps`` / ``perf.horizon_steps_saved``
report the savings.

**Exactness contract.**  Bulk jumps are enabled only when every node
weight — and, for heterogeneous workers, every speed — lies on the
dyadic grid of multiples of ``2**-20`` with magnitude below ``2**31``
(integers trivially qualify).  On that grid every per-step value is
exactly representable, so ``k`` subtractions of ``speed`` equal one
subtraction of ``k * speed`` bit-for-bit and the ``work_steps``
accumulation is order-independent; counters and flow times are
bit-for-bit identical to unit-stepping (``tests/wsim/test_golden.py``
and the Hypothesis equivalence tests enforce this, heterogeneous speeds
included).  Off-grid runs fall back to pure per-step execution and
record it in ``perf.exactness_fallbacks``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import ScheduleResult
from repro.core.rng import RngFactory
from repro.dag.graph import NO_CHILD
from repro.perf.counters import PerfCounters
from repro.wsim.structures import JobRun, Worker, WsDeque
from repro.workloads.traces import Trace

__all__ = [
    "WsConfig",
    "WsRuntime",
    "simulate_ws",
    "simulate_ws_stream",
    "WsimError",
]


class WsimError(RuntimeError):
    """Raised when the runtime detects an invariant violation or stall."""


#: Exactness grid for bulk jumps: multiples of 2**-20.  On this grid (with
#: magnitudes below 2**31) every remaining-work value reachable by
#: per-step subtraction is exactly representable as a float, so bulk
#: ``rem -= k * speed`` is bit-identical to ``k`` single-step
#: subtractions, ``ceil(rem / speed)`` never overshoots the true
#: steps-to-completion, and the ``work_steps`` partial sums are exact
#: (hence order-independent between step-major and worker-major
#: accumulation).
_GRID = 1048576.0  # 2**20
_GRID_MAG = 2147483648.0  # 2**31


def _on_grid(values) -> bool:
    """True when every value is a multiple of 2**-20 below 2**31."""
    a = np.asarray(values, dtype=float)
    if a.size == 0:
        return True
    if not np.all(np.abs(a) < _GRID_MAG):
        return False
    scaled = a * _GRID  # exact: power-of-two scaling, no overflow
    return bool(np.all(scaled == np.rint(scaled)))


@dataclass(frozen=True)
class WsConfig:
    """Runtime knobs.

    preempt_check:
        When a flagged worker notices its DREP preemption flag —
        ``"steal"`` (only on steal attempts; the paper's implementation),
        ``"node"`` (at node boundaries; the paper's proposed improvement,
        checking "at function calls"), or ``"step"`` (immediately; the
        theoretical algorithm of Sec. IV-A).
    preemption_overhead:
        Extra steps a worker loses after every preemptive switch,
        modeling the state save/restore cost the paper's practicality
        argument is about ("when a preemption occurs the state of a job
        needs to be stored and then later restored; this leads to a
        large overhead", Sec. I).  Zero by default (the paper's own
        simulation convention); ablation X7 sweeps it.
    max_steps:
        Hard cap on simulated steps (default: generous bound from total
        work); exceeding it raises :class:`WsimError`.
    debug_invariants:
        Check structural invariants every step (slow; used by tests).
    """

    preempt_check: str = "steal"
    preemption_overhead: int = 0
    max_steps: int | None = None
    debug_invariants: bool = False

    def __post_init__(self) -> None:
        if self.preempt_check not in ("steal", "node", "step"):
            raise ValueError(
                f"preempt_check must be steal|node|step, got {self.preempt_check!r}"
            )
        if self.preemption_overhead < 0:
            raise ValueError("preemption_overhead must be >= 0")


@dataclass(slots=True)
class WsCounters:
    """Practicality counters the paper's arguments are about.

    ``slots=True``: the hot loop bumps these at step rate; slot stores
    skip the instance-dict write.
    """

    work_steps: int = 0
    steal_attempts: int = 0
    failed_steals: int = 0
    muggings: int = 0
    preemptions: int = 0
    switches: int = 0
    admissions: int = 0
    idle_steps: int = 0
    #: steps lost to preemption state save/restore (config overhead)
    overhead_steps: int = 0
    #: node-level migrations: ready nodes that started executing on a
    #: different worker than the one that made them ready (successful
    #: steals and muggings) — the paper's costly "migration" events
    node_migrations: int = 0
    # -- fault-injection probes (repro.faults) --------------------------
    #: worker crashes applied
    crashes: int = 0
    #: job aborts applied
    aborts: int = 0
    #: work units executed and then thrown away — a crashed worker's
    #: partial node plus everything an aborted job had completed; the
    #: re-execution cost faults impose on the schedule
    lost_work: float = 0.0
    #: worker-steps spent crashed (capacity removed from the machine)
    dead_steps: int = 0
    # -- elastic capacity probes (repro.autoscale) ----------------------
    #: workers drained (gracefully parked) by scale-down decisions
    drains: int = 0
    #: partial-node work a drain *preserved* — what a kill would have
    #: thrown away; the graceful-handover payoff
    preserved_work: float = 0.0
    #: worker-steps spent deliberately parked by the controller
    #: (capacity the schedule chose not to buy, unlike ``dead_steps``)
    parked_steps: int = 0
    extra: dict = field(default_factory=dict)


class WsRuntime:
    """One simulation run: a trace, ``m`` workers and a scheduler.

    ``trace`` is either a materialized :class:`~repro.workloads.Trace`
    (the classic mode: per-job flow times retained densely) or any
    iterator/iterable of DAG-attached :class:`~repro.core.JobSpec` in
    trace order (dense ids, non-decreasing releases) — the *streaming*
    mode, which pulls arrivals lazily one ahead of the clock and folds
    completed jobs into ``metrics`` instead of growing per-job arrays,
    so memory stays O(active jobs).  Streaming requires ``metrics`` (a
    :class:`~repro.core.metrics.StreamingMetrics`); use
    :func:`simulate_ws_stream` rather than driving it by hand.
    """

    def __init__(
        self,
        trace: "Trace | object",
        m: int,
        scheduler: "WsScheduler",
        seed: int = 0,
        config: WsConfig = WsConfig(),
        speeds: "np.ndarray | None" = None,
        faults=None,
        autoscale=None,
        metrics=None,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self._streaming = not isinstance(trace, Trace)
        if self._streaming:
            if metrics is None:
                raise ValueError(
                    "streaming runs need a StreamingMetrics accumulator; "
                    "use simulate_ws_stream()"
                )
            self.trace = None
        else:
            for spec in trace.jobs:
                if spec.dag is None:
                    raise ValueError(
                        "wsim needs DAG-attached traces; see workloads.attach_dags"
                    )
            self.trace = trace
        self._metrics = metrics
        self.m = m
        self.scheduler = scheduler
        self.config = config
        # heterogeneous workers (the open problem's full setting: parallel
        # jobs on processors of different speeds): worker p executes
        # speeds[p] work units per step; steal attempts still cost one
        # step for everyone.  None means identical unit-speed workers.
        if speeds is not None:
            speeds = np.ascontiguousarray(speeds, dtype=float)
            if speeds.shape != (m,):
                raise ValueError("speeds must have shape (m,)")
            if (speeds <= 0).any():
                raise ValueError("speeds must be positive")
        self.speeds = speeds
        # python-float mirror: the hot loop and the bulk path must
        # subtract the *same* float values for bit-for-bit equivalence,
        # and plain floats beat numpy scalar indexing at step rate
        self._speed_list = (
            None if speeds is None else [float(x) for x in speeds]
        )
        self.rng = RngFactory(seed).stream(f"wsim/{scheduler.name}")
        # bound-method caches: steal_within draws once per attempt and
        # out_of_work dispatches once per stuck worker-step; both
        # attribute chains are measurable at those call rates
        self._rng_integers = self.rng.integers
        self._out_of_work = scheduler.out_of_work
        self.workers = [Worker(wid=i) for i in range(m)]
        #: all arrived, unfinished jobs — the paper's A(t).  Schedulers
        #: append on arrival; the runtime removes on completion.
        self.active: list[JobRun] = []
        self.counters = WsCounters()
        self.step = 0
        self._completed = 0
        # speed aggregates (streaming completion folds need them per job;
        # the dense result build reuses them)
        self._total_speed = float(m if speeds is None else speeds.sum())
        self._max_speed = float(1.0 if speeds is None else speeds.max())
        if self._streaming:
            self._arrivals = []
            self._next_arrival = 0
            self._flow_steps = None
            self._job_iter = iter(trace)
            #: specs of admitted, unfinished jobs (fault resume needs them)
            self._specs_by_id: dict[int, "JobSpec"] = {}
            #: completions folded into metrics strictly in job-id order —
            #: jobs finish out of order, so late ids park on a heap until
            #: the gap closes; O(active) entries
            self._done_heap: list[tuple[int, float, float]] = []
            self._emit_next = 0
            self._n_seen = 0
            self._horizon_seen = 0
            total_work = 0
        else:
            self._arrivals = [
                (int(math.ceil(spec.release)), spec) for spec in trace.jobs
            ]
            self._next_arrival = 0
            self._flow_steps = np.full(len(trace), np.nan)
            total_work = sum(int(spec.dag.work) for spec in trace.jobs)
        self.total_work_units = total_work
        #: release step of the next not-yet-admitted arrival (inf = none):
        #: the single cursor both modes drive the run loop with
        self._peek_step: float = (
            self._arrivals[0][0] if self._arrivals else math.inf
        )
        self._peek_spec = None
        # -- event-horizon kernel state ------------------------------------
        #: DREP flags currently armed (maintained by :meth:`arm_flag`); a
        #: fast veto for bulk jumps in "step" mode.  Only a hint — the
        #: per-worker verify in :meth:`_horizon_jump` stays authoritative
        #: (tests poke ``flag_target`` directly, bypassing the count).
        self._flags_armed = 0
        self._flags_immediate = config.preempt_check == "step"
        #: bulk attempts are suppressed below this step (a completion is
        #: imminent, or a worker was in a transient non-batchable state);
        #: purely a perf hint, reset by nothing — steps are monotonic
        self._h_cooldown = 0
        #: consecutive failed verifies (drives the re-attempt backoff)
        self._h_fail = 0
        #: bound ``scheduler.steal_target`` when overridden, else None;
        #: resolved per run so scheduler swaps stay safe
        self._steal_target = None
        # SoA mirrors of live workers' hot state, filled at bulk entry so
        # the jump distance is one array min instead of a Python reduce.
        # Only worth it on big machines: below ~64 workers the fill
        # dominates and an inline scalar min with a completion-imminent
        # early-exit wins (measured; tests flip ``_h_vec`` to cover both)
        self._h_rem = np.empty(m)
        self._h_spd = np.empty(m)
        self._h_vec = m >= 64
        # exactness contract (module docstring): bulk jumps need every
        # node weight — and speed, if heterogeneous — on the dyadic grid,
        # plus bounded total work so work_steps partial sums stay exact.
        # Streaming runs start vacuously on-grid and re-verify every job
        # as it is pulled; a violation only disables *future* jumps, which
        # is sound — and still bit-identical to the materialized run —
        # because all bulk math performed while the contract held was
        # exact, hence order-independent.
        grid = total_work < 2**31
        if grid and speeds is not None:
            grid = _on_grid(speeds)
        if grid and not self._streaming:
            for spec in trace.jobs:
                if not _on_grid(spec.dag.weights):
                    grid = False
                    break
        self._grid_exact = grid
        horizon = self._arrivals[-1][0] if self._arrivals else 0
        self.max_steps = config.max_steps or (
            horizon + 50 * total_work + 10_000
        )
        # streaming max_steps accounting: the stall bound is recomputed on
        # every pull as horizon_seen + factor * work_seen + const, chosen
        # to dominate the materialized formula for any prefix
        self._ms_factor = 50
        self._ms_const = 10_000
        # -- fault injection (repro.faults): crash/abort plans only -------
        # ``faults`` is a FaultPlan; compiled lazily so this module keeps
        # no import-time dependency on repro.faults
        self.faults = faults
        self._fault_heap: list[tuple[int, int, dict]] = []
        self._fault_seq = 0
        self._fault_next: float = math.inf
        self._fault_log: list[dict] = []
        #: global-mode nodes stranded with no live worker to adopt them
        self._orphans: list = []
        self._live_workers = self.workers
        # ``autoscale`` is a closed-loop controller hook: called as
        # ``hook(self)`` whenever an ``{"kind": "autoscale"}`` tick action
        # pops from the fault heap; it drains/revives workers through
        # :meth:`push_fault_action`.  Attaching a hook activates the fault
        # machinery even without a plan.
        self._tick_hook = autoscale
        if faults is not None:
            from repro.faults.timeline import step_agenda

            faults.validate_for(m)
            self._fault_heap = step_agenda(faults)
            heapq.heapify(self._fault_heap)
            self._fault_seq = len(self._fault_heap)
            if self._fault_heap:
                self._fault_next = self._fault_heap[0][0]
            # distinct list: crash/recover rebuilds must not touch .workers
            self._live_workers = list(self.workers)
            if config.max_steps is None:
                # downtime and re-executed work stretch the schedule
                self.max_steps += (
                    int(math.ceil(faults.horizon)) + 50 * total_work + 10_000
                )
                self._ms_factor = 100
                self._ms_const = 20_000 + int(math.ceil(faults.horizon))
        elif autoscale is not None:
            self._live_workers = list(self.workers)
            if config.max_steps is None:
                # parked capacity stretches the schedule like downtime does
                self.max_steps += 50 * total_work + 10_000
                self._ms_factor = 100
                self._ms_const = 20_000
        self.perf = PerfCounters()
        if self._streaming:
            self._pull_next()  # prime the one-job lookahead

    # ------------------------------------------------------------------
    # lazy ingestion (streaming mode)
    # ------------------------------------------------------------------

    def _pull_next(self) -> None:
        """Advance the one-job lookahead cursor from the job stream.

        Validates the pulled spec (DAG attached, non-decreasing release)
        and folds it into the incremental accounting the materialized
        constructor does upfront: total work, the grid-exactness
        contract, and the ``max_steps`` stall bound.
        """
        try:
            spec = next(self._job_iter)
        except StopIteration:
            self._peek_spec = None
            self._peek_step = math.inf
            return
        if spec.dag is None:
            raise ValueError(
                "wsim needs DAG-attached job streams; see "
                "workloads.attach_dags_stream"
            )
        release_step = int(math.ceil(spec.release))
        if release_step < self._horizon_seen:
            raise ValueError(
                f"job {spec.job_id}: release step {release_step} precedes "
                f"an earlier arrival at {self._horizon_seen} "
                "(streams must be sorted by release)"
            )
        self._horizon_seen = release_step
        self._n_seen += 1
        self.total_work_units += int(spec.dag.work)
        if self._grid_exact and (
            self.total_work_units >= 2**31 or not _on_grid(spec.dag.weights)
        ):
            self._grid_exact = False  # run loop books the fallback
        if self.config.max_steps is None:
            self.max_steps = (
                self._horizon_seen
                + self._ms_factor * self.total_work_units
                + self._ms_const
            )
        self._peek_spec = spec
        self._peek_step = release_step

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, observer=None) -> "ScheduleResult | None":
        """Execute to completion.

        ``observer``, if given, is called as ``observer(self)`` once per
        simulated step *after* arrivals are admitted and *before* workers
        act — the instant the potential-function analysis reasons about.
        Used by :mod:`repro.analysis.timeline` and the theory tests.

        Returns the dense :class:`ScheduleResult` in materialized mode;
        ``None`` in streaming mode, where everything already lives in the
        metrics accumulator (the :func:`simulate_ws_stream` wrapper
        assembles the :class:`~repro.core.metrics.StreamResult` from it
        and ``self._run_extra``).
        """
        self.scheduler.reset(self)
        n = math.inf if self._streaming else len(self.trace)
        # bulk jumps are only sound when the per-step machinery is pure
        # node execution — no observer watching intermediate states, a
        # default (no-op) on_step hook, no per-step invariant sweep — and
        # when every weight and speed sits on the dyadic exactness grid
        # (module docstring) so bulk float math reproduces per-step math
        # bit for bit
        default_on_step = (
            type(self.scheduler).on_step is WsScheduler.on_step
        )
        horizon_ok = (
            observer is None
            and default_on_step
            and not self.config.debug_invariants
            and self._grid_exact
        )
        if not self._grid_exact:
            self.perf.exactness_fallbacks += 1
        steal_target = type(self.scheduler).steal_target
        steal_hook = self._steal_target = (
            self.scheduler.steal_target
            if steal_target is not WsScheduler.steal_target
            else None
        )
        self._out_of_work = self.scheduler.out_of_work
        rng_integers = self._rng_integers
        workers = self._live_workers
        debug = self.config.debug_invariants
        scheduler_on_step = self.scheduler.on_step
        act = self._act
        finish_node = self._finish_node
        horizon_jump = self._horizon_jump
        counters = self.counters
        flags_immediate = self._flags_immediate
        have_faults = self.faults is not None or self._tick_hook is not None
        speeds = self._speed_list
        streaming = self._streaming
        max_steps = self.max_steps
        while self._completed < n:
            step = self.step
            if streaming:
                if (
                    not self.active
                    and self._peek_spec is None
                    and not self._specs_by_id
                ):
                    # every job pulled has completed (and none awaits a
                    # fault resume): stop here, exactly where the dense
                    # loop's ``completed == n`` exit lands — leftover
                    # fault-heap events (recovers past the last
                    # completion) are dropped unapplied, as there
                    break
                # the stall bound and the exactness contract both grow
                # with the stream; re-read them once per segment
                max_steps = self.max_steps
                if horizon_ok and not self._grid_exact:
                    horizon_ok = False
                    self.perf.exactness_fallbacks += 1
            if step > max_steps:
                raise WsimError(
                    f"{self.scheduler.name}: exceeded {max_steps} steps "
                    f"with {self._completed}/{n} jobs done"
                )
            if have_faults and self._fault_next <= step:
                # before arrivals: a worker crashing at t is already gone
                # when a job arriving at t is placed
                self._apply_due_faults()
                workers = self._live_workers
            if self._peek_step <= step:
                self._admit_arrivals()
                if streaming:
                    max_steps = self.max_steps
                    if horizon_ok and not self._grid_exact:
                        horizon_ok = False
                        self.perf.exactness_fallbacks += 1
            if not self.active:
                # machine idle: jump to the next arrival or fault point
                # (a pending recover/resume can be the only future event)
                nxt = self._peek_step
                if have_faults and self._fault_next < nxt:
                    nxt = self._fault_next
                if nxt == math.inf:
                    break
                self.step = max(step, int(nxt))
                continue
            # -- segment: everything up to the next external event.  No
            # arrival can be admitted and no fault can apply before
            # ``horizon``, so the per-step loop drops those checks and
            # bulk jumps are capped so the event lands on its exact step.
            horizon = max_steps + 1
            if self._peek_step < horizon:
                horizon = int(self._peek_step)
            if have_faults and self._fault_next < horizon:
                horizon = int(self._fault_next)
            # bulk attempt cadence: the verify inside _horizon_jump is
            # side-effect-free, so *when* to attempt is a free heuristic
            # — results cannot depend on it.  Two gates keep the cost of
            # failed verifies amortized away: a failed attempt posts a
            # resume step in ``self._h_cooldown`` (precise when a
            # completion is imminent, streak-stretched in churn phases),
            # and re-attempts additionally wait for a pass that visibly
            # changed worker state (``h_dirty``) — a quiet pass of
            # failing steals leaves the machine exactly as the failed
            # verify saw it, so retrying could not succeed anyway.
            h_cool = 0
            h_dirty = True
            while step < horizon:
                if horizon_ok and h_dirty and h_cool <= step:
                    k = horizon_jump(horizon)
                    if k:
                        step += k
                        self.step = step
                        continue
                    h_cool = self._h_cooldown
                    h_dirty = False
                if observer is not None:
                    observer(self)
                if not default_on_step:
                    scheduler_on_step()
                nstep = step + 1
                work_acc = 0.0
                for worker in workers:
                    # fast paths: a mid-node worker just executes one
                    # unit — the flag cannot fire in "steal"/"node" mode
                    # (both need the worker between nodes or out of
                    # work; a stale flag's lazy cleanup is deferred,
                    # which nothing can observe) — and a provably
                    # failing thief books its counters and victim draw
                    # inline (the exact ops steal_within's failure path
                    # performs, minus three frame pushes; steal_within
                    # stays the authoritative implementation).
                    # Everything else dispatches through _act, the
                    # single slow-path source of truth.
                    cur = worker.current
                    if cur is None:
                        if (
                            steal_hook is not None
                            and worker.blocked_until <= step
                            and worker.flag_target is None
                            and (
                                (dq := worker.dq) is None or not dq.nodes
                            )
                        ):
                            sjob = steal_hook(worker)
                            if sjob is not None:
                                nv = 0
                                for d in sjob.deques:
                                    if d is dq:
                                        continue
                                    if d.owner is None or d.nodes:
                                        nv = -1  # could succeed: _act
                                        break
                                    nv += 1
                                if nv >= 0:
                                    counters.steal_attempts += 1
                                    counters.failed_steals += 1
                                    if nv >= 2:
                                        rng_integers(nv)
                                    continue
                        act(worker)
                        if worker.current is not None or (
                            worker.blocked_until > nstep
                        ):
                            # a successful steal/mug/pop or a fresh
                            # preemption stall: the machine state moved
                            h_dirty = True
                        continue
                    if worker.blocked_until > step or (
                        flags_immediate and worker.flag_target is not None
                    ):
                        act(worker)
                        if worker.current is not None or (
                            worker.blocked_until > nstep
                        ):
                            h_dirty = True
                        continue
                    job, node = cur
                    speed = 1.0 if speeds is None else speeds[worker.wid]
                    remaining = job.node_remaining
                    before = remaining[node]
                    after = before - speed
                    remaining[node] = after
                    # accumulated locally, flushed once per pass: exact
                    # (hence order-independent) on the dyadic grid; a
                    # local float add beats an attribute store at step
                    # rate
                    work_acc += speed if speed < before else before
                    if after > 1e-9:
                        continue
                    finish_node(worker, job, node)
                    h_dirty = True
                if work_acc:
                    counters.work_steps += work_acc
                if debug:
                    self._check_invariants()
                step = nstep
                self.step = nstep
                if self._completed >= n or not self.active:
                    break
        if streaming:
            if self.active or self._peek_spec is not None or self._done_heap:
                raise WsimError(
                    f"{self.scheduler.name}: unfinished jobs at end"
                )
        elif np.isnan(self._flow_steps).any():
            raise WsimError(f"{self.scheduler.name}: unfinished jobs at end")
        fault_extra = {}
        if self.faults is not None or self._tick_hook is not None:
            for worker in self.workers:
                if worker.down:  # run ended inside a crash/park window
                    downtime = self.step - worker.scratch["down_since"]
                    if worker.scratch.get("drained"):
                        counters.parked_steps += downtime
                    else:
                        counters.dead_steps += downtime
                    worker.scratch["down_since"] = self.step
        if self.faults is not None:
            fault_extra["faults"] = {
                "plan": self.faults.name,
                "crashes": counters.crashes,
                "aborts": counters.aborts,
                "lost_work": counters.lost_work,
                "dead_steps": counters.dead_steps,
                "log": [dict(e) for e in self._fault_log],
            }
        if self._tick_hook is not None:
            fault_extra["elastic"] = {
                "drains": counters.drains,
                "preserved_work": counters.preserved_work,
                "parked_steps": counters.parked_steps,
                "log": [dict(e) for e in self._fault_log],
            }
        total_speed = self._total_speed
        max_speed = self._max_speed
        self._run_extra = {
            "switches": self.counters.switches,
            "work_steps": self.counters.work_steps,
            "failed_steals": self.counters.failed_steals,
            "idle_steps": self.counters.idle_steps,
            "overhead_steps": self.counters.overhead_steps,
            "admissions": self.counters.admissions,
            "utilization": (
                self.counters.work_steps / (self.step * total_speed)
                if self.step
                else 0.0
            ),
            "perf": self._perf_snapshot(),
            **fault_extra,
        }
        if streaming:
            return None
        return ScheduleResult(
            scheduler=self.scheduler.name,
            m=self.m,
            flow_times=self._flow_steps.copy(),
            preemptions=self.counters.preemptions,
            migrations=self.counters.node_migrations,
            steal_attempts=self.counters.steal_attempts,
            muggings=self.counters.muggings,
            makespan=float(self.step),
            min_flows=np.array(
                [
                    max(
                        spec.dag.work / total_speed,
                        float(spec.dag.span) / max_speed,
                        1.0,
                    )
                    for spec in self.trace.jobs
                ]
            ),
            extra=self._run_extra,
        )

    def _perf_snapshot(self) -> dict:
        self.perf.events = self.step
        return self.perf.as_dict()

    # ------------------------------------------------------------------
    # faults (repro.faults)
    # ------------------------------------------------------------------

    def up_workers(self) -> "list[Worker]":
        """Workers currently alive — what schedulers must iterate.

        Identical to :attr:`workers` (the same list object) when no fault
        plan is attached, so the no-fault path pays nothing.
        """
        return self._live_workers

    def push_fault_action(self, step: int, action: dict) -> None:
        """Schedule a dynamic fault-heap action (controller hooks use this).

        Actions at the current step apply within the ongoing
        :meth:`_apply_due_faults` sweep; future ones bound the kernel's
        segment horizon like any compiled fault point.
        """
        heapq.heappush(
            self._fault_heap, (int(step), self._fault_seq, dict(action))
        )
        self._fault_seq += 1
        if self._fault_heap[0][0] < self._fault_next:
            self._fault_next = self._fault_heap[0][0]

    def _apply_due_faults(self) -> None:
        heap = self._fault_heap
        step = self.step
        while heap and heap[0][0] <= step:
            _, _, action = heapq.heappop(heap)
            kind = action["kind"]
            entry = {"kind": kind, "step": step, "applied": True}
            if kind == "crash":
                proc = int(action["proc"])
                entry["proc"] = proc
                worker = self.workers[proc]
                depth = worker.scratch.get("crash_depth", 0)
                worker.scratch["crash_depth"] = depth + 1
                if depth == 0:
                    self._kill_worker(worker)
                else:
                    entry["applied"] = False  # already down (nested window)
            elif kind == "recover":
                proc = int(action["proc"])
                entry["proc"] = proc
                worker = self.workers[proc]
                depth = worker.scratch.get("crash_depth", 1) - 1
                worker.scratch["crash_depth"] = depth
                if depth == 0:
                    self._revive_worker(worker)
                else:
                    entry["applied"] = False
            elif kind == "drain":
                # scale-down: like a crash, but the partial node keeps its
                # progress — capacity leaves, work does not re-execute
                proc = int(action["proc"])
                entry["proc"] = proc
                worker = self.workers[proc]
                depth = worker.scratch.get("crash_depth", 0)
                worker.scratch["crash_depth"] = depth + 1
                if depth == 0:
                    self._drain_worker(worker)
                else:
                    entry["applied"] = False  # already down
            elif kind == "autoscale":
                # controller tick: the hook observes the runtime and may
                # push drain/recover actions at this very step (the while
                # loop picks them up) plus its own next tick
                if self._tick_hook is not None:
                    self._tick_hook(self)
                else:
                    entry["applied"] = False
            elif kind == "abort":
                entry["job_id"] = int(action["job_id"])
                entry["applied"] = self._abort_job(
                    int(action["job_id"]), int(action["resubmit_after"])
                )
            elif kind == "resume":
                job_id = int(action["job_id"])
                entry["job_id"] = job_id
                spec = (
                    self._specs_by_id[job_id]
                    if self._streaming
                    else self.trace.jobs[job_id]
                )
                # fresh JobRun with the *original* release step: all work
                # re-executes, but flow time still counts from first release
                job = JobRun(spec, int(math.ceil(spec.release)))
                self.scheduler.on_arrival(job)
            self._fault_log.append(entry)
        self._fault_next = heap[0][0] if heap else math.inf
        self._live_workers = [w for w in self.workers if not w.down]

    def _kill_worker(self, worker: Worker) -> None:
        """Crash ``worker``: its partial node re-executes, its deque moves on.

        The in-progress node loses its partial execution (counted in
        ``lost_work``) and goes back to full weight.  In affinity mode the
        worker's non-empty deque is orphaned *muggable* — the job's other
        workers adopt it through normal stealing, the Sec. IV-A handover.
        In global-pool mode the deque's nodes move to the first live
        worker (or a runtime orphan list when none exists, drained on the
        next revival).
        """
        counters = self.counters
        counters.crashes += 1
        worker.down = True
        worker.scratch["down_since"] = self.step
        self._live_workers = [w for w in self.workers if not w.down]
        cur = worker.current
        if cur is not None:
            job, node = cur
            weight = float(job.dag.weights[node])
            executed = weight - job.node_remaining[node]
            if executed > 0:
                counters.lost_work += executed
                job.node_remaining[node] = weight
            self._deque_for(worker, job).push_bottom(cur)
            worker.current = None
        dq = worker.dq
        if dq is not None:
            if dq.nodes:
                if self.scheduler.affinity:
                    dq.owner = None  # muggable: stays with the job
                else:
                    target = self._live_workers[0] if self._live_workers else None
                    if target is not None:
                        if target.dq is None:
                            target.dq = WsDeque(job=None, owner=target.wid)
                        target.dq.nodes.extend(dq.nodes)
                    else:
                        self._orphans.extend(dq.nodes)
                    dq.nodes.clear()
            if not dq.nodes and dq.job is not None:
                dq.job.drop_deque(dq)
            worker.dq = None
        if worker.job is not None:
            worker.job.workers -= 1
            worker.job = None
        self.arm_flag(worker, None)
        worker.blocked_until = 0

    def _drain_worker(self, worker: Worker) -> None:
        """Park ``worker`` gracefully: hand its work over, keep the progress.

        The scale-down analogue of :meth:`_kill_worker`: the worker goes
        down and its deque moves on identically, but the in-progress node
        keeps its partial execution — whichever worker picks it up resumes
        where this one stopped.  The preserved partial work is counted in
        ``preserved_work`` (exactly what a crash would have destroyed).
        """
        counters = self.counters
        counters.drains += 1
        worker.down = True
        worker.scratch["down_since"] = self.step
        worker.scratch["drained"] = True
        self._live_workers = [w for w in self.workers if not w.down]
        cur = worker.current
        if cur is not None:
            job, node = cur
            executed = float(job.dag.weights[node]) - job.node_remaining[node]
            if executed > 0:
                counters.preserved_work += executed
            self._deque_for(worker, job).push_bottom(cur)
            worker.current = None
        dq = worker.dq
        if dq is not None:
            if dq.nodes:
                if self.scheduler.affinity:
                    dq.owner = None  # muggable: stays with the job
                else:
                    target = self._live_workers[0] if self._live_workers else None
                    if target is not None:
                        if target.dq is None:
                            target.dq = WsDeque(job=None, owner=target.wid)
                        target.dq.nodes.extend(dq.nodes)
                    else:
                        self._orphans.extend(dq.nodes)
                    dq.nodes.clear()
            if not dq.nodes and dq.job is not None:
                dq.job.drop_deque(dq)
            worker.dq = None
        if worker.job is not None:
            worker.job.workers -= 1
            worker.job = None
        self.arm_flag(worker, None)
        worker.blocked_until = 0

    def _revive_worker(self, worker: Worker) -> None:
        """Bring a crashed/parked worker back; the scheduler re-engages it."""
        downtime = self.step - worker.scratch["down_since"]
        if worker.scratch.pop("drained", False):
            self.counters.parked_steps += downtime
        else:
            self.counters.dead_steps += downtime
        worker.down = False
        self._live_workers = [w for w in self.workers if not w.down]
        if not self.scheduler.affinity:
            worker.dq = WsDeque(job=None, owner=worker.wid)
            if self._orphans:
                worker.dq.nodes.extend(self._orphans)
                self._orphans.clear()
        # affinity mode: the worker is out of work next step and the
        # scheduler's out_of_work re-draw puts it on a job

    def _abort_job(self, job_id: int, resubmit_after: int) -> bool:
        """Kill an active job everywhere; schedule its resubmission."""
        # one position scan (position matters: see complete_job) instead
        # of the old find-then-remove double scan
        idx = next(
            (i for i, j in enumerate(self.active) if j.job_id == job_id),
            None,
        )
        if idx is None:
            return False  # pending, finished, or already aborted
        job = self.active[idx]
        counters = self.counters
        counters.aborts += 1
        executed = float(job.dag.work) - sum(
            r for r in job.node_remaining if r > 0
        )
        if executed > 0:
            counters.lost_work += executed
        for worker in self.workers:
            if worker.current is not None and worker.current[0] is job:
                worker.current = None
            if worker.flag_target is job:
                self.arm_flag(worker, None)
            dq = worker.dq
            if dq is not None and dq.nodes:
                kept = [ref for ref in dq.nodes if ref[0] is not job]
                if len(kept) != len(dq.nodes):
                    dq.nodes.clear()
                    dq.nodes.extend(kept)
            if worker.job is job:
                worker.job = None
        if self._orphans:
            self._orphans = [ref for ref in self._orphans if ref[0] is not job]
        for dq in job.deques:
            dq.nodes.clear()
        job.deques.clear()
        job.workers = 0
        del self.active[idx]
        self.scheduler.on_abort(job)
        heapq.heappush(
            self._fault_heap,
            (
                self.step + resubmit_after,
                self._fault_seq,
                {"kind": "resume", "job_id": job_id},
            ),
        )
        self._fault_seq += 1
        return True

    # ------------------------------------------------------------------
    # arrivals / completions
    # ------------------------------------------------------------------

    def _admit_arrivals(self) -> None:
        if self._streaming:
            while self._peek_step <= self.step:
                spec = self._peek_spec
                release_step = int(self._peek_step)
                self._pull_next()
                self._specs_by_id[spec.job_id] = spec
                job = JobRun(spec, release_step)
                self.scheduler.on_arrival(job)
            return
        arrivals = self._arrivals
        n_arrivals = len(arrivals)
        while (
            self._next_arrival < n_arrivals
            and arrivals[self._next_arrival][0] <= self.step
        ):
            release_step, spec = arrivals[self._next_arrival]
            self._next_arrival += 1
            job = JobRun(spec, release_step)
            self.scheduler.on_arrival(job)
        self._peek_step = (
            arrivals[self._next_arrival][0]
            if self._next_arrival < n_arrivals
            else math.inf
        )

    def complete_job(self, job: JobRun) -> None:
        """Called by :meth:`_finish_node` when a job's last node finishes."""
        job.finish_step = self.step
        # completion at the end of this step; arrival at the start of its
        # release step, so flow >= 1 for any job with work
        flow = self.step + 1 - job.release_step
        if self._streaming:
            # fold-and-forget, strictly in job-id order: jobs finish out
            # of order, so park late ids on a small heap until the id gap
            # closes — keeps the metrics stream (and the keep_flow_times
            # reconstruction) aligned with the dense, id-indexed arrays
            dag = job.dag
            min_flow = max(
                dag.work / self._total_speed,
                float(dag.span) / self._max_speed,
                1.0,
            )
            heapq.heappush(
                self._done_heap, (job.job_id, float(flow), min_flow)
            )
            self._specs_by_id.pop(job.job_id, None)
            heap = self._done_heap
            metrics = self._metrics
            while heap and heap[0][0] == self._emit_next:
                _, f, mf = heapq.heappop(heap)
                metrics.add(f, min_flow=mf)
                self._emit_next += 1
        else:
            self._flow_steps[job.job_id] = flow
        self._completed += 1
        # ``active`` order is semantic: schedulers draw uniformly from it
        # by position, so an O(1) swap-pop would permute later RNG picks
        # and break bit-for-bit goldens.  A single remove() scan (vs the
        # old ``in`` + ``remove`` double scan) is the best
        # order-preserving option; try/except covers schedulers that
        # never listed the job.
        try:
            self.active.remove(job)
        except ValueError:
            pass
        self.scheduler.on_completion(job)

    # ------------------------------------------------------------------
    # preemption flags
    # ------------------------------------------------------------------

    def arm_flag(self, worker: Worker, target: JobRun | None) -> None:
        """Arm (or clear, with ``target=None``) a DREP preemption flag.

        The single notification point for flag state: maintains the
        armed-flag count the event-horizon kernel uses as a fast bulk
        veto in ``preempt_check="step"`` mode.  Schedulers must route
        flag writes through here (see ``WsScheduler.arm_flag``); direct
        ``flag_target`` writes stay *correct* — the kernel's per-worker
        verify is authoritative — but lose the fast veto.
        """
        had = worker.flag_target is not None
        if target is not None:
            if not had:
                self._flags_armed += 1
        elif had and self._flags_armed > 0:
            self._flags_armed -= 1
        worker.flag_target = target

    # ------------------------------------------------------------------
    # event-horizon kernel
    # ------------------------------------------------------------------

    def _horizon_jump(self, horizon: int) -> int:
        """Attempt one event-horizon bulk jump; return steps advanced.

        Classifies every live worker into one of three batchable states
        and advances all of them ``k`` steps in one update:

        * **executing** — mid-node and unblocked: ``k`` subtractions
          collapse into one (grid-exact);
        * **blocked** — paying preemption overhead: ``k`` overhead steps
          are booked at once;
        * **steal-stuck** — out of work, unflagged, and the scheduler's
          :meth:`~repro.wsim.schedulers.base.WsScheduler.steal_target`
          job offers only active-and-empty victim deques, so every steal
          attempt provably fails: counters advance by ``k`` and the
          victim draws are consumed as one array draw, which numpy
          guarantees is bit-identical to the per-step scalar sequence
          (pinned by tests/wsim/test_rng_draws.py).

        ``k`` is capped one step before the earliest node completion, at
        the earliest unblock, and at ``horizon``, so every boundary step
        runs through the per-step path with its exact interleaving.  Any
        other worker state fails the verify — which is side-effect-free,
        so the re-attempt cadence (``_h_cooldown``: precise when a
        completion is imminent, exponential backoff on non-batchable
        states) is a pure perf heuristic that cannot affect results.
        Exactness relies on the dyadic-grid contract checked at
        construction.
        """
        step = self.step
        workers = self._live_workers
        nw = len(workers)
        if nw == 0:
            self._h_cooldown = step + 1
            return 0
        flags_immediate = self._flags_immediate
        if flags_immediate and self._flags_armed:
            self._h_cooldown = step + 1
            return 0
        kmax = horizon - step
        rem = self._h_rem
        speeds = self._speed_list
        spd = self._h_spd
        vec = self._h_vec
        steal_target = self._steal_target
        n_exec = 0
        n_stuck = 0
        n_blocked = 0
        rmin = math.inf
        bounds: "list[int] | None" = None
        for w in workers:
            if w.blocked_until > step:
                # pure no-op until it unblocks; cap the window there
                b = w.blocked_until - step
                if b < kmax:
                    kmax = b
                n_blocked += 1
                continue
            cur = w.current
            if cur is not None:
                if vec:
                    rem[n_exec] = cur[0].node_remaining[cur[1]]
                    if speeds is not None:
                        spd[n_exec] = speeds[w.wid]
                    n_exec += 1
                    continue
                # scalar path: same float ops as the vectorized one
                # (one division per worker, min, one ceil), so the two
                # are bit-equivalent; the early-exit fires as soon as a
                # completion within 2 steps dooms the attempt
                r = cur[0].node_remaining[cur[1]]
                if speeds is not None:
                    r /= speeds[w.wid]
                if r <= 2.0:
                    # ceil(r) - 1 < 2: post the precise resume step.
                    # Long failure streaks (churn phases, where some
                    # node always completes within 2 steps) stretch the
                    # cooldown linearly so the attempt cost amortizes
                    # away; a missed window is perf-only.
                    cooldown = step + math.ceil(r)
                    f = self._h_fail = self._h_fail + 1
                    if f > 16:
                        cooldown += f - 16 if f < 48 else 32
                    self._h_cooldown = (
                        cooldown if cooldown < horizon else horizon
                    )
                    return 0
                if r < rmin:
                    rmin = r
                n_exec += 1
                continue
            # between nodes: batchable only as a deterministically
            # failing thief — an own-deque pop, a firing flag, an
            # admission or a job redraw all mutate state
            if steal_target is None:
                # no hook: this scheduler's steal phases are never
                # batchable, so back off exponentially
                self._h_fail_backoff(step)
                return 0
            dq = w.dq
            if (dq is not None and dq.nodes) or w.flag_target is not None:
                # transient: next act pops/switches — retry right after
                self._h_cooldown = step + 1
                return 0
            job = steal_target(w)
            if job is None:
                self._h_cooldown = step + 1
                return 0
            nv = 0
            for d in job.deques:
                if d is dq:
                    continue
                if d.owner is None or d.nodes:
                    # muggable or non-empty: the steal could succeed
                    self._h_cooldown = step + 1
                    return 0
                nv += 1
            n_stuck += 1
            if nv >= 2:
                # nv == 0 fails drawless; nv == 1 skips the draw
                # (integers(1) consumes no state) — only nv >= 2 draws
                if bounds is None:
                    bounds = [nv]
                else:
                    bounds.append(nv)
        if n_exec:
            # steps-to-completion is min_i ceil(rem_i / spd_i); ceil is
            # monotone, so the min runs first and ceil once on the
            # scalar.  On the grid, fp division never overshoots the
            # true steps-to-completion (it can undershoot, which only
            # makes the jump conservative).  Last safe step is one
            # before the earliest completion.
            if vec:
                if speeds is None:
                    rmin = rem[:n_exec].min()
                else:
                    rmin = (rem[:n_exec] / spd[:n_exec]).min()
            ke = math.ceil(rmin) - 1
            if ke < kmax:
                kmax = ke
        k = kmax
        if k < 2:
            # the earliest boundary runs during pass step + k, so no
            # attempt before step + k + 1 can succeed — skip the
            # (buffer-priced) re-checks until then, stretching with the
            # failure streak as above.  Clamped to the horizon: the next
            # segment starts with fresh state (an arrival can preempt
            # the completing worker), so the suppression must not leak
            # into it.
            cooldown = step + k + 1
            f = self._h_fail = self._h_fail + 1
            if f > 16:
                cooldown += f - 16 if f < 48 else 32
            self._h_cooldown = cooldown if cooldown < horizon else horizon
            return 0
        if bounds is not None and k > 4096:
            # bound the batched-draw buffer; the remainder of a longer
            # stall is simply picked up by the next attempt
            k = 4096
        fk = float(k)
        counters = self.counters
        if n_exec:
            if speeds is None:
                for w in workers:
                    cur = w.current
                    if cur is not None and w.blocked_until <= step:
                        cur[0].node_remaining[cur[1]] -= fk
                counters.work_steps += fk * n_exec
            else:
                for w in workers:
                    cur = w.current
                    if cur is not None and w.blocked_until <= step:
                        s = speeds[w.wid]
                        cur[0].node_remaining[cur[1]] -= fk * s
                        counters.work_steps += fk * s
        if n_stuck:
            counters.steal_attempts += k * n_stuck
            counters.failed_steals += k * n_stuck
            if bounds is not None:
                # one array draw == the interleaved scalar draws, values
                # discarded exactly as the failing per-step path would
                self._rng_integers(np.tile(np.asarray(bounds), k))
        if n_blocked:
            counters.overhead_steps += k * n_blocked
        self._h_fail = 0
        self.perf.horizon_jumps += 1
        self.perf.horizon_steps_saved += k - 1
        return k

    def _h_fail_backoff(self, step: int) -> None:
        """Post the next bulk attempt after a non-batchable verify.

        Consecutive failures back off exponentially (2, 4, ... 64 steps)
        so persistently non-batchable phases — e.g. schedulers without a
        ``steal_target`` — degrade to a rare cheap scan.  Attempts are
        side-effect-free, so this trades only missed jumps, never
        results.
        """
        f = self._h_fail + 1
        self._h_fail = f
        self._h_cooldown = step + (1 << f if f < 7 else 64)

    # ------------------------------------------------------------------
    # per-worker step
    # ------------------------------------------------------------------

    def _flag_fires(self, worker: Worker) -> bool:
        if worker.flag_target is None:
            return False
        if worker.flag_target.done:
            self.arm_flag(worker, None)  # stale: target already finished
            return False
        mode = self.config.preempt_check
        if mode == "step":
            return True
        if mode == "node":
            return worker.current is None
        return worker.out_of_work  # "steal"

    def _act(self, worker: Worker) -> None:
        if worker.blocked_until > self.step:
            self.counters.overhead_steps += 1
            return  # paying preemption overhead
        if worker.flag_target is not None and self._flag_fires(worker):
            target = worker.flag_target
            self.arm_flag(worker, None)
            self.switch_worker(worker, target, preempt=True)
            return
        if worker.current is None:
            dq = worker.dq
            if dq is not None and dq.nodes:
                # popping one's own deque is free; fall through to execute
                worker.current = dq.pop_bottom()
            else:
                # hottest dispatch in steal-heavy phases; the binding is
                # looked up once per run (scheduler swaps rebind it)
                self._out_of_work(worker)
                return
        if worker.current is not None:
            self._execute_unit(worker)
        else:
            self.counters.idle_steps += 1

    def _execute_unit(self, worker: Worker) -> None:
        job, node = worker.current
        speeds = self._speed_list
        speed = 1.0 if speeds is None else speeds[worker.wid]
        remaining = job.node_remaining
        before = remaining[node]
        after = before - speed
        remaining[node] = after
        # account actual units done; a fast worker overshooting a node's
        # end wastes the excess (realistic granularity cost)
        self.counters.work_steps += speed if speed < before else before
        if after > 1e-9:
            return
        self._finish_node(worker, job, node)

    def _finish_node(self, worker: Worker, job: JobRun, node: int) -> None:
        """Node-completion boundary path (the single source of truth).

        Enable children Cilk-style — one ready child continues in place,
        a second goes to the deque bottom (``JobRun.ready_children``
        inlined; child2 implies child1) — and complete the job when this
        was its last node.
        """
        job.remaining_nodes -= 1
        c1 = job._child1[node]
        if c1 == NO_CHILD:
            worker.current = None
        else:
            pend = job.pending_parents
            pend[c1] -= 1
            r1 = pend[c1] == 0
            c2 = job._child2[node]
            if c2 == NO_CHILD:
                worker.current = (job, c1) if r1 else None
            else:
                pend[c2] -= 1
                if pend[c2] == 0:
                    if r1:
                        self._deque_for(worker, job).push_bottom((job, c1))
                        worker.current = (job, c2)
                    else:
                        worker.current = (job, c2)
                else:
                    worker.current = (job, c1) if r1 else None
        if job.remaining_nodes == 0:
            self.complete_job(job)

    def _deque_for(self, worker: Worker, job: JobRun) -> WsDeque:
        """The worker's deque, created lazily on first push."""
        if worker.dq is None:
            dq = WsDeque(job=job if self.scheduler.affinity else None, owner=worker.wid)
            worker.dq = dq
            if self.scheduler.affinity:
                job.deques.append(dq)
        return worker.dq

    # ------------------------------------------------------------------
    # scheduler services
    # ------------------------------------------------------------------

    def switch_worker(
        self, worker: Worker, target: JobRun | None, preempt: bool
    ) -> None:
        """Detach ``worker`` from its job and attach it to ``target``.

        Affinity-mode semantics from Sec. IV-A: a partially executed node
        goes back on the worker's deque; a non-empty deque is marked
        muggable and stays with the old job; an empty one is deallocated.
        Costs the caller's step.  ``preempt=True`` counts toward the
        Theorem 1.2 preemption budget when the old job is unfinished.
        """
        old = worker.job
        if old is not None and old is target:
            return
        if worker.current is not None:
            job, _node = worker.current
            self._deque_for(worker, job).push_bottom(worker.current)
            worker.current = None
        if worker.dq is not None:
            if worker.dq.nodes:
                worker.dq.owner = None  # becomes muggable
            else:
                if worker.dq.job is not None:
                    worker.dq.job.drop_deque(worker.dq)
            worker.dq = None
        if old is not None:
            old.workers -= 1
            if preempt and not old.done:
                self.counters.preemptions += 1
                if self.config.preemption_overhead:
                    # state save/restore stalls this worker (Sec. I)
                    worker.blocked_until = (
                        self.step + 1 + self.config.preemption_overhead
                    )
        if old is not target:
            self.counters.switches += 1
        worker.job = target
        if target is not None:
            target.workers += 1

    def steal_within(self, worker: Worker, job: JobRun) -> bool:
        """One steal attempt among ``job``'s deques (affinity mode).

        Picks a victim uniformly at random among the job's other deques.
        A muggable victim is mugged: the thief adopts the whole deque and
        takes its bottom node (a mugging "can always do at least one unit
        of work").  An active victim loses its top node.  Returns True on
        success; always costs the step.
        """
        counters = self.counters
        counters.steal_attempts += 1
        dq = worker.dq
        # worker.dq is usually None for a thief; skip the filtering copy
        victims = job.deques if dq is None else [d for d in job.deques if d is not dq]
        nv = len(victims)
        if not nv:
            counters.failed_steals += 1
            return False
        # a single victim needs no draw: Generator.integers(1) returns 0
        # without consuming bit-generator state (pinned by
        # tests/wsim/test_rng_draws.py), so skipping the call keeps the
        # draw sequence — and rng_digest goldens — bit-identical
        victim = (
            victims[0] if nv == 1 else victims[int(self._rng_integers(nv))]
        )
        nodes = victim.nodes
        if victim.owner is None:  # muggable
            # mugging: adopt the deque wholesale (always succeeds, and the
            # thief "can always do at least one unit of work" — Sec. IV-A)
            if dq is not None:
                if dq.nodes:
                    raise WsimError("thief with non-empty deque attempted a mug")
                if dq.job is not None:
                    dq.job.drop_deque(dq)
            victim.owner = worker.wid
            worker.dq = victim
            worker.current = nodes.pop()
            counters.muggings += 1
            counters.node_migrations += 1
            return True
        if nodes:
            worker.current = nodes.popleft()
            counters.node_migrations += 1
            return True
        counters.failed_steals += 1
        return False

    def steal_from_worker(self, thief: Worker, victim: Worker) -> bool:
        """Classic work stealing between worker deques (global mode)."""
        self.counters.steal_attempts += 1
        dq = victim.dq
        if dq is None or not dq.nodes:
            self.counters.failed_steals += 1
            return False
        thief.current = dq.steal_top()
        self.counters.node_migrations += 1
        return True

    # ------------------------------------------------------------------
    # invariants (debug)
    # ------------------------------------------------------------------

    def _check_invariants(self) -> None:
        for job in self.active:
            for dq in job.deques:
                if dq.muggable and not dq.nodes:
                    raise WsimError("empty muggable deque")
        seen: set[tuple[int, int]] = set()
        for worker in self.workers:
            if worker.current is not None:
                key = (worker.current[0].job_id, worker.current[1])
                if key in seen:
                    raise WsimError(f"node {key} executed by two workers")
                seen.add(key)
        all_deques = [dq for job in self.active for dq in job.deques]
        all_deques += [w.dq for w in self.workers if w.dq is not None]
        checked: set[int] = set()
        for dq in all_deques:
            if id(dq) in checked:
                continue
            checked.add(id(dq))
            for ref_job, node in dq.nodes:
                key = (ref_job.job_id, node)
                if key in seen:
                    raise WsimError(f"node {key} duplicated")
                seen.add(key)


def simulate_ws(
    trace: Trace,
    m: int,
    scheduler: "WsScheduler",
    seed: int = 0,
    config: WsConfig = WsConfig(),
    speeds: "np.ndarray | None" = None,
    faults=None,
) -> ScheduleResult:
    """Convenience wrapper: build a runtime and run it.

    ``speeds`` (length m, positive) makes workers heterogeneous — the
    related-machines setting for parallel DAG jobs.

    ``faults`` injects a :class:`repro.faults.FaultPlan` — worker crashes
    (deques reassigned, partial nodes re-executed) and job aborts with
    resubmission.  Only crash/abort kinds are supported here; fractional
    slowdowns belong to ``speeds`` or the flow-level simulator.  The
    result's ``extra["faults"]`` reports the applied log, the work lost
    and re-executed, and the worker-steps spent down.
    """
    rt = WsRuntime(
        trace, m, scheduler, seed=seed, config=config, speeds=speeds,
        faults=faults,
    )
    rt.perf.start()
    result = rt.run()
    rt.perf.stop()
    result.extra["perf"] = rt._perf_snapshot()
    return result


def simulate_ws_stream(
    jobs,
    m: int,
    scheduler: "WsScheduler",
    seed: int = 0,
    config: WsConfig = WsConfig(),
    speeds: "np.ndarray | None" = None,
    faults=None,
    *,
    keep_flow_times: bool = False,
    metrics=None,
):
    """Run the work-stealing runtime over a lazy job stream in O(active) RAM.

    ``jobs`` is any iterable of DAG-attached :class:`~repro.core.JobSpec`
    in trace order (a materialized trace's ``.jobs`` works too).  The
    trajectory — every counter, RNG draw and flow time — is bit-for-bit
    identical to :func:`simulate_ws` on the materialized trace; only the
    bookkeeping differs: completed jobs fold into a
    :class:`~repro.core.metrics.StreamingMetrics` (in job-id order) and
    their state is freed, so memory tracks the *active* job count, not
    the trace length.  ``keep_flow_times=True`` opts back into dense
    retention, letting ``result.to_schedule_result()`` reproduce the
    materialized :class:`~repro.core.metrics.ScheduleResult` exactly.
    """
    from repro.core.metrics import StreamingMetrics, StreamResult
    from repro.core.rng import derive_seed

    if metrics is None:
        metrics = StreamingMetrics(
            keep_flow_times=keep_flow_times,
            seed=derive_seed(seed, "stream/metrics"),
        )
    rt = WsRuntime(
        jobs, m, scheduler, seed=seed, config=config, speeds=speeds,
        faults=faults, metrics=metrics,
    )
    rt.perf.start()
    rt.run()
    rt.perf.stop()
    rt.perf.capture_memory()
    extra = dict(rt._run_extra)
    extra["perf"] = rt._perf_snapshot()
    extra["streaming"] = True
    return StreamResult(
        scheduler=scheduler.name,
        m=m,
        metrics=metrics,
        preemptions=rt.counters.preemptions,
        migrations=rt.counters.node_migrations,
        steal_attempts=rt.counters.steal_attempts,
        muggings=rt.counters.muggings,
        makespan=float(rt.step),
        extra=extra,
    )


# imported late to avoid a cycle (schedulers import runtime helpers' types)
from repro.wsim.schedulers.base import WsScheduler  # noqa: E402
